#!/usr/bin/env bash
# End-to-end smoke test for the multi-tenant corpus registry: boots the
# release binary, registers a second corpus over REST, mutates it live,
# and proves the generation-snapshot guarantees on the wire:
#
#   * PUT /api/v1/corpora/{name} registers a corpus at generation 0,
#   * document mutations with {"refresh": true} bump the generation,
#   * a queued job pinned at generation G completes against G even after
#     the document it explains is deleted from the live corpus,
#   * an unpinned retired generation answers 410 generation_gone,
#   * /metrics exports the credence_corpus_* families per corpus.
#
# Usage: ./scripts/corpus_smoke.sh   (expects target/release/credence-serve)

set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/credence-serve
ADDR=127.0.0.1:18643
BASE="http://$ADDR"
WORK=target/corpus-smoke

[ -x "$BIN" ] || {
    echo "corpus_smoke: $BIN missing; run cargo build --release first" >&2
    exit 1
}

mkdir -p "$WORK"

# A single job worker so a slow job keeps the queue ordered: the job under
# test stays queued (snapshot pinned) while we mutate the live corpus.
"$BIN" --addr "$ADDR" --job-workers 1 >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 80); do
    curl -sf "$BASE/api/v1/health" >/dev/null 2>&1 && break
    kill -0 "$SERVE_PID" 2>/dev/null || {
        echo "corpus_smoke: server died during startup:" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    }
    sleep 0.25
done
curl -sf "$BASE/api/v1/health" >/dev/null || {
    echo "corpus_smoke: /api/v1/health never came up" >&2
    exit 1
}

fail() {
    echo "corpus_smoke: $1" >&2
    echo "--- response ---" >&2
    echo "$2" >&2
    exit 1
}

# --- register a second corpus over REST ------------------------------------
# One 48-sentence document (slow to explain exactly) plus padding.
body=""
for i in $(seq 0 47); do
    if [ $((i % 4)) -eq 0 ]; then
        body+="The covid outbreak update number $i arrives today. "
    else
        body+="Filler sentence number $i talks about daily life. "
    fi
done
{
    printf '{"docs": ['
    printf '{"name":"long-doc","title":"Long covid doc","body":"%s"}' "$body"
    for i in $(seq 1 6); do
        printf ',{"name":"pad-%s","title":"Report %s","body":"covid outbreak report number %s with several extra words for normalisation."}' \
            "$i" "$i" "$i"
    done
    printf ']}'
} >"$WORK/newsroom.json"

PUT=$(curl -sf -X PUT "$BASE/api/v1/corpora/newsroom" \
    -d @"$WORK/newsroom.json")
echo "$PUT" | grep -q '"corpus":"newsroom"' || fail "PUT corpora missing corpus" "$PUT"
echo "$PUT" | grep -q '"generation":0' || fail "fresh corpus not at generation 0" "$PUT"
echo "corpus_smoke: registered corpus 'newsroom' at generation 0"

LIST=$(curl -sf "$BASE/api/v1/corpora")
echo "$LIST" | grep -q '"default"' || fail "corpora listing missing default" "$LIST"
echo "$LIST" | grep -q '"newsroom"' || fail "corpora listing missing newsroom" "$LIST"

# --- every 2xx names its corpus and generation -----------------------------
RANK=$(curl -sf "$BASE/api/v1/rank" \
    -d '{"query": "covid outbreak", "k": 5, "corpus": "newsroom"}')
echo "$RANK" | grep -q '"corpus":"newsroom"' || fail "rank missing corpus field" "$RANK"
echo "$RANK" | grep -q '"generation":0' || fail "rank missing generation 0" "$RANK"
echo "$RANK" | grep -q '"long-doc"' || fail "rank missing long-doc" "$RANK"
echo "corpus_smoke: rank answered from newsroom@0"

# --- occupy the single worker, then queue the job under test ----------------
SLOW_REQ='{"endpoint": "sentence-removal", "request": {"corpus": "newsroom", "query": "covid outbreak", "k": 1, "doc": 0, "n": 999, "max_size": 3, "max_candidates": 48, "eval_exact": true, "eval_threads": 1, "deadline_ms": 8000}}'
SUBMIT=$(curl -sf "$BASE/api/v1/jobs" -d "$SLOW_REQ")
SLOW_ID=$(echo "$SUBMIT" | sed -n 's/.*"job_id":"\([^"]*\)".*/\1/p')
[ -n "$SLOW_ID" ] || fail "slow job submit returned no job_id" "$SUBMIT"
for _ in $(seq 1 120); do
    POLL=$(curl -sf "$BASE/api/v1/jobs/$SLOW_ID")
    echo "$POLL" | grep -q '"status":"queued"' || break
    sleep 0.1
done

TARGET_REQ='{"endpoint": "sentence-removal", "request": {"corpus": "newsroom", "query": "covid outbreak", "k": 1, "doc": 0, "n": 1, "max_size": 1, "max_candidates": 4}}'
SUBMIT=$(curl -sf "$BASE/api/v1/jobs" -d "$TARGET_REQ")
echo "$SUBMIT" | grep -q '"generation":0' || fail "queued job not pinned at generation 0" "$SUBMIT"
JOB_ID=$(echo "$SUBMIT" | sed -n 's/.*"job_id":"\([^"]*\)".*/\1/p')
[ -n "$JOB_ID" ] || fail "target job submit returned no job_id" "$SUBMIT"
echo "corpus_smoke: job $JOB_ID queued against newsroom@0"

# --- mutate the live corpus: delete the very doc the job explains -----------
DEL=$(curl -sf -X DELETE "$BASE/api/v1/corpora/newsroom/docs/long-doc" \
    -d '{"refresh": true}')
echo "$DEL" | grep -q '"status":"applied"' || fail "refresh delete not applied" "$DEL"
echo "$DEL" | grep -q '"generation":0' && fail "delete did not bump the generation" "$DEL"
echo "corpus_smoke: deleted long-doc; newsroom generation bumped"

RANK=$(curl -sf "$BASE/api/v1/rank" \
    -d '{"query": "covid outbreak", "k": 5, "corpus": "newsroom"}')
echo "$RANK" | grep -q '"long-doc"' && fail "live rank still sees the deleted doc" "$RANK"
echo "$RANK" | grep -q '"generation":0' && fail "live rank still at generation 0" "$RANK"
echo "corpus_smoke: live rank answers from the mutated generation"

# --- the pinned job still completes against generation 0 --------------------
POLL=""
for _ in $(seq 1 240); do
    POLL=$(curl -sf "$BASE/api/v1/jobs/$JOB_ID")
    echo "$POLL" | grep -q '"status":"complete"' && break
    echo "$POLL" | grep -Eq '"status":"(queued|running)"' ||
        fail "pinned job ended in an unexpected state" "$POLL"
    sleep 0.25
done
echo "$POLL" | grep -q '"status":"complete"' || fail "pinned job never completed" "$POLL"
echo "$POLL" | grep -q '"generation":0' || fail "pinned job lost its generation" "$POLL"
echo "$POLL" | grep -q '"result"' || fail "pinned job carries no result" "$POLL"
echo "corpus_smoke: job $JOB_ID completed against pinned newsroom@0 after the delete"

# --- once nothing pins generation 0, it is gone -----------------------------
for _ in $(seq 1 240); do
    POLL=$(curl -sf "$BASE/api/v1/jobs/$SLOW_ID")
    echo "$POLL" | grep -Eq '"status":"(queued|running)"' || break
    sleep 0.25
done
GONE=$(curl -s "$BASE/api/v1/rank" \
    -d '{"query": "covid outbreak", "k": 5, "corpus": "newsroom", "generation": 0}')
echo "$GONE" | grep -q '"generation_gone"' ||
    fail "expected generation_gone for retired unpinned generation" "$GONE"
echo "corpus_smoke: retired generation 0 answers 410 generation_gone"

# --- /metrics: per-corpus families ------------------------------------------
METRICS=$(curl -sf "$BASE/metrics")
for SERIES in \
    'credence_corpus_count 2' \
    'credence_corpus_generation{corpus="newsroom"}' \
    'credence_corpus_docs{corpus="newsroom"}' \
    'credence_corpus_pending_ops{corpus="newsroom"}' \
    'credence_corpus_merges_total{corpus="newsroom"}' \
    'credence_corpus_generation{corpus="default"}'; do
    echo "$METRICS" | grep -qF "$SERIES" ||
        fail "/metrics missing $SERIES" "$METRICS"
done
echo "corpus_smoke: /metrics exports the credence_corpus_* families"

# --- removal ----------------------------------------------------------------
DEL=$(curl -sf -X DELETE "$BASE/api/v1/corpora/newsroom")
echo "$DEL" | grep -q '"status":"removed"' || fail "corpus removal failed" "$DEL"
GONE=$(curl -s "$BASE/api/v1/rank" \
    -d '{"query": "covid outbreak", "k": 5, "corpus": "newsroom"}')
echo "$GONE" | grep -q '"corpus_not_found"' ||
    fail "removed corpus still answers" "$GONE"
echo "corpus_smoke: corpus 'newsroom' removed cleanly"

echo "corpus_smoke: all green"
