#!/usr/bin/env bash
# End-to-end smoke test for credence-serve: boots the release binary on a
# local port, drives the versioned REST surface with curl, and asserts the
# request-lifecycle budget actually caps a live search.
#
# The demo corpus is too small to exercise a wall-clock deadline (its worst
# document finishes in ~16 ms), so the script writes a synthetic corpus with
# one 48-sentence document; an exact-serial sentence-removal search over it
# takes seconds uncapped, which a 250 ms deadline cuts short mid-search.
#
# Usage: ./scripts/serve_smoke.sh   (expects target/release/credence-serve)

set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/credence-serve
ADDR=127.0.0.1:18642
BASE="http://$ADDR"
WORK=target/serve-smoke
DEADLINE_MS=250

[ -x "$BIN" ] || {
    echo "serve_smoke: $BIN missing; run cargo build --release first" >&2
    exit 1
}

mkdir -p "$WORK"

# --- synthetic corpus: one long query-relevant doc plus padding ------------
{
    body=""
    for i in $(seq 0 47); do
        if [ $((i % 4)) -eq 0 ]; then
            body+="The covid outbreak update number $i arrives today. "
        else
            body+="Filler sentence number $i talks about daily life. "
        fi
    done
    printf '{"name":"long-doc","title":"Long covid doc","body":"%s"}\n' "$body"
    for i in $(seq 1 12); do
        printf '{"name":"pad-%s","title":"Report %s","body":"covid outbreak report number %s with several extra words to pad the length of this story for realistic normalisation."}\n' \
            "$i" "$i" "$i"
    done
} >"$WORK/corpus.jsonl"

"$BIN" --addr "$ADDR" --corpus "$WORK/corpus.jsonl" >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 80); do
    curl -sf "$BASE/api/v1/health" >/dev/null 2>&1 && break
    kill -0 "$SERVE_PID" 2>/dev/null || {
        echo "serve_smoke: server died during startup:" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    }
    sleep 0.25
done
curl -sf "$BASE/api/v1/health" >/dev/null || {
    echo "serve_smoke: /api/v1/health never came up" >&2
    exit 1
}

fail() {
    echo "serve_smoke: $1" >&2
    echo "--- response ---" >&2
    echo "$2" >&2
    exit 1
}

# --- /api/v1/rank ----------------------------------------------------------
RANK=$(curl -sf "$BASE/api/v1/rank" -d '{"query": "covid outbreak", "k": 5}')
echo "$RANK" | grep -q '"ranking"' || fail "/api/v1/rank missing ranking" "$RANK"
echo "$RANK" | grep -q '"long-doc"' || fail "/api/v1/rank missing long-doc" "$RANK"
echo "serve_smoke: /api/v1/rank ok"

# --- deadline-capped search ------------------------------------------------
# Exact serial evaluation of the 48-sentence doc runs for seconds uncapped;
# the deadline must cut it off and hand back a well-formed partial result
# within 2x the requested budget (the serial path checks the clock before
# every candidate, so the overshoot is one evaluation).
REQ=$(printf '{"query": "covid outbreak", "k": 5, "doc": 0, "n": 999, "max_size": 3, "max_candidates": 48, "eval_exact": true, "eval_threads": 1, "deadline_ms": %s}' "$DEADLINE_MS")
START_NS=$(date +%s%N)
PARTIAL=$(curl -sf "$BASE/api/v1/explain/sentence-removal" -d "$REQ")
ELAPSED_MS=$((($(date +%s%N) - START_NS) / 1000000))

echo "$PARTIAL" | grep -q '"status":"deadline"' ||
    fail "expected status \"deadline\"" "$PARTIAL"
EVALS=$(echo "$PARTIAL" | sed -n 's/.*"candidates_evaluated":\([0-9]*\).*/\1/p')
[ -n "$EVALS" ] && [ "$EVALS" -gt 0 ] ||
    fail "expected a nonzero candidates_evaluated" "$PARTIAL"
[ "$ELAPSED_MS" -le $((DEADLINE_MS * 2)) ] ||
    fail "deadline-capped request took ${ELAPSED_MS}ms (> 2x ${DEADLINE_MS}ms budget)" "$PARTIAL"
echo "serve_smoke: deadline budget tripped after $EVALS evals in ${ELAPSED_MS}ms (budget ${DEADLINE_MS}ms)"

# --- async jobs: submit -> poll -> complete --------------------------------
SUBMIT=$(curl -sf "$BASE/api/v1/jobs" \
    -d '{"endpoint": "sentence-removal", "request": {"query": "covid outbreak", "k": 3, "doc": 1, "n": 1}}')
echo "$SUBMIT" | grep -q '"status":"queued"' || fail "job submit not queued" "$SUBMIT"
JOB_ID=$(echo "$SUBMIT" | sed -n 's/.*"job_id":"\([^"]*\)".*/\1/p')
[ -n "$JOB_ID" ] || fail "job submit returned no job_id" "$SUBMIT"

POLL=""
for _ in $(seq 1 120); do
    POLL=$(curl -sf "$BASE/api/v1/jobs/$JOB_ID")
    echo "$POLL" | grep -q '"status":"complete"' && break
    sleep 0.25
done
echo "$POLL" | grep -q '"status":"complete"' || fail "job $JOB_ID never completed" "$POLL"
echo "$POLL" | grep -q '"result"' || fail "completed job carries no result" "$POLL"
echo "$POLL" | grep -q '"result_status":200' || fail "completed job result_status != 200" "$POLL"
echo "serve_smoke: job $JOB_ID completed with a stored result"

# --- feature attribution: sync, async job, cache-hit repeat ----------------
FA_REQ='{"query": "covid outbreak", "k": 5, "doc": 0, "samples": 64, "seed": 11, "top_m": 6}'
FA=$(curl -sf "$BASE/api/v1/explain/feature_attribution" -d "$FA_REQ")
echo "$FA" | grep -q '"attributions"' || fail "feature_attribution missing attributions" "$FA"
echo "$FA" | grep -q '"fidelity"' || fail "feature_attribution missing fidelity" "$FA"
echo "$FA" | grep -q '"status":"complete"' || fail "feature_attribution not complete" "$FA"

FA_SUBMIT=$(curl -sf "$BASE/api/v1/jobs" \
    -d "$(printf '{"endpoint": "feature_attribution", "request": %s}' "$FA_REQ")")
FA_JOB=$(echo "$FA_SUBMIT" | sed -n 's/.*"job_id":"\([^"]*\)".*/\1/p')
[ -n "$FA_JOB" ] || fail "feature_attribution job submit returned no job_id" "$FA_SUBMIT"
POLL=""
for _ in $(seq 1 120); do
    POLL=$(curl -sf "$BASE/api/v1/jobs/$FA_JOB")
    echo "$POLL" | grep -q '"status":"complete"' && break
    sleep 0.25
done
echo "$POLL" | grep -q '"status":"complete"' ||
    fail "feature_attribution job $FA_JOB never completed" "$POLL"
echo "$POLL" | grep -qF "$(echo "$FA" | sed 's/^{//; s/}$//')" ||
    fail "feature_attribution job result differs from the synchronous payload" "$POLL"

# The repeat is answered from the explanation cache with identical bytes.
FA2=$(curl -sf "$BASE/api/v1/explain/feature_attribution" -d "$FA_REQ")
[ "$FA" = "$FA2" ] || fail "cached feature_attribution repeat is not byte-identical" "$FA2"
echo "serve_smoke: feature_attribution sync + job + cached repeat ok"

# --- async jobs: cancel a running search -----------------------------------
SLOW_REQ=$(printf '{"endpoint": "sentence-removal", "request": %s}' \
    "$(printf '{"query": "covid outbreak", "k": 5, "doc": 0, "n": 999, "max_size": 3, "max_candidates": 48, "eval_exact": true, "eval_threads": 1, "deadline_ms": 30000}')")
SUBMIT=$(curl -sf "$BASE/api/v1/jobs" -d "$SLOW_REQ")
SLOW_ID=$(echo "$SUBMIT" | sed -n 's/.*"job_id":"\([^"]*\)".*/\1/p')
[ -n "$SLOW_ID" ] || fail "slow job submit returned no job_id" "$SUBMIT"

# Wait for a worker to claim it, then cancel mid-search.
for _ in $(seq 1 120); do
    POLL=$(curl -sf "$BASE/api/v1/jobs/$SLOW_ID")
    echo "$POLL" | grep -q '"status":"queued"' || break
    sleep 0.25
done
CANCEL=$(curl -sf -X DELETE "$BASE/api/v1/jobs/$SLOW_ID")
for _ in $(seq 1 120); do
    POLL=$(curl -sf "$BASE/api/v1/jobs/$SLOW_ID")
    echo "$POLL" | grep -q '"status":"cancelled"' && break
    sleep 0.25
done
echo "$POLL" | grep -q '"status":"cancelled"' ||
    fail "slow job $SLOW_ID never observed the cancel (cancel response: $CANCEL)" "$POLL"
echo "serve_smoke: job $SLOW_ID cancelled mid-search"

# --- /metrics --------------------------------------------------------------
METRICS=$(curl -sf "$BASE/metrics")
echo "$METRICS" | grep -q '^# TYPE credence_requests_total counter' ||
    fail "/metrics missing credence_requests_total TYPE line" "$METRICS"
echo "$METRICS" | grep -q 'credence_requests_total{endpoint="rank",status="200"}' ||
    fail "/metrics missing rank request counter" "$METRICS"
HITS=$(echo "$METRICS" | sed -n 's/^credence_deadline_hits_total \([0-9]*\)$/\1/p')
[ -n "$HITS" ] && [ "$HITS" -ge 1 ] ||
    fail "expected credence_deadline_hits_total >= 1" "$METRICS"
for SERIES in \
    'credence_jobs_queue_depth' \
    'credence_jobs_total{state="queued"}' \
    'credence_jobs_total{state="running"}' \
    'credence_jobs_total{state="complete"}' \
    'credence_jobs_total{state="cancelled"}' \
    'credence_jobs_rejected_total' \
    'credence_jobs_queue_wait_seconds_count' \
    'credence_jobs_execution_seconds_count'; do
    echo "$METRICS" | grep -qF "$SERIES" ||
        fail "/metrics missing $SERIES" "$METRICS"
done
COMPLETED=$(echo "$METRICS" | sed -n 's/^credence_jobs_total{state="complete"} \([0-9]*\)$/\1/p')
[ -n "$COMPLETED" ] && [ "$COMPLETED" -ge 1 ] ||
    fail "expected credence_jobs_total{state=\"complete\"} >= 1" "$METRICS"
for SERIES in \
    'credence_explain_lime_fits_total' \
    'credence_explain_lime_samples_total' \
    'credence_explain_lime_attributions_total' \
    'credence_explain_lime_partials_total' \
    'credence_explain_lime_fidelity_avg'; do
    echo "$METRICS" | grep -qF "$SERIES" ||
        fail "/metrics missing $SERIES" "$METRICS"
done
FITS=$(echo "$METRICS" | sed -n 's/^credence_explain_lime_fits_total \([0-9]*\)$/\1/p')
[ -n "$FITS" ] && [ "$FITS" -ge 1 ] ||
    fail "expected credence_explain_lime_fits_total >= 1" "$METRICS"
echo "serve_smoke: /metrics ok (deadline hits: $HITS, jobs completed: $COMPLETED, lime fits: $FITS)"

echo "serve_smoke: all green"
