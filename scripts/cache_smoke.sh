#!/usr/bin/env bash
# End-to-end smoke test for the cross-request explanation cache: boots
# the release binary and proves the cache contract on the wire:
#
#   * a repeated explanation request is answered from the cache
#     (credence_explain_cache_hits_total advances, bytes identical),
#   * explain_cache_bypass skips the cache without disturbing it,
#   * a corpus mutation applied with {"refresh": true} bumps the live
#     generation and flips the same request back to a miss,
#   * /metrics renders every explain-cache and ranking-cache family.
#
# Usage: ./scripts/cache_smoke.sh   (expects target/release/credence-serve)

set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/credence-serve
ADDR=127.0.0.1:18647
BASE="http://$ADDR"
WORK=target/cache-smoke

[ -x "$BIN" ] || {
    echo "cache_smoke: $BIN missing; run cargo build --release first" >&2
    exit 1
}

mkdir -p "$WORK"

"$BIN" --addr "$ADDR" >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 80); do
    curl -sf "$BASE/api/v1/health" >/dev/null 2>&1 && break
    kill -0 "$SERVE_PID" 2>/dev/null || {
        echo "cache_smoke: server died during startup:" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    }
    sleep 0.25
done
curl -sf "$BASE/api/v1/health" >/dev/null || {
    echo "cache_smoke: /api/v1/health never came up" >&2
    exit 1
}

fail() {
    echo "cache_smoke: $1" >&2
    echo "--- response ---" >&2
    echo "$2" >&2
    exit 1
}

# One counter value out of a /metrics scrape.
metric() {
    curl -sf "$BASE/metrics" | awk -v name="$1" '$1 == name { print $2 }'
}

REQ='{"query": "covid outbreak", "k": 3, "doc": 2, "n": 2, "max_evals": 64}'
EXPLAIN="$BASE/api/v1/explain/sentence-removal"

# --- a repeated request is a hit with identical bytes ------------------------
R1=$(curl -sf "$EXPLAIN" -d "$REQ")
echo "$R1" | grep -q '"status":"' || fail "first explanation malformed" "$R1"
HITS_BEFORE=$(metric credence_explain_cache_hits_total)
R2=$(curl -sf "$EXPLAIN" -d "$REQ")
[ "$R1" = "$R2" ] || fail "repeat response is not byte-identical" "$R2"
HITS_AFTER=$(metric credence_explain_cache_hits_total)
[ "$HITS_AFTER" -gt "$HITS_BEFORE" ] ||
    fail "repeat request did not hit the cache (hits $HITS_BEFORE -> $HITS_AFTER)" "$R2"
MISSES=$(metric credence_explain_cache_misses_total)
[ "$MISSES" -ge 1 ] || fail "first request did not count as a miss" "$MISSES"
echo "cache_smoke: repeated request served from cache (hits $HITS_BEFORE -> $HITS_AFTER)"

# --- explain_cache_bypass recomputes without touching the cache --------------
HITS_BEFORE=$(metric credence_explain_cache_hits_total)
BYPASS=$(curl -sf "$EXPLAIN" \
    -d '{"query": "covid outbreak", "k": 3, "doc": 2, "n": 2, "max_evals": 64, "explain_cache_bypass": true}')
[ "$BYPASS" = "$R1" ] || fail "bypassed recomputation diverged from cached bytes" "$BYPASS"
HITS_AFTER=$(metric credence_explain_cache_hits_total)
[ "$HITS_AFTER" -eq "$HITS_BEFORE" ] ||
    fail "bypass consulted the cache (hits $HITS_BEFORE -> $HITS_AFTER)" "$BYPASS"
echo "cache_smoke: explain_cache_bypass recomputes identical bytes, cache untouched"

# --- a published mutation flips the same request to a miss -------------------
MISSES_BEFORE=$(metric credence_explain_cache_misses_total)
ADD=$(curl -sf "$BASE/api/v1/corpora/default/docs" \
    -d '{"name": "cache-smoke-extra", "title": "Filler", "body": "spring regatta filler text with no outbreak terms", "refresh": true}')
echo "$ADD" | grep -q '"status":"applied"' || fail "refresh insert not applied" "$ADD"
R3=$(curl -sf "$EXPLAIN" -d "$REQ")
echo "$R3" | grep -q '"status":"' || fail "post-publish explanation malformed" "$R3"
MISSES_AFTER=$(metric credence_explain_cache_misses_total)
[ "$MISSES_AFTER" -gt "$MISSES_BEFORE" ] ||
    fail "generation publish did not invalidate (misses $MISSES_BEFORE -> $MISSES_AFTER)" "$R3"
echo "cache_smoke: corpus mutation + refresh invalidated the entry (misses $MISSES_BEFORE -> $MISSES_AFTER)"

# --- /metrics: every cache family renders ------------------------------------
METRICS=$(curl -sf "$BASE/metrics")
for SERIES in \
    credence_explain_cache_hits_total \
    credence_explain_cache_misses_total \
    credence_explain_cache_coalesced_total \
    credence_explain_cache_evictions_total \
    credence_explain_cache_size \
    credence_ranking_cache_size \
    credence_ranking_cache_evictions_total; do
    echo "$METRICS" | grep -q "^$SERIES " ||
        fail "/metrics missing $SERIES" "$METRICS"
done
echo "cache_smoke: /metrics exports the explain-cache and ranking-cache families"

echo "cache_smoke: all green"
