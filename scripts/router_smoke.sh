#!/usr/bin/env bash
# End-to-end smoke test for cluster mode: boots two worker credence-serve
# processes over the demo corpus plus a scatter-gather router in front of
# them, and asserts the clustered /api/v1/rank response is byte-for-byte
# identical to a single worker's — the merge contract the whole mode
# rests on — plus one doc-affine explainer relayed through the router.
#
# Usage: ./scripts/router_smoke.sh   (expects target/release/credence-serve)

set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/credence-serve
W1=127.0.0.1:18651
W2=127.0.0.1:18652
RT=127.0.0.1:18653
WORK=target/router-smoke

[ -x "$BIN" ] || {
    echo "router_smoke: $BIN missing; run cargo build --release first" >&2
    exit 1
}

mkdir -p "$WORK"
PIDS=()
trap 'for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done' EXIT

"$BIN" --addr "$W1" >"$WORK/worker1.log" 2>&1 &
PIDS+=($!)
"$BIN" --addr "$W2" >"$WORK/worker2.log" 2>&1 &
PIDS+=($!)
"$BIN" --addr "$RT" --router --workers "$W1,$W2" >"$WORK/router.log" 2>&1 &
PIDS+=($!)

wait_up() {
    local base=$1 log=$2
    for _ in $(seq 1 120); do
        curl -sf "http://$base/api/v1/health" >/dev/null 2>&1 && return 0
        sleep 0.25
    done
    echo "router_smoke: http://$base never came up" >&2
    cat "$log" >&2
    exit 1
}
wait_up "$W1" "$WORK/worker1.log"
wait_up "$W2" "$WORK/worker2.log"
wait_up "$RT" "$WORK/router.log"

fail() {
    echo "router_smoke: $1" >&2
    echo "--- detail ---" >&2
    echo "$2" >&2
    exit 1
}

# --- /rank byte parity -----------------------------------------------------
# Every worker replicates the corpus, so worker 1 alone IS the single-node
# answer; the router must reassemble exactly those bytes from partitioned
# legs.
for REQ in '{"query": "covid outbreak", "k": 10}' \
           '{"query": "vaccine", "k": 3}' \
           '{"query": "covid", "k": 60}'; do
    SINGLE=$(curl -sf "http://$W1/api/v1/rank" -d "$REQ")
    ROUTED=$(curl -sf "http://$RT/api/v1/rank" -d "$REQ")
    [ "$SINGLE" = "$ROUTED" ] ||
        fail "/rank bytes diverged for $REQ" "single: $SINGLE
routed: $ROUTED"
done
echo "router_smoke: /rank byte-identical to single-node across 3 queries"

# --- doc-affine explainer through the router -------------------------------
REQ='{"query": "covid outbreak", "k": 10, "doc": 0, "n": 2}'
SINGLE=$(curl -sf "http://$W1/api/v1/explain/sentence-removal" -d "$REQ")
ROUTED=$(curl -sf "http://$RT/api/v1/explain/sentence-removal" -d "$REQ")
[ -n "$SINGLE" ] || fail "worker explainer returned nothing" "$SINGLE"
[ "$SINGLE" = "$ROUTED" ] ||
    fail "explainer bytes diverged through the router" "single: $SINGLE
routed: $ROUTED"
echo "router_smoke: sentence-removal explainer byte-identical through the router"

# --- router observability --------------------------------------------------
METRICS=$(curl -sf "http://$RT/metrics")
echo "$METRICS" | grep -q '^credence_router_workers 2$' ||
    fail "/metrics missing credence_router_workers 2" "$METRICS"
echo "$METRICS" | grep -q '^credence_router_fanout_legs_total' ||
    fail "/metrics missing fanout leg counter" "$METRICS"
echo "router_smoke: router /metrics ok"

echo "router_smoke: all green"
