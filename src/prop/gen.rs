//! Value generators with attached shrinkers.
//!
//! A [`Gen<T>`] pairs a sampling closure with a shrinking closure. Shrinking
//! is *local*: given a failing value it proposes a bounded list of strictly
//! simpler candidates; the runner re-tests candidates and descends greedily.
//! Generators built with [`Gen::map`] or [`gens::one_of`] don't shrink
//! (there is no inverse to shrink through) — compose from the primitives
//! below when shrinking matters.

use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

use credence_rng::rngs::StdRng;
use credence_rng::Rng;

/// A reusable generator of `T` values with an attached shrinker.
pub struct Gen<T> {
    generate: Rc<dyn Fn(&mut StdRng) -> T>,
    shrink: Rc<dyn Fn(&T) -> Vec<T>>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Self {
            generate: Rc::clone(&self.generate),
            shrink: Rc::clone(&self.shrink),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// A generator from a sampling closure, with no shrinking.
    pub fn new(generate: impl Fn(&mut StdRng) -> T + 'static) -> Self {
        Self {
            generate: Rc::new(generate),
            shrink: Rc::new(|_| Vec::new()),
        }
    }

    /// A generator with both a sampler and a shrinker. The shrinker must
    /// propose *simpler* values only — the runner guards against cycles
    /// with a step budget, not candidate tracking.
    pub fn with_shrink(
        generate: impl Fn(&mut StdRng) -> T + 'static,
        shrink: impl Fn(&T) -> Vec<T> + 'static,
    ) -> Self {
        Self {
            generate: Rc::new(generate),
            shrink: Rc::new(shrink),
        }
    }

    /// Draw one value.
    pub fn generate(&self, rng: &mut StdRng) -> T {
        (self.generate)(rng)
    }

    /// Simpler candidates for `value` (empty when unshrinkable).
    pub fn shrink(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }

    /// Transform generated values. The mapped generator does not shrink.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let g = self.generate;
        Gen::new(move |rng| f(g(rng)))
    }
}

/// The generator constructors. Import as `use credence_repro::prop::gens;`
/// and call `gens::u32_range(0..100)` etc.
pub mod gens {
    use super::*;

    // -- numeric ----------------------------------------------------------

    macro_rules! int_gens {
        ($($fn_range:ident, $fn_any:ident, $t:ty);* $(;)?) => {$(
            /// Uniform draw from the half-open range, shrinking toward its
            /// start (via start, halving, and decrement — so greedy descent
            /// reaches the smallest failing value).
            pub fn $fn_range(range: Range<$t>) -> Gen<$t> {
                assert!(range.start < range.end, "empty range");
                let lo = range.start;
                Gen::with_shrink(
                    move |rng| rng.gen_range(range.clone()),
                    move |&x| {
                        let mut out = Vec::new();
                        if x > lo {
                            out.push(lo);
                            let mid = lo + (x - lo) / 2;
                            if mid != lo && mid != x {
                                out.push(mid);
                            }
                            out.push(x - 1);
                        }
                        out.dedup();
                        out
                    },
                )
            }

            /// Uniform draw over the full domain, shrinking toward zero.
            pub fn $fn_any() -> Gen<$t> {
                Gen::with_shrink(
                    |rng| rng.gen_range(<$t>::MIN..=<$t>::MAX),
                    |&x| {
                        let mut out = Vec::new();
                        if x != 0 {
                            out.push(0);
                            out.push(x / 2);
                            if x > 0 { out.push(x - 1); } else { out.push(x + 1); }
                        }
                        out.dedup();
                        out
                    },
                )
            }
        )*};
    }

    int_gens!(
        u8_range, u8_any, u8;
        u32_range, u32_any, u32;
        u64_range, u64_any, u64;
        usize_range, usize_any, usize;
        i64_range, i64_any, i64;
    );

    /// Uniform `f64` in `[lo, hi)`, shrinking toward `lo` (and `0.0` when
    /// the range contains it).
    pub fn f64_range(range: Range<f64>) -> Gen<f64> {
        assert!(range.start < range.end, "empty range");
        let (lo, hi) = (range.start, range.end);
        Gen::with_shrink(
            move |rng| rng.gen_range(lo..hi),
            move |&x| {
                let mut out = Vec::new();
                if x != lo {
                    out.push(lo);
                    if lo < 0.0 && x > 0.0 {
                        out.push(0.0);
                    }
                    let mid = lo + (x - lo) / 2.0;
                    if mid != lo && mid != x {
                        out.push(mid);
                    }
                }
                out
            },
        )
    }

    /// `true`/`false` with equal probability; `true` shrinks to `false`.
    pub fn bool_any() -> Gen<bool> {
        Gen::with_shrink(
            |rng| rng.gen_bool(0.5),
            |&b| if b { vec![false] } else { Vec::new() },
        )
    }

    // -- characters and strings -------------------------------------------

    /// An arbitrary Unicode scalar value. Biased: half the draws are
    /// printable ASCII (where most tokenizer/JSON edge cases live), the
    /// rest span the full scalar range minus surrogates. Shrinks toward
    /// `'a'`.
    pub fn char_any() -> Gen<char> {
        Gen::with_shrink(
            |rng| {
                if rng.gen_bool(0.5) {
                    rng.gen_range(0x20u32..0x7F) as u8 as char
                } else {
                    loop {
                        let c = rng.gen_range(0u32..0x11_0000);
                        if let Some(c) = char::from_u32(c) {
                            return c;
                        }
                    }
                }
            },
            |&c| {
                let mut out = Vec::new();
                if c != 'a' {
                    out.push('a');
                    if !c.is_ascii() {
                        out.push('~');
                    }
                }
                out
            },
        )
    }

    /// A character drawn uniformly from an explicit alphabet.
    pub fn char_in(alphabet: &str) -> Gen<char> {
        let chars: Rc<[char]> = alphabet.chars().collect::<Vec<_>>().into();
        assert!(!chars.is_empty(), "empty alphabet");
        let first = chars[0];
        Gen::with_shrink(
            move |rng| chars[rng.gen_range(0..chars.len())],
            move |&c| if c != first { vec![first] } else { Vec::new() },
        )
    }

    /// A string of characters from `alphabet`, length uniform in `len`.
    /// Shrinks by dropping characters (down to `len.start`) and by
    /// simplifying characters to the alphabet's first.
    pub fn string_of(alphabet: &str, len: Range<usize>) -> Gen<String> {
        string_from(char_in(alphabet), len)
    }

    /// An arbitrary (mostly-ASCII-biased, see [`char_any`]) string with
    /// length uniform in `len` — the stand-in for proptest's `".{0,n}"`.
    pub fn any_string(len: Range<usize>) -> Gen<String> {
        string_from(char_any(), len)
    }

    /// A string whose characters come from an arbitrary char generator.
    pub fn string_from(ch: Gen<char>, len: Range<usize>) -> Gen<String> {
        assert!(len.start < len.end, "empty length range");
        let min_len = len.start;
        let ch2 = ch.clone();
        Gen::with_shrink(
            move |rng| {
                let n = rng.gen_range(len.clone());
                (0..n).map(|_| ch.generate(rng)).collect()
            },
            move |s: &String| {
                let chars: Vec<char> = s.chars().collect();
                let mut out: Vec<String> = Vec::new();
                if chars.len() > min_len {
                    // Empty (or minimal prefix) first, then halves, then
                    // single-character deletions.
                    out.push(chars[..min_len].iter().collect());
                    if chars.len() >= 2 && chars.len() / 2 >= min_len {
                        out.push(chars[..chars.len() / 2].iter().collect());
                    }
                    for i in 0..chars.len().min(16) {
                        if chars.len() - 1 >= min_len {
                            let mut c = chars.clone();
                            c.remove(i);
                            out.push(c.into_iter().collect());
                        }
                    }
                }
                // Simplify individual characters.
                for i in 0..chars.len().min(8) {
                    for rc in ch2.shrink(&chars[i]) {
                        let mut c = chars.clone();
                        c[i] = rc;
                        out.push(c.into_iter().collect());
                    }
                }
                out.retain(|cand| cand != s);
                out.dedup();
                out
            },
        )
    }

    // -- collections -------------------------------------------------------

    /// A vector of `elem` draws, length uniform in `len`. Shrinks by
    /// dropping elements (minimal prefix, halves, single deletions — never
    /// below `len.start`) and by shrinking individual elements.
    pub fn vec_of<T: Clone + Debug + 'static>(elem: Gen<T>, len: Range<usize>) -> Gen<Vec<T>> {
        assert!(len.start < len.end, "empty length range");
        let min_len = len.start;
        let elem2 = elem.clone();
        Gen::with_shrink(
            move |rng| {
                let n = rng.gen_range(len.clone());
                (0..n).map(|_| elem.generate(rng)).collect()
            },
            move |v: &Vec<T>| {
                let mut out: Vec<Vec<T>> = Vec::new();
                if v.len() > min_len {
                    out.push(v[..min_len].to_vec());
                    if v.len() >= 2 && v.len() / 2 >= min_len {
                        out.push(v[..v.len() / 2].to_vec());
                    }
                    for i in 0..v.len().min(16) {
                        if v.len() - 1 >= min_len {
                            let mut w = v.clone();
                            w.remove(i);
                            out.push(w);
                        }
                    }
                }
                for i in 0..v.len().min(8) {
                    for rc in elem2.shrink(&v[i]) {
                        let mut w = v.clone();
                        w[i] = rc;
                        out.push(w);
                    }
                }
                out
            },
        )
    }

    /// A pair of independent draws; shrinks each side while holding the
    /// other fixed.
    pub fn pair<A, B>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)>
    where
        A: Clone + Debug + 'static,
        B: Clone + Debug + 'static,
    {
        let (a2, b2) = (a.clone(), b.clone());
        Gen::with_shrink(
            move |rng| (a.generate(rng), b.generate(rng)),
            move |(x, y)| {
                let mut out = Vec::new();
                for sx in a2.shrink(x) {
                    out.push((sx, y.clone()));
                }
                for sy in b2.shrink(y) {
                    out.push((x.clone(), sy));
                }
                out
            },
        )
    }

    /// Choose uniformly between alternative generators (proptest's
    /// `prop_oneof!`). Values don't shrink — the producing branch is not
    /// recorded.
    pub fn one_of<T: 'static>(alternatives: Vec<Gen<T>>) -> Gen<T> {
        assert!(!alternatives.is_empty(), "one_of: no alternatives");
        Gen::new(move |rng| {
            let i = rng.gen_range(0..alternatives.len());
            alternatives[i].generate(rng)
        })
    }

    /// Always the same value (proptest's `Just`).
    pub fn just<T: Clone + 'static>(value: T) -> Gen<T> {
        Gen::new(move |_| value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn int_range_respects_bounds_and_shrinks_down() {
        let g = gens::usize_range(3..10);
        let mut r = rng();
        for _ in 0..1000 {
            let x = g.generate(&mut r);
            assert!((3..10).contains(&x));
        }
        let c = g.shrink(&9);
        assert!(c.contains(&3) && c.contains(&8));
        assert!(g.shrink(&3).is_empty());
    }

    #[test]
    fn vec_shrink_never_violates_min_len() {
        let g = gens::vec_of(gens::u32_range(0..5), 2..6);
        for cand in g.shrink(&vec![1, 2, 3]) {
            assert!(cand.len() >= 2, "{cand:?}");
        }
    }

    #[test]
    fn string_shrink_proposes_simpler_strings() {
        let g = gens::string_of("abc", 0..8);
        let cands = g.shrink(&"cba".to_string());
        assert!(cands.iter().any(|s| s.is_empty()));
        assert!(cands.iter().any(|s| s.len() < 3));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = gens::vec_of(gens::u64_any(), 0..10);
        let a: Vec<_> = {
            let mut r = rng();
            (0..20).map(|_| g.generate(&mut r)).collect()
        };
        let b: Vec<_> = {
            let mut r = rng();
            (0..20).map(|_| g.generate(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn char_any_only_yields_valid_scalars() {
        let g = gens::char_any();
        let mut r = rng();
        for _ in 0..5000 {
            let c = g.generate(&mut r);
            assert!(char::from_u32(c as u32).is_some());
        }
    }
}
