//! The `prop!` test-definition macro and its assertion companions.
//!
//! These mirror the proptest macros the suite was originally written
//! against, so ported properties read the same:
//!
//! ```
//! use credence_repro::prop::gens;
//!
//! credence_repro::prop! {
//!     config(cases = 64);
//!     fn sum_is_commutative(a in gens::u32_range(0..1000), b in gens::u32_range(0..1000)) {
//!         credence_repro::prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! # fn main() {}
//! ```

/// Define a `#[test]` that checks a property over generated inputs.
///
/// Grammar: optional doc attributes, an optional
/// `config(field = value, …);` line overriding [`Config`](crate::prop::Config)
/// fields, then `fn name(binding in generator, …) { body }` with 1–4
/// bindings. Inside the body the bindings are *references* to the generated
/// values; use `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!` to fail
/// (shrinkably) and `prop_assume!` to discard a case.
#[macro_export]
macro_rules! prop {
    (
        $(#[$meta:meta])*
        $(config($($cfg_field:ident = $cfg_value:expr),* $(,)?);)?
        fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            #[allow(unused_mut)]
            let mut __config = $crate::prop::Config::default();
            $($(__config.$cfg_field = $cfg_value;)*)?
            let __gens = ($($gen,)+);
            $crate::prop::run_named(
                stringify!($name),
                __config,
                &__gens,
                |__case| {
                    let ($(ref $arg,)+) = *__case;
                    let __run = || -> $crate::prop::TestResult {
                        $body
                        $crate::prop::TestResult::Pass
                    };
                    __run()
                },
            );
        }
    };
}

/// Fail the surrounding property (shrinkably) when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return $crate::prop::TestResult::fail(format!(
                "{} (at {}:{})",
                format_args!($($fmt)+),
                file!(),
                line!(),
            ));
        }
    };
}

/// Fail the surrounding property when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fail the surrounding property when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case (it counts toward the discard budget, not the
/// case budget) when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::prop::TestResult::Discard;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prop::gens;

    crate::prop! {
        /// The macro wires doc attributes, config overrides, multiple
        /// bindings, assume, and all three assertion forms.
        config(cases = 64);
        fn macro_smoke(
            xs in gens::vec_of(gens::u32_range(0..50), 0..10),
            flag in gens::bool_any(),
        ) {
            crate::prop_assume!(xs.len() != 9);
            let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect();
            crate::prop_assert_eq!(doubled.len(), xs.len());
            for (&d, &x) in doubled.iter().zip(xs.iter()) {
                crate::prop_assert!(d == 2 * x, "doubling mismatch: {d} vs {x}");
            }
            if *flag {
                crate::prop_assert_ne!(1u8, 2u8);
            }
        }
    }
}
