//! The property runner: seeded case generation, discard accounting,
//! counterexample shrinking, and failure reporting.

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use credence_rng::rngs::StdRng;
use credence_rng::SeedableRng;

use super::Gen;

/// Outcome of evaluating a property on one generated case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestResult {
    /// The property held.
    Pass,
    /// The case was rejected by `prop_assume!`; it doesn't count toward
    /// the case budget.
    Discard,
    /// The property failed with a message.
    Fail(String),
}

impl TestResult {
    /// A failure annotated with the assertion site.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestResult::Fail(msg.into())
    }
}

/// Runner configuration. Every field has a sensible default; the `prop!`
/// macro lets individual properties override them with
/// `config(cases = 64);`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases that must pass (discards excluded).
    pub cases: u32,
    /// Explicit seed. Defaults to a hash of the property name, so every
    /// property explores a distinct but pinned stream. The
    /// `CREDENCE_PROP_SEED` environment variable overrides both.
    pub seed: Option<u64>,
    /// Upper bound on accepted shrink steps (each step re-tests a handful
    /// of candidates).
    pub max_shrink_steps: u32,
    /// Give up when discards exceed `cases × max_discard_factor`.
    pub max_discard_factor: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 256,
            seed: None,
            max_shrink_steps: 4096,
            max_discard_factor: 16,
        }
    }
}

/// A failing property run: the original and shrunk counterexamples.
#[derive(Debug, Clone)]
pub struct Failure<V> {
    /// The first failing case as generated.
    pub original: V,
    /// The smallest failing case shrinking reached.
    pub minimal: V,
    /// Failure message of the minimal case.
    pub message: String,
    /// 0-based index of the failing case.
    pub case: u32,
    /// The seed that reproduces the run.
    pub seed: u64,
    /// Accepted shrink steps.
    pub shrink_steps: u32,
}

/// A set of generators feeding one property — tuples of [`Gen`]s up to
/// arity 4, generating tuples of values and shrinking one coordinate at a
/// time.
pub trait GenSet {
    /// The tuple of values the property receives.
    type Value: Clone + Debug;

    /// Draw one case.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Simpler candidate cases.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value>;
}

macro_rules! impl_genset {
    ($(($($g:ident : $t:ident @ $idx:tt),+))*) => {$(
        impl<$($t: Clone + Debug + 'static),+> GenSet for ($(Gen<$t>,)+) {
            type Value = ($($t,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                // Tuple fields are drawn left to right.
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out: Vec<Self::Value> = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

impl_genset!(
    (a: A @ 0)
    (a: A @ 0, b: B @ 1)
    (a: A @ 0, b: B @ 1, c: C @ 2)
    (a: A @ 0, b: B @ 1, c: C @ 2, d: D @ 3)
);

/// FNV-1a, used to derive a per-property default seed from its name.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Serialises panic-hook swapping across concurrently failing properties.
static HOOK_LOCK: Mutex<()> = Mutex::new(());

/// Evaluate the property, converting panics into failures so assertion
/// macros and `unwrap` both count as counterexamples.
fn eval<V>(prop: &impl Fn(&V) -> TestResult, value: &V) -> TestResult {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("panic with non-string payload");
            TestResult::Fail(format!("panicked: {msg}"))
        }
    }
}

/// Run a property and return its failure, if any, instead of panicking —
/// the non-panicking core that [`run_named`] wraps and that the harness's
/// own shrinking tests call directly.
pub fn check<G, F>(name: &str, config: &Config, gens: &G, prop: F) -> Option<Failure<G::Value>>
where
    G: GenSet,
    F: Fn(&G::Value) -> TestResult,
{
    let seed = std::env::var("CREDENCE_PROP_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .or(config.seed)
        .unwrap_or_else(|| fnv1a(name));
    let mut rng = StdRng::seed_from_u64(seed);

    let mut passed = 0u32;
    let mut discarded = 0u64;
    let discard_budget = config.cases as u64 * config.max_discard_factor as u64;

    while passed < config.cases {
        let value = gens.generate(&mut rng);
        match eval(&prop, &value) {
            TestResult::Pass => passed += 1,
            TestResult::Discard => {
                discarded += 1;
                if discarded > discard_budget {
                    panic!(
                        "property '{name}': too many discards \
                         ({discarded} rejected before {passed}/{} cases passed) — \
                         loosen the generator or the prop_assume! conditions",
                        config.cases
                    );
                }
            }
            TestResult::Fail(first_message) => {
                // Shrink quietly: expected panics inside candidate
                // evaluation shouldn't spam captured test output.
                let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
                let saved_hook = std::panic::take_hook();
                std::panic::set_hook(Box::new(|_| {}));

                let mut minimal = value.clone();
                let mut message = first_message;
                let mut steps = 0u32;
                'descend: while steps < config.max_shrink_steps {
                    for cand in gens.shrink(&minimal) {
                        if let TestResult::Fail(m) = eval(&prop, &cand) {
                            minimal = cand;
                            message = m;
                            steps += 1;
                            continue 'descend;
                        }
                    }
                    break;
                }

                std::panic::set_hook(saved_hook);
                return Some(Failure {
                    original: value,
                    minimal,
                    message,
                    case: passed,
                    seed,
                    shrink_steps: steps,
                });
            }
        }
    }
    None
}

/// Run a property, panicking with a shrink report on failure. This is what
/// the [`prop!`](crate::prop!) macro expands to.
pub fn run_named<G, F>(name: &str, config: Config, gens: &G, prop: F)
where
    G: GenSet,
    F: Fn(&G::Value) -> TestResult,
{
    if let Some(failure) = check(name, &config, gens, prop) {
        panic!(
            "property '{name}' failed at case {case} (seed {seed}):\n  \
             minimal counterexample: {minimal:?}\n  \
             {message}\n  \
             (original: {original:?}; {steps} shrink steps; \
             rerun with CREDENCE_PROP_SEED={seed})",
            case = failure.case,
            seed = failure.seed,
            minimal = failure.minimal,
            message = failure.message,
            original = failure.original,
            steps = failure.shrink_steps,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::super::gens;
    use super::*;

    #[test]
    fn passing_property_returns_none() {
        let gens = (gens::u32_range(0..100),);
        assert!(check("always_true", &Config::default(), &gens, |_| {
            TestResult::Pass
        })
        .is_none());
    }

    #[test]
    fn discards_do_not_consume_cases() {
        let gens = (gens::u32_range(0..100),);
        let result = check("half_discarded", &Config::default(), &gens, |&(x,)| {
            if x % 2 == 0 {
                TestResult::Discard
            } else {
                TestResult::Pass
            }
        });
        assert!(result.is_none());
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        // "x < 50" fails exactly on 50..1000; the decrement shrink must
        // walk greedy descent to the precise boundary value.
        let gens = (gens::u32_range(0..1000),);
        let failure = check("all_below_fifty", &Config::default(), &gens, |&(x,)| {
            if x < 50 {
                TestResult::Pass
            } else {
                TestResult::fail(format!("{x} >= 50"))
            }
        })
        .expect("property must fail");
        assert_eq!(failure.minimal, (50,), "shrinking must reach the boundary");
    }

    #[test]
    fn vec_counterexample_shrinks_to_minimal_length() {
        // "has no element >= 10" — minimal counterexample is the single
        // offending element, itself shrunk to exactly 10.
        let gens = (gens::vec_of(gens::u32_range(0..20), 0..12),);
        let failure = check(
            "no_large_elements",
            &Config::default(),
            &gens,
            |(v,): &(Vec<u32>,)| {
                if v.iter().all(|&x| x < 10) {
                    TestResult::Pass
                } else {
                    TestResult::fail("contains a large element")
                }
            },
        )
        .expect("property must fail");
        assert_eq!(failure.minimal, (vec![10],));
    }

    #[test]
    fn panics_are_counterexamples_too() {
        let gens = (gens::u32_range(0..100),);
        let failure = check("panics_at_seven_plus", &Config::default(), &gens, |&(x,)| {
            assert!(x < 7, "boom at {x}");
            TestResult::Pass
        })
        .expect("must fail");
        assert_eq!(failure.minimal, (7,));
        assert!(failure.message.contains("boom"));
    }

    #[test]
    fn seed_pins_the_failure() {
        let cfg = Config {
            seed: Some(12345),
            ..Config::default()
        };
        let gens = (gens::u64_any(),);
        let f1 = check("pinned", &cfg, &gens, |_| TestResult::fail("always"));
        let f2 = check("pinned", &cfg, &gens, |_| TestResult::fail("always"));
        assert_eq!(f1.unwrap().original, f2.unwrap().original);
    }
}
