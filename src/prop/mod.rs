//! `credence-prop`: a zero-dependency property-testing harness.
//!
//! A quickcheck-lite replacement for the `proptest` registry dependency the
//! hermetic workspace removed. It provides:
//!
//! * [`Gen<T>`] — composable value generators with attached shrinkers
//!   (`Vec`, `String`, numeric, tuples, choice),
//! * seeded, reproducible case generation (the seed is derived from the
//!   property name, overridable per-property or via `CREDENCE_PROP_SEED`),
//! * counterexample shrinking with a bounded step budget,
//! * the [`prop!`](crate::prop!) macro plus `prop_assert!`-style assertion
//!   macros mirroring the proptest idiom the test suite was written in.
//!
//! The module is compiled only for this workspace's own tests (`testkit`
//! feature, enabled through the root crate's self-dev-dependency) — release
//! builds never carry it.
//!
//! ```
//! use credence_repro::prop::gens;
//!
//! credence_repro::prop! {
//!     fn reversing_twice_is_identity(v in gens::vec_of(gens::u32_any(), 0..32)) {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         credence_repro::prop_assert_eq!(&w, v);
//!     }
//! }
//! # fn main() {}
//! ```

mod gen;
mod macros;
mod runner;

pub use gen::{gens, Gen};
pub use runner::{check, run_named, Config, Failure, GenSet, TestResult};
