//! Workspace root for the CREDENCE reproduction.
//!
//! This crate re-exports the public surface of every workspace member so the
//! integration tests under `tests/` and the runnable binaries under
//! `examples/` can exercise the whole system through one dependency.

#[cfg(any(test, feature = "testkit"))]
pub mod prop;

pub use credence_core as core;
pub use credence_corpus as corpus;
pub use credence_embed as embed;
pub use credence_index as index;
pub use credence_json as json;
pub use credence_rank as rank;
pub use credence_server as server;
pub use credence_text as text;
pub use credence_topics as topics;
