//! Metrics for explanations and rankings.
//!
//! Backs the quantitative tables of EXPERIMENTS.md: counterfactual quality
//! (validity, sparsity, a minimality certificate) and ranking-comparison
//! measures (Kendall's tau, Jaccard@k, MRR) used when comparing the
//! black-box rankers to each other.

use std::collections::HashSet;

use credence_index::DocId;
use credence_rank::{rank_corpus, rerank_pool, RankedList, Ranker};
use credence_text::split_sentences;

use crate::explanation::SentenceRemovalExplanation;

// ---------------------------------------------------------------------------
// Counterfactual quality.
// ---------------------------------------------------------------------------

/// Re-verify a sentence-removal explanation against the model: does removing
/// exactly those sentences still push the document past `k`?
pub fn verify_sentence_removal(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    explanation: &SentenceRemovalExplanation,
) -> bool {
    let ranking = rank_corpus(ranker, query);
    let pool = ranking.top_k(k + 1);
    let rows = rerank_pool(
        ranker,
        query,
        &pool,
        Some((doc, &explanation.perturbed_body)),
    );
    rows.iter()
        .find(|r| r.substituted)
        .map(|r| r.new_rank > k)
        .unwrap_or(false)
}

/// Minimality certificate for a sentence-removal explanation: every proper
/// subset of the removed sentences must FAIL to push the document past `k`.
///
/// Exponential in the removal size; callers use it on the small sets the
/// explainer returns (the size-major search makes large sets rare).
pub fn certify_minimality(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    explanation: &SentenceRemovalExplanation,
) -> bool {
    let index = ranker.index();
    let Some(document) = index.document(doc) else {
        return false;
    };
    let sentences = split_sentences(&document.body);
    let ranking = rank_corpus(ranker, query);
    let pool = ranking.top_k(k + 1);

    let removed = &explanation.removed;
    let m = removed.len();
    // Iterate proper subsets via bitmask (m is small by construction).
    for mask in 0..(1u32 << m) {
        if mask == (1 << m) - 1 {
            continue; // the full set
        }
        if mask == 0 {
            continue; // removing nothing trivially fails
        }
        let subset: HashSet<usize> = removed
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, &s)| s)
            .collect();
        let body: String = sentences
            .iter()
            .filter(|s| !subset.contains(&s.index))
            .map(|s| s.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        let rows = rerank_pool(ranker, query, &pool, Some((doc, &body)));
        let rank = rows
            .iter()
            .find(|r| r.substituted)
            .map(|r| r.new_rank)
            .unwrap_or(0);
        if rank > k {
            return false; // a proper subset already suffices: not minimal
        }
    }
    true
}

/// Sparsity of a perturbation: fraction of the document's sentences that
/// were removed (lower = sparser = better).
pub fn sentence_sparsity(explanation: &SentenceRemovalExplanation, total_sentences: usize) -> f64 {
    if total_sentences == 0 {
        return 0.0;
    }
    explanation.removed.len() as f64 / total_sentences as f64
}

// ---------------------------------------------------------------------------
// Ranking comparison.
// ---------------------------------------------------------------------------

/// Kendall's tau-a between two rankings over their *common* documents, in
/// `[-1, 1]`. Returns `None` when fewer than two documents are shared.
pub fn kendall_tau(a: &RankedList, b: &RankedList) -> Option<f64> {
    let common: Vec<DocId> = a
        .entries()
        .iter()
        .map(|&(d, _)| d)
        .filter(|d| b.rank_of(*d).is_some())
        .collect();
    let n = common.len();
    if n < 2 {
        return None;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let (x, y) = (common[i], common[j]);
            let a_order = a.rank_of(x).cmp(&a.rank_of(y));
            let b_order = b.rank_of(x).cmp(&b.rank_of(y));
            if a_order == b_order {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    Some((concordant - discordant) as f64 / pairs)
}

/// Jaccard overlap between the top-k sets of two rankings.
pub fn jaccard_at_k(a: &RankedList, b: &RankedList, k: usize) -> f64 {
    let sa: HashSet<DocId> = a.top_k(k).into_iter().collect();
    let sb: HashSet<DocId> = b.top_k(k).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

/// Reciprocal rank of `doc` in a ranking (0 when absent).
pub fn reciprocal_rank(ranking: &RankedList, doc: DocId) -> f64 {
    ranking.rank_of(doc).map_or(0.0, |r| 1.0 / r as f64)
}

/// Mean reciprocal rank of target documents across `(ranking, target)` pairs.
pub fn mean_reciprocal_rank(cases: &[(RankedList, DocId)]) -> f64 {
    if cases.is_empty() {
        return 0.0;
    }
    cases
        .iter()
        .map(|(r, d)| reciprocal_rank(r, *d))
        .sum::<f64>()
        / cases.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sentence_removal::{explain_sentence_removal, SentenceRemovalConfig};
    use credence_index::{Bm25Params, Document, InvertedIndex};
    use credence_rank::Bm25Ranker;
    use credence_text::Analyzer;

    fn fixture() -> InvertedIndex {
        InvertedIndex::build(
            vec![
                Document::from_body(
                    "The covid outbreak worries everyone. Gardens are quiet this week. \
                     Officials tracked the covid outbreak closely.",
                ),
                Document::from_body(
                    "covid outbreak updates arrive hourly for readers following the regional \
                     evening news bulletin.",
                ),
                Document::from_body(
                    "covid outbreak statistics were published early this morning by the \
                     county health department office.",
                ),
                Document::from_body("The annual garden show opened downtown."),
            ],
            Analyzer::english(),
        )
    }

    #[test]
    fn returned_explanations_verify_and_certify() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let result = explain_sentence_removal(
            &ranker,
            "covid outbreak",
            2,
            DocId(0),
            &SentenceRemovalConfig::default(),
        )
        .unwrap();
        let e = &result.explanations[0];
        assert!(verify_sentence_removal(
            &ranker,
            "covid outbreak",
            2,
            DocId(0),
            e
        ));
        assert!(certify_minimality(
            &ranker,
            "covid outbreak",
            2,
            DocId(0),
            e
        ));
        assert!((sentence_sparsity(e, result.sentences.len()) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn non_minimal_explanation_fails_certificate() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        // Fabricate a non-minimal explanation: remove all three sentences
        // when two suffice.
        let fake = SentenceRemovalExplanation {
            removed: vec![0, 1, 2],
            removed_text: vec![],
            perturbed_body: String::new(),
            importance: 4.0,
            old_rank: 1,
            new_rank: 3,
            candidates_evaluated: 0,
        };
        assert!(!certify_minimality(
            &ranker,
            "covid outbreak",
            2,
            DocId(0),
            &fake
        ));
    }

    #[test]
    fn kendall_tau_extremes() {
        let a = RankedList::from_scores(vec![(DocId(0), 3.0), (DocId(1), 2.0), (DocId(2), 1.0)]);
        let same =
            RankedList::from_scores(vec![(DocId(0), 30.0), (DocId(1), 20.0), (DocId(2), 10.0)]);
        let reversed =
            RankedList::from_scores(vec![(DocId(0), 1.0), (DocId(1), 2.0), (DocId(2), 3.0)]);
        assert_eq!(kendall_tau(&a, &same), Some(1.0));
        assert_eq!(kendall_tau(&a, &reversed), Some(-1.0));
        let empty = RankedList::from_scores(vec![]);
        assert_eq!(kendall_tau(&a, &empty), None);
    }

    #[test]
    fn jaccard_cases() {
        let a = RankedList::from_scores(vec![(DocId(0), 2.0), (DocId(1), 1.0)]);
        let b = RankedList::from_scores(vec![(DocId(0), 2.0), (DocId(2), 1.0)]);
        assert!((jaccard_at_k(&a, &b, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard_at_k(&a, &a, 2), 1.0);
        let empty = RankedList::from_scores(vec![]);
        assert_eq!(jaccard_at_k(&empty, &empty, 3), 1.0);
        assert_eq!(jaccard_at_k(&a, &empty, 2), 0.0);
    }

    #[test]
    fn mrr_cases() {
        let a = RankedList::from_scores(vec![(DocId(0), 2.0), (DocId(1), 1.0)]);
        assert_eq!(reciprocal_rank(&a, DocId(0)), 1.0);
        assert_eq!(reciprocal_rank(&a, DocId(1)), 0.5);
        assert_eq!(reciprocal_rank(&a, DocId(9)), 0.0);
        let cases = vec![(a.clone(), DocId(0)), (a, DocId(1))];
        assert!((mean_reciprocal_rank(&cases) - 0.75).abs() < 1e-12);
        assert_eq!(mean_reciprocal_rank(&[]), 0.0);
    }
}
