//! Feature-level counterfactual explanations — the paper's future work,
//! implemented.
//!
//! §II-A closes with: "In future work, we plan to explain ranking models
//! that support richer sets of features (e.g., user preferences)." Given a
//! [`FeatureAwareRanker`], this
//! explainer finds *minimal sets of feature changes* that lower a document's
//! rank beyond `k` — the exact analogue of sentence removal, with features
//! as the perturbation unit.
//!
//! Candidate perturbations set one feature to an extreme of its `[0, 1]`
//! range (the direction that *hurts* the document's score, i.e. toward 0
//! for positively-weighted features). Candidate importance is the score
//! mass the change removes, `w_i · f_i`; combinations are enumerated
//! size-major, importance-descending — the same minimality-ordered search
//! as the textual explainers.

use credence_index::DocId;
use credence_rank::features::FeatureAwareRanker;
use credence_rank::rank_corpus;

use crate::combos::{CandidateOrdering, ComboSearch, SearchBudget};
use crate::error::ExplainError;

/// Configuration for the feature-counterfactual explainer.
#[derive(Debug, Clone)]
pub struct FeatureCfConfig {
    /// Maximum number of explanations to return.
    pub n: usize,
    /// Search limits.
    pub budget: SearchBudget,
    /// Candidate ordering.
    pub ordering: CandidateOrdering,
}

impl Default for FeatureCfConfig {
    fn default() -> Self {
        Self {
            n: 1,
            budget: SearchBudget::default(),
            ordering: CandidateOrdering::ImportanceGuided,
        }
    }
}

/// One feature change within an explanation.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureChange {
    /// Feature index in the schema.
    pub feature: usize,
    /// Feature name.
    pub name: String,
    /// The document's actual value.
    pub from: f64,
    /// The counterfactual value.
    pub to: f64,
}

/// A feature-level counterfactual explanation.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureCfExplanation {
    /// The minimal set of feature changes.
    pub changes: Vec<FeatureChange>,
    /// Score mass removed by the changes.
    pub importance: f64,
    /// Rank before the changes.
    pub old_rank: usize,
    /// Rank after the changes, within the top-(k+1) pool.
    pub new_rank: usize,
    /// Cumulative candidates evaluated at acceptance.
    pub candidates_evaluated: usize,
}

/// Result of a feature-counterfactual request.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureCfResult {
    /// Explanations found, in discovery order.
    pub explanations: Vec<FeatureCfExplanation>,
    /// Per-feature importance (`w_i · f_i`), schema order.
    pub importance: Vec<f64>,
    /// Total candidates evaluated.
    pub candidates_evaluated: usize,
    /// Original rank.
    pub old_rank: usize,
}

/// Generate feature-level counterfactuals for `doc` under `query` with
/// cutoff `k`.
pub fn explain_feature_changes<R: FeatureAwareRanker>(
    ranker: &R,
    query: &str,
    k: usize,
    doc: DocId,
    config: &FeatureCfConfig,
) -> Result<FeatureCfResult, ExplainError> {
    if k == 0 {
        return Err(ExplainError::InvalidParameter("k must be at least 1"));
    }
    let index = ranker.index();
    if index.document(doc).is_none() {
        return Err(ExplainError::DocNotFound(doc));
    }
    if index.analyze_query(query).is_empty() {
        return Err(ExplainError::EmptyQuery);
    }
    if ranker.schema().is_empty() {
        return Err(ExplainError::NoCandidateTerms(doc));
    }

    let ranking = rank_corpus(ranker, query);
    let old_rank = ranking
        .rank_of(doc)
        .ok_or(ExplainError::DocNotRelevant { doc, rank: None })?;
    if old_rank > k {
        return Err(ExplainError::DocNotRelevant {
            doc,
            rank: Some(old_rank),
        });
    }
    let pool = ranking.top_k(k + 1);
    let pool_scores: Vec<(DocId, f64)> = pool
        .iter()
        .map(|&d| (d, ranker.score_doc(query, d)))
        .collect();

    // Candidate i = "set feature i to the hurting extreme" (0 for positive
    // weights, 1 for negative). Importance = score mass removed.
    let actual = ranker.features(doc).to_vec();
    let weights = ranker.weights().to_vec();
    let targets: Vec<f64> = weights
        .iter()
        .map(|&w| if w >= 0.0 { 0.0 } else { 1.0 })
        .collect();
    let importance: Vec<f64> = weights
        .iter()
        .zip(&actual)
        .zip(&targets)
        .map(|((&w, &f), &t)| (w * (f - t)).abs())
        .collect();

    let mut search = ComboSearch::new(&importance, config.budget, config.ordering);
    let mut explanations = Vec::new();

    while explanations.len() < config.n {
        let Some(combo) = search.next() else {
            break;
        };
        let mut hypothetical = actual.clone();
        for &i in &combo.items {
            hypothetical[i] = targets[i];
        }
        let new_score = ranker.score_with_features(query, doc, &hypothetical);
        // Rank within the pool under the hypothetical score; ties break by
        // doc id, matching `rerank_pool`.
        let new_rank = 1 + pool_scores
            .iter()
            .filter(|&&(d, s)| d != doc && (s > new_score || (s == new_score && d < doc)))
            .count();
        if new_rank > k {
            explanations.push(FeatureCfExplanation {
                changes: combo
                    .items
                    .iter()
                    .map(|&i| FeatureChange {
                        feature: i,
                        name: ranker.schema().names()[i].clone(),
                        from: actual[i],
                        to: targets[i],
                    })
                    .collect(),
                importance: combo.score,
                old_rank,
                new_rank,
                candidates_evaluated: search.emitted(),
            });
        }
    }

    Ok(FeatureCfResult {
        explanations,
        importance,
        candidates_evaluated: search.emitted(),
        old_rank,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_index::{Bm25Params, Document, InvertedIndex};
    use credence_rank::features::{FeatureRanker, FeatureSchema};
    use credence_rank::{Bm25Ranker, Ranker};
    use credence_text::Analyzer;

    fn index() -> InvertedIndex {
        InvertedIndex::build(
            vec![
                Document::from_body("covid outbreak coverage tonight"), // 0
                Document::from_body("covid outbreak coverage tonight"), // 1
                Document::from_body("covid outbreak coverage tonight"), // 2
                Document::from_body("covid outbreak coverage tonight"), // 3
            ],
            Analyzer::english(),
        )
    }

    /// Identical text; rank order is entirely feature-driven:
    /// doc 0 (0.9, 0.9) > doc 1 (0.8, 0.5) > doc 2 (0.3, 0.4) > doc 3 (0.1, 0.1).
    fn ranker(idx: &InvertedIndex) -> FeatureRanker<'_, Bm25Ranker<'_>> {
        FeatureRanker::new(
            idx,
            Bm25Ranker::new(idx, Bm25Params::default()),
            FeatureSchema::new(["recency", "popularity"]),
            vec![1.0, 1.0],
            vec![
                vec![0.9, 0.9],
                vec![0.8, 0.5],
                vec![0.3, 0.4],
                vec![0.1, 0.1],
            ],
        )
    }

    #[test]
    fn single_feature_change_suffices_for_doc1() {
        let idx = index();
        let r = ranker(&idx);
        // k = 2: doc 1 ranks second (1.3 feature mass). Zeroing recency
        // (0.8) drops it to 0.5 < doc 2's 0.7 and doc 3's 0.2? doc3 = 0.2,
        // so doc1 at 0.5 sits third -> rank 3 > k.
        let result = explain_feature_changes(
            &r,
            "covid outbreak",
            2,
            DocId(1),
            &FeatureCfConfig::default(),
        )
        .unwrap();
        assert_eq!(result.old_rank, 2);
        let e = &result.explanations[0];
        assert_eq!(e.changes.len(), 1);
        assert_eq!(e.changes[0].name, "recency");
        assert_eq!(e.changes[0].to, 0.0);
        assert!(e.new_rank > 2);
    }

    #[test]
    fn importance_reflects_score_mass() {
        let idx = index();
        let r = ranker(&idx);
        let result = explain_feature_changes(
            &r,
            "covid outbreak",
            2,
            DocId(1),
            &FeatureCfConfig::default(),
        )
        .unwrap();
        assert!((result.importance[0] - 0.8).abs() < 1e-12);
        assert!((result.importance[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn strong_documents_need_multiple_changes() {
        let idx = index();
        let r = ranker(&idx);
        // Doc 0 (1.8 mass): zeroing recency leaves 0.9 > doc 2's 0.7, so a
        // pair is needed to leave the top 2.
        let result = explain_feature_changes(
            &r,
            "covid outbreak",
            2,
            DocId(0),
            &FeatureCfConfig::default(),
        )
        .unwrap();
        let e = &result.explanations[0];
        assert_eq!(e.changes.len(), 2, "{e:?}");
        assert!(e.new_rank > 2);
        // Singles were tried first (minimality).
        assert!(e.candidates_evaluated > 2);
    }

    #[test]
    fn negative_weights_push_toward_one() {
        let idx = index();
        let r = FeatureRanker::new(
            &idx,
            Bm25Ranker::new(&idx, Bm25Params::default()),
            FeatureSchema::new(["staleness"]),
            vec![-1.0],
            vec![vec![0.0], vec![0.2], vec![0.9], vec![1.0]],
        );
        // doc 0 is best (no staleness). Its counterfactual sets staleness
        // to 1.0.
        let result = explain_feature_changes(
            &r,
            "covid outbreak",
            2,
            DocId(0),
            &FeatureCfConfig::default(),
        )
        .unwrap();
        let e = &result.explanations[0];
        assert_eq!(e.changes[0].to, 1.0);
        assert!(e.new_rank > 2);
    }

    #[test]
    fn validation_errors() {
        let idx = index();
        let r = ranker(&idx);
        assert!(explain_feature_changes(&r, "", 2, DocId(0), &FeatureCfConfig::default()).is_err());
        assert!(
            explain_feature_changes(&r, "covid", 0, DocId(0), &FeatureCfConfig::default()).is_err()
        );
        assert!(matches!(
            explain_feature_changes(&r, "covid", 2, DocId(9), &FeatureCfConfig::default()),
            Err(ExplainError::DocNotFound(_))
        ));
        assert!(matches!(
            explain_feature_changes(
                &r,
                "covid outbreak",
                2,
                DocId(3),
                &FeatureCfConfig::default()
            ),
            Err(ExplainError::DocNotRelevant { .. })
        ));
    }

    #[test]
    fn explanations_revalidate_under_hypothetical_scoring() {
        let idx = index();
        let r = ranker(&idx);
        let k = 2;
        let result = explain_feature_changes(
            &r,
            "covid outbreak",
            k,
            DocId(1),
            &FeatureCfConfig {
                n: 3,
                ..Default::default()
            },
        )
        .unwrap();
        use credence_rank::features::FeatureAwareRanker as _;
        for e in &result.explanations {
            let mut features = r.features(DocId(1)).to_vec();
            for c in &e.changes {
                features[c.feature] = c.to;
            }
            let hypo = r.score_with_features("covid outbreak", DocId(1), &features);
            // The hypothetical score must fall below at least
            // (pool_size - k) pool documents.
            let better = [DocId(0), DocId(2), DocId(3)]
                .iter()
                .filter(|&&d| r.score_doc("covid outbreak", d) > hypo)
                .count();
            assert!(better >= 2, "doc must sink below rank {k}");
        }
    }
}
