//! Instance-based counterfactual explanations (§II-E).
//!
//! > "a valid explanation for a relevant document identifies a non-relevant
//! > document with a high degree of similarity"
//!
//! Two variants, as in the paper:
//!
//! * [`doc2vec_nearest`] — train a Doc2Vec (PV-DBOW) embedding over the
//!   corpus and return the `n` non-relevant documents most similar to the
//!   instance document (*Doc2Vec Nearest* in the UI).
//! * [`cosine_sampled`] — represent documents by their BM25 score vectors,
//!   sample `s` non-relevant documents (rank k+1 and below, including
//!   unranked; ideally `n ≪ s`), and return the `n` most cosine-similar
//!   (*Cosine Sampled* in the UI).
//!
//! Returning *actual corpus documents* sidesteps the plausibility problems
//! of synthetic perturbations: the counterfactual is grammatical and real by
//! construction.

use std::collections::HashSet;

use credence_embed::{nearest_neighbors_quantized, Doc2Vec};
use credence_index::vector::bm25_doc_vector;
use credence_index::{cosine_similarity, Bm25Params, DocId};
use credence_rank::{rank_corpus, RankedList, Ranker};
use credence_rng::rngs::StdRng;
use credence_rng::seq::SliceRandom;
use credence_rng::SeedableRng;

use crate::error::ExplainError;
use crate::explanation::InstanceExplanation;

/// Configuration for the cosine-sampled variant.
#[derive(Debug, Clone, Copy)]
pub struct CosineSampledConfig {
    /// Number of non-relevant documents to sample (`s` in the paper).
    pub samples: usize,
    /// BM25 parameters for the score vectors.
    pub bm25: Bm25Params,
    /// Sampling seed (the original tool sampled nondeterministically; a
    /// seed keeps experiments reproducible).
    pub seed: u64,
}

impl Default for CosineSampledConfig {
    fn default() -> Self {
        Self {
            samples: 100,
            bm25: Bm25Params::default(),
            seed: 42,
        }
    }
}

/// Validate the request and return `(ranking, non-relevant candidate ids)`.
///
/// Non-relevant = every corpus document outside the top-k for the query
/// (ranked k+1 and below, or not retrieved at all), excluding the instance
/// document itself.
fn non_relevant_candidates(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
) -> Result<(RankedList, Vec<DocId>), ExplainError> {
    if k == 0 {
        return Err(ExplainError::InvalidParameter("k must be at least 1"));
    }
    let index = ranker.index();
    if index.document(doc).is_none() {
        return Err(ExplainError::DocNotFound(doc));
    }
    if index.analyze_query(query).is_empty() {
        return Err(ExplainError::EmptyQuery);
    }
    let ranking = rank_corpus(ranker, query);
    match ranking.rank_of(doc) {
        Some(r) if r <= k => {}
        other => {
            return Err(ExplainError::DocNotRelevant { doc, rank: other });
        }
    }
    let top: HashSet<DocId> = ranking.top_k(k).into_iter().collect();
    let candidates: Vec<DocId> = index
        .doc_ids()
        .filter(|d| !top.contains(d) && *d != doc)
        .collect();
    Ok((ranking, candidates))
}

/// *Doc2Vec Nearest*: the `n` non-relevant documents most similar to `doc`
/// in a trained PV-DBOW space.
///
/// The caller supplies the trained model (training is corpus-level and
/// reusable across queries; [`crate::engine::CredenceEngine`] caches it).
/// The model must have been trained with one vector per corpus document, in
/// `DocId` order.
pub fn doc2vec_nearest(
    ranker: &dyn Ranker,
    model: &Doc2Vec,
    query: &str,
    k: usize,
    doc: DocId,
    n: usize,
) -> Result<Vec<InstanceExplanation>, ExplainError> {
    let index = ranker.index();
    if model.num_docs() != index.num_docs() {
        return Err(ExplainError::InvalidParameter(
            "doc2vec model does not cover the corpus",
        ));
    }
    let (ranking, candidates) = non_relevant_candidates(ranker, query, k, doc)?;
    let query_vec = model.doc_vector(doc.index());
    let neighbors = nearest_neighbors_quantized(
        query_vec,
        model.quantized(),
        |d| model.doc_vector(d),
        candidates.iter().map(|d| d.index()),
        n,
    );
    Ok(neighbors
        .into_iter()
        .map(|nb| {
            let d = DocId(nb.item as u32);
            InstanceExplanation {
                doc: d,
                similarity: nb.similarity as f64,
                rank: ranking.rank_of(d),
            }
        })
        .collect())
}

/// *Cosine Sampled*: sample `s` non-relevant documents, compute cosine
/// similarity between BM25 score vectors, and return the best `n`.
pub fn cosine_sampled(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    n: usize,
    config: &CosineSampledConfig,
) -> Result<Vec<InstanceExplanation>, ExplainError> {
    if config.samples == 0 {
        return Err(ExplainError::InvalidParameter("samples must be at least 1"));
    }
    let (ranking, mut candidates) = non_relevant_candidates(ranker, query, k, doc)?;
    let index = ranker.index();

    // Sample without replacement (the whole pool when s >= |pool|).
    let mut rng = StdRng::seed_from_u64(config.seed);
    candidates.shuffle(&mut rng);
    candidates.truncate(config.samples);

    let instance_vec = bm25_doc_vector(index, config.bm25, doc);
    let mut scored: Vec<InstanceExplanation> = candidates
        .into_iter()
        .map(|d| {
            let v = bm25_doc_vector(index, config.bm25, d);
            InstanceExplanation {
                doc: d,
                similarity: cosine_similarity(&instance_vec, &v),
                rank: ranking.rank_of(d),
            }
        })
        .collect();
    scored.sort_by(|a, b| {
        b.similarity
            .partial_cmp(&a.similarity)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.doc.cmp(&b.doc))
    });
    scored.truncate(n);
    Ok(scored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_embed::Doc2VecConfig;
    use credence_index::{Document, InvertedIndex};
    use credence_rank::Bm25Ranker;
    use credence_text::Analyzer;

    /// Corpus: two strong covid docs, one conspiratorial covid doc (the
    /// instance), its near-duplicate without the query terms, and noise.
    fn fixture() -> InvertedIndex {
        let mut docs = vec![
            Document::from_body(
                "covid outbreak covid outbreak hospitals respond quickly overnight",
            ),
            Document::from_body("covid outbreak covid updates flow through the newsroom"),
            Document::from_body(
                "the covid outbreak hides a secret microchip plot tracking everyone \
                 through vaccine doses and magnetic arms",
            ),
            Document::from_body(
                "a secret microchip plot tracking everyone through vaccine doses \
                 and magnetic arms revealed",
            ),
        ];
        for i in 0..8 {
            docs.push(Document::from_body(match i % 4 {
                0 => "garden flowers bloom in the quiet spring sunshine every day",
                1 => "the rowing club practices on the river before dawn",
                2 => "housing starts rebound as lumber prices ease this quarter",
                3 => "the city council debates the annual budget on tuesday",
                _ => unreachable!(),
            }));
        }
        InvertedIndex::build(docs, Analyzer::english())
    }

    fn train(idx: &InvertedIndex) -> Doc2Vec {
        let analyzer = idx.analyzer();
        let seqs: Vec<Vec<usize>> = idx
            .documents()
            .iter()
            .map(|d| {
                analyzer
                    .analyze(&d.body)
                    .iter()
                    .filter_map(|t| idx.vocabulary().id(t).map(|x| x as usize))
                    .collect()
            })
            .collect();
        Doc2Vec::train(
            &seqs,
            idx.vocabulary().len(),
            &Doc2VecConfig {
                dim: 24,
                epochs: 40,
                ..Default::default()
            },
        )
    }

    #[test]
    fn doc2vec_nearest_finds_the_near_duplicate() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let model = train(&idx);
        let out = doc2vec_nearest(&r, &model, "covid outbreak", 3, DocId(2), 1).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].doc, DocId(3), "near-duplicate is nearest");
        assert!(out[0].similarity > 0.3, "similarity {}", out[0].similarity);
        assert_eq!(out[0].rank, None, "the duplicate is not retrieved");
    }

    #[test]
    fn cosine_sampled_finds_the_near_duplicate() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let out = cosine_sampled(
            &r,
            "covid outbreak",
            3,
            DocId(2),
            1,
            &CosineSampledConfig::default(),
        )
        .unwrap();
        assert_eq!(out[0].doc, DocId(3));
        assert!(out[0].similarity > 0.5);
    }

    #[test]
    fn results_never_include_top_k_or_instance() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let model = train(&idx);
        let ranking = rank_corpus(&r, "covid outbreak");
        let top: Vec<DocId> = ranking.top_k(3);
        for n in [1usize, 3, 10] {
            let out = doc2vec_nearest(&r, &model, "covid outbreak", 3, DocId(2), n).unwrap();
            for e in &out {
                assert!(!top.contains(&e.doc));
                assert_ne!(e.doc, DocId(2));
            }
            let out = cosine_sampled(
                &r,
                "covid outbreak",
                3,
                DocId(2),
                n,
                &CosineSampledConfig::default(),
            )
            .unwrap();
            for e in &out {
                assert!(!top.contains(&e.doc));
                assert_ne!(e.doc, DocId(2));
            }
        }
    }

    #[test]
    fn similarities_descend() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let model = train(&idx);
        let out = doc2vec_nearest(&r, &model, "covid outbreak", 3, DocId(2), 5).unwrap();
        assert!(out.windows(2).all(|w| w[0].similarity >= w[1].similarity));
    }

    #[test]
    fn sampling_respects_s_and_seed() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let cfg = CosineSampledConfig {
            samples: 3,
            ..Default::default()
        };
        let a = cosine_sampled(&r, "covid outbreak", 3, DocId(2), 3, &cfg).unwrap();
        let b = cosine_sampled(&r, "covid outbreak", 3, DocId(2), 3, &cfg).unwrap();
        assert_eq!(a, b, "seeded sampling is deterministic");
        assert!(a.len() <= 3);
        let c = cosine_sampled(
            &r,
            "covid outbreak",
            3,
            DocId(2),
            3,
            &CosineSampledConfig {
                seed: 7,
                samples: 3,
                ..Default::default()
            },
        )
        .unwrap();
        // Different seed may sample a different subset (not asserted equal).
        assert!(c.len() <= 3);
    }

    #[test]
    fn non_relevant_instance_is_rejected() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let model = train(&idx);
        // Doc 3 is not retrieved for the query at all.
        let err = doc2vec_nearest(&r, &model, "covid outbreak", 3, DocId(3), 1).unwrap_err();
        assert!(matches!(err, ExplainError::DocNotRelevant { .. }));
    }

    #[test]
    fn parameter_validation() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let model = train(&idx);
        assert!(doc2vec_nearest(&r, &model, "covid outbreak", 0, DocId(2), 1).is_err());
        assert!(doc2vec_nearest(&r, &model, "", 3, DocId(2), 1).is_err());
        assert!(doc2vec_nearest(&r, &model, "covid", 3, DocId(99), 1).is_err());
        assert!(cosine_sampled(
            &r,
            "covid outbreak",
            3,
            DocId(2),
            1,
            &CosineSampledConfig {
                samples: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn mismatched_model_rejected() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let tiny = Doc2Vec::train(&[vec![0]], 1, &Doc2VecConfig::default());
        let err = doc2vec_nearest(&r, &tiny, "covid outbreak", 3, DocId(2), 1).unwrap_err();
        assert!(matches!(err, ExplainError::InvalidParameter(_)));
    }
}
