//! Counterfactual *document* explanations by sentence removal (§II-C).
//!
//! > "An explanation identifies a minimal subset of sentences in a given
//! > instance document whose removal lowers the rank of the document
//! > beyond k."
//!
//! The algorithm, exactly as the paper specifies:
//!
//! 1. Score every sentence of the instance document with an **importance**
//!    equal to the number of sentence terms that appear in the search query.
//! 2. Enumerate candidate sentence subsets first by perturbation size
//!    (ascending), then by summed importance (descending) —
//!    [`crate::combos::ComboSearch`].
//! 3. For each candidate, materialise the perturbed document, re-rank it
//!    against the original top-(k+1) pool (the same substitution re-ranking
//!    the builder uses, §III-C), and accept it into the explanation set when
//!    its new rank exceeds `k`.
//! 4. Stop after `n` explanations or when the budget is exhausted.
//!
//! Size-major enumeration guarantees the first accepted explanation is
//! minimal: "all perturbations with j removals must be evaluated before
//! those with j+1".

use std::ops::ControlFlow;

use credence_index::DocId;
use credence_rank::{rank_corpus, DeltaScorer, PoolScorer, RankedList, Ranker};
use credence_text::{split_sentences, Sentence};

use crate::budget::{Budget, SearchStatus};
use crate::combos::{CandidateOrdering, ComboSearch, SearchBudget};
use crate::error::ExplainError;
use crate::evaluator::{drive_search, EvalOptions};
use crate::explanation::SentenceRemovalExplanation;

/// Configuration for the sentence-removal explainer.
#[derive(Debug, Clone)]
pub struct SentenceRemovalConfig {
    /// Maximum number of explanations to return (`n` in the paper).
    pub n: usize,
    /// Search limits.
    pub budget: SearchBudget,
    /// Candidate ordering (the ablation knob; the paper's algorithm is
    /// [`CandidateOrdering::ImportanceGuided`]).
    pub ordering: CandidateOrdering,
    /// When requesting several explanations, skip candidates that are
    /// supersets of an already-accepted explanation — each returned
    /// explanation then carries *new* information. Off by default to match
    /// the paper's algorithm verbatim.
    pub skip_supersets: bool,
    /// Candidate-evaluation engine knobs (threads, batching, exact mode).
    pub eval: EvalOptions,
    /// Request-lifecycle bounds (deadline / eval cap / cancel flag). The
    /// default is [`Budget::unlimited`], which changes nothing.
    pub lifecycle: Budget,
}

impl Default for SentenceRemovalConfig {
    fn default() -> Self {
        Self {
            n: 1,
            budget: SearchBudget::default(),
            ordering: CandidateOrdering::ImportanceGuided,
            skip_supersets: false,
            eval: EvalOptions::default(),
            lifecycle: Budget::unlimited(),
        }
    }
}

/// Result of a sentence-removal explanation request.
#[derive(Debug, Clone, PartialEq)]
pub struct SentenceRemovalResult {
    /// The explanations found, in discovery order.
    pub explanations: Vec<SentenceRemovalExplanation>,
    /// The document's sentences, as segmented.
    pub sentences: Vec<Sentence>,
    /// Per-sentence importance scores.
    pub importance: Vec<f64>,
    /// Total candidate perturbations evaluated.
    pub candidates_evaluated: usize,
    /// The document's original rank.
    pub old_rank: usize,
    /// How the search ended; anything but [`SearchStatus::Complete`] marks
    /// the result as the best-so-far prefix of a budget-limited run.
    pub status: SearchStatus,
}

/// Importance of a sentence: the number of its terms that appear in the
/// query (both sides analysed identically, so "Covid-19," matches "covid-19"
/// and stemmed forms agree with the index).
fn sentence_importance(ranker: &dyn Ranker, query: &str, sentence: &str) -> f64 {
    let analyzer = ranker.index().analyzer();
    let query_terms: std::collections::HashSet<String> =
        analyzer.analyze(query).into_iter().collect();
    analyzer
        .analyze(sentence)
        .iter()
        .filter(|t| query_terms.contains(t.as_str()))
        .count() as f64
}

/// Generate counterfactual document explanations for `doc` under `query`
/// with cutoff `k`.
///
/// Errors when the document does not exist, the query is empty, the document
/// is not in the top-k (there is nothing to push out), or it has no
/// sentences.
pub fn explain_sentence_removal(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    config: &SentenceRemovalConfig,
) -> Result<SentenceRemovalResult, ExplainError> {
    let ranking = rank_corpus(ranker, query);
    explain_sentence_removal_ranked(ranker, query, k, doc, config, &ranking)
}

/// [`explain_sentence_removal`] against a precomputed corpus ranking for
/// `query` (e.g. the engine's cached ranking).
pub fn explain_sentence_removal_ranked(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    config: &SentenceRemovalConfig,
    ranking: &RankedList,
) -> Result<SentenceRemovalResult, ExplainError> {
    explain_sentence_removal_memo(ranker, query, k, doc, config, ranking, None)
}

/// [`explain_sentence_removal_ranked`] with an optional posting-replay
/// memo. When `memo` is `Some`, the per-(query, doc) sentence tf profiles
/// and the top-(k+1) pool scorer are fetched from (or deposited into) the
/// memo instead of rebuilt, so repeated requests for the same document
/// skip the analyse-and-fold setup. Shared state is read-only during
/// scoring, so the result is bit-identical either way.
pub fn explain_sentence_removal_memo(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    config: &SentenceRemovalConfig,
    ranking: &RankedList,
    memo: Option<&crate::evaluator::ReplayMemo>,
) -> Result<SentenceRemovalResult, ExplainError> {
    if k == 0 {
        return Err(ExplainError::InvalidParameter("k must be at least 1"));
    }
    let index = ranker.index();
    let document = index
        .document(doc)
        .ok_or(ExplainError::DocNotFound(doc))?
        .clone();
    if index.analyze_query(query).is_empty() {
        return Err(ExplainError::EmptyQuery);
    }

    let old_rank = ranking
        .rank_of(doc)
        .ok_or(ExplainError::DocNotRelevant { doc, rank: None })?;
    if old_rank > k {
        return Err(ExplainError::DocNotRelevant {
            doc,
            rank: Some(old_rank),
        });
    }

    let sentences = split_sentences(&document.body);
    if sentences.is_empty() {
        return Err(ExplainError::NoSentences(doc));
    }

    // The §III-C pool: the top-(k+1) documents of the original ranking.
    let pool = ranking.top_k(k + 1);

    let importance: Vec<f64> = sentences
        .iter()
        .map(|s| sentence_importance(ranker, query, &s.text))
        .collect();

    let mut budget = config.budget;
    // Removing every sentence is allowed only when the paper's notion of a
    // perturbed document stays meaningful; cap at #sentences.
    budget.max_size = budget.max_size.min(sentences.len());

    let mut search = ComboSearch::new(&importance, budget, config.ordering);
    let mut explanations = Vec::new();

    // Incremental evaluation: sentence tf profiles are analysed once, the
    // fixed pool scores once; each candidate then costs O(removed × |query|)
    // (plus an O(k) rank scan) instead of a full re-tokenise and re-rank.
    let texts: Vec<&str> = sentences.iter().map(|s| s.text.as_str()).collect();
    let delta = if config.eval.force_exact {
        None
    } else {
        match memo {
            Some(m) => m
                .delta_profile(query, doc, || {
                    credence_rank::DeltaProfile::new(ranker, query, &texts)
                })
                .map(|p| DeltaScorer::from_profile(ranker, p)),
            None => DeltaScorer::new(ranker, query, &texts),
        }
    };
    let pool_scorer = match memo {
        Some(m) => m.pool_scorer(query, k, doc, || PoolScorer::new(ranker, query, &pool, doc)),
        None => std::sync::Arc::new(PoolScorer::new(ranker, query, &pool, doc)),
    };
    let perturbed_body_without = |removed: &std::collections::HashSet<usize>| -> String {
        sentences
            .iter()
            .filter(|s| !removed.contains(&s.index))
            .map(|s| s.text.as_str())
            .collect::<Vec<_>>()
            .join(" ")
    };

    let mut total_committed = 0usize;
    if config.n == 0 {
        return Ok(SentenceRemovalResult {
            explanations,
            sentences,
            importance,
            candidates_evaluated: 0,
            old_rank,
            status: SearchStatus::Complete,
        });
    }
    let status = drive_search(
        &mut search,
        &config.eval,
        &config.lifecycle,
        |combo| {
            let score = match &delta {
                Some(d) => d.score_without(&combo.items),
                None => {
                    let removed = combo.items.iter().copied().collect();
                    ranker.score_text(query, &perturbed_body_without(&removed))
                }
            };
            pool_scorer.rank_for(score)
        },
        |combo, new_rank, committed| {
            total_committed = committed;
            let removed: std::collections::HashSet<usize> = combo.items.iter().copied().collect();
            if config.skip_supersets
                && explanations.iter().any(|e: &SentenceRemovalExplanation| {
                    e.removed.iter().all(|i| removed.contains(i))
                })
            {
                return ControlFlow::Continue(());
            }
            if new_rank > k {
                explanations.push(SentenceRemovalExplanation {
                    removed: combo.items.clone(),
                    removed_text: combo
                        .items
                        .iter()
                        .map(|&i| sentences[i].text.clone())
                        .collect(),
                    perturbed_body: perturbed_body_without(&removed),
                    importance: combo.score,
                    old_rank,
                    new_rank,
                    candidates_evaluated: committed,
                });
            }
            if explanations.len() < config.n {
                ControlFlow::Continue(())
            } else {
                ControlFlow::Break(())
            }
        },
    );

    Ok(SentenceRemovalResult {
        explanations,
        sentences,
        importance,
        candidates_evaluated: total_committed,
        old_rank,
        status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_index::{Bm25Params, Document, InvertedIndex};
    use credence_rank::{rerank_pool, Bm25Ranker};
    use credence_text::Analyzer;

    /// Tiny corpus where doc 0 is relevant through exactly two sentences.
    fn fixture() -> InvertedIndex {
        InvertedIndex::build(
            vec![
                Document::from_body(
                    "The covid outbreak worries everyone. Gardens are quiet this week. \
                     Officials tracked the covid outbreak closely.",
                ),
                Document::from_body(
                    "covid outbreak updates arrive hourly for readers following the regional \
                     evening news bulletin.",
                ),
                Document::from_body(
                    "covid outbreak statistics were published early this morning by the county \
                     health department office.",
                ),
                Document::from_body("The annual garden show opened downtown."),
            ],
            Analyzer::english(),
        )
    }

    #[test]
    fn finds_minimal_two_sentence_counterfactual() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        // k = 2: doc 0 ranks in the top two (tf 2 for both terms).
        let result = explain_sentence_removal(
            &ranker,
            "covid outbreak",
            2,
            DocId(0),
            &SentenceRemovalConfig::default(),
        )
        .unwrap();
        assert_eq!(result.explanations.len(), 1);
        let e = &result.explanations[0];
        // Both covid sentences (0 and 2) must go; the garden sentence stays.
        assert_eq!(e.removed, vec![0, 2]);
        assert!(e.new_rank > 2);
        assert_eq!(e.old_rank, 1);
        assert!((e.importance - 4.0).abs() < 1e-12);
        assert!(!e.perturbed_body.contains("covid"));
        assert!(e.perturbed_body.contains("Gardens"));
    }

    #[test]
    fn importance_scores_count_query_terms() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let result = explain_sentence_removal(
            &ranker,
            "covid outbreak",
            2,
            DocId(0),
            &SentenceRemovalConfig::default(),
        )
        .unwrap();
        assert_eq!(result.importance, vec![2.0, 0.0, 2.0]);
    }

    #[test]
    fn single_sentence_removals_tried_first() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let result = explain_sentence_removal(
            &ranker,
            "covid outbreak",
            2,
            DocId(0),
            &SentenceRemovalConfig::default(),
        )
        .unwrap();
        // 3 singles all fail, then (0,2) is the top-importance pair.
        assert_eq!(result.explanations[0].candidates_evaluated, 4);
    }

    #[test]
    fn multiple_explanations_requested() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let result = explain_sentence_removal(
            &ranker,
            "covid outbreak",
            2,
            DocId(0),
            &SentenceRemovalConfig {
                n: 3,
                ..Default::default()
            },
        )
        .unwrap();
        // (0,2), (0,1,2) — and any other subset containing both 0 and 2.
        assert!(result.explanations.len() >= 2);
        for e in &result.explanations {
            assert!(e.removed.contains(&0) && e.removed.contains(&2));
            assert!(e.new_rank > 2, "every accepted explanation is valid");
        }
        // Sizes never decrease across the discovery order.
        let sizes: Vec<usize> = result
            .explanations
            .iter()
            .map(|e| e.removed.len())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn skip_supersets_yields_distinct_explanations() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let result = explain_sentence_removal(
            &ranker,
            "covid outbreak",
            2,
            DocId(0),
            &SentenceRemovalConfig {
                n: 5,
                skip_supersets: true,
                ..Default::default()
            },
        )
        .unwrap();
        // Every pair of accepted explanations must be incomparable sets.
        for (i, a) in result.explanations.iter().enumerate() {
            for b in result.explanations.iter().skip(i + 1) {
                let a_set: std::collections::HashSet<_> = a.removed.iter().collect();
                let subset = b.removed.iter().all(|x| a_set.contains(x));
                let superset = a.removed.iter().all(|x| b.removed.contains(x));
                assert!(!subset && !superset, "{:?} vs {:?}", a.removed, b.removed);
            }
        }
        // With the fixture there is exactly one incomparable minimal set.
        assert_eq!(result.explanations.len(), 1);
    }

    #[test]
    fn doc_outside_top_k_is_rejected() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let err = explain_sentence_removal(
            &ranker,
            "covid outbreak",
            1,
            DocId(2),
            &SentenceRemovalConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ExplainError::DocNotRelevant { rank: Some(_), .. }
        ));
    }

    #[test]
    fn unranked_doc_is_rejected() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let err = explain_sentence_removal(
            &ranker,
            "covid outbreak",
            2,
            DocId(3),
            &SentenceRemovalConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ExplainError::DocNotRelevant { rank: None, .. }
        ));
    }

    #[test]
    fn missing_doc_and_bad_params() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        assert!(matches!(
            explain_sentence_removal(
                &ranker,
                "covid",
                2,
                DocId(99),
                &SentenceRemovalConfig::default()
            ),
            Err(ExplainError::DocNotFound(_))
        ));
        assert!(matches!(
            explain_sentence_removal(
                &ranker,
                "covid",
                0,
                DocId(0),
                &SentenceRemovalConfig::default()
            ),
            Err(ExplainError::InvalidParameter(_))
        ));
        assert!(matches!(
            explain_sentence_removal(
                &ranker,
                "zzz qqq",
                2,
                DocId(0),
                &SentenceRemovalConfig::default()
            ),
            Err(ExplainError::EmptyQuery)
        ));
    }

    #[test]
    fn budget_exhaustion_returns_partial_result() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let result = explain_sentence_removal(
            &ranker,
            "covid outbreak",
            2,
            DocId(0),
            &SentenceRemovalConfig {
                n: 1,
                budget: SearchBudget {
                    max_evaluations: 2,
                    ..SearchBudget::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(result.explanations.is_empty());
        assert_eq!(result.candidates_evaluated, 2);
    }

    #[test]
    fn every_returned_explanation_is_a_valid_counterfactual() {
        // Validity invariant: re-checking each explanation independently
        // reproduces new_rank > k.
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let k = 2;
        let result = explain_sentence_removal(
            &ranker,
            "covid outbreak",
            k,
            DocId(0),
            &SentenceRemovalConfig {
                n: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let ranking = rank_corpus(&ranker, "covid outbreak");
        let pool = ranking.top_k(k + 1);
        for e in &result.explanations {
            let rows = rerank_pool(
                &ranker,
                "covid outbreak",
                &pool,
                Some((DocId(0), &e.perturbed_body)),
            );
            let rank = rows.iter().find(|r| r.substituted).unwrap().new_rank;
            assert_eq!(rank, e.new_rank);
            assert!(rank > k);
        }
    }
}
