//! The shared candidate-evaluation driver for the counterfactual searches.
//!
//! Every generative explainer is the same loop: pull candidates from a
//! [`ComboSearch`], evaluate each (a pure scoring computation), and commit
//! the verdicts *in enumeration order* so the size-major minimality
//! guarantee — and the exact output, including `candidates_evaluated`
//! counters — is preserved. [`drive_search`] factors that loop out and adds
//! level-parallel evaluation: candidates are pulled in deterministic
//! batches, evaluated concurrently with the ordered scoped-thread map
//! ([`credence_rank::par_map`]), and committed strictly sequentially.
//!
//! # Determinism
//!
//! Evaluation is required to be pure (no shared mutable state), so a
//! candidate's verdict never depends on which thread computed it or on what
//! was computed alongside it. The commit callback runs on the caller's
//! thread in exactly the order `ComboSearch` emitted the candidates, and
//! the search stops at the first commit that requests it. Batching may
//! *evaluate* a few candidates beyond the stopping point speculatively;
//! their results are discarded uncommitted, so the observable output —
//! accepted explanations, their order, and the committed-candidate counts —
//! is byte-identical to the serial loop for every thread count.

use std::collections::HashMap;
use std::ops::ControlFlow;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use credence_index::DocId;
use credence_rank::{par_map, par_map_until, DeltaProfile, PoolScorer, TermRemovalProfile};

use crate::budget::{Budget, SearchStatus};
use crate::combos::{Combo, ComboSearch};

/// Knobs for the candidate-evaluation engine, carried by every explainer
/// config (and surfaced through `EngineConfig` / the server).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Worker threads for candidate evaluation. `0` means one per available
    /// CPU; `1` disables parallelism (the serial reference path).
    pub threads: usize,
    /// Minimum batch size worth fanning out to threads; smaller batches are
    /// evaluated inline. Keeps small searches free of thread overhead.
    pub parallel_threshold: usize,
    /// Disable the incremental (delta / posting-list) scorers and evaluate
    /// every candidate with the exact full scorer. The output is identical
    /// either way (the incremental paths are bit-exact); this knob exists so
    /// tests and benches can run the reference path on demand.
    pub force_exact: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            parallel_threshold: 64,
            force_exact: false,
        }
    }
}

impl EvalOptions {
    /// The serial reference configuration: one thread, exact scoring.
    pub fn exact_serial() -> Self {
        Self {
            threads: 1,
            parallel_threshold: usize::MAX,
            force_exact: true,
        }
    }

    /// The number of worker threads after resolving `0` = auto.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// Largest speculative batch: bounds wasted evaluations past an early
/// acceptance while amortising thread setup on long searches.
const MAX_BATCH: usize = 512;

/// Run the candidate loop: evaluate combos from `search` (possibly in
/// parallel) and commit verdicts sequentially in enumeration order, bounded
/// by `budget`.
///
/// `evaluate` must be pure; `commit` receives the combo, its verdict, and
/// the 1-based count of candidates committed so far (the serial loop's
/// `search.emitted()` at that point), and returns [`ControlFlow::Break`] to
/// stop the search.
///
/// The budget is consulted before every candidate on the serial path and at
/// every batch boundary (plus between items inside a parallel batch, via
/// [`par_map_until`]) otherwise. The return value says how the loop ended:
/// [`SearchStatus::Complete`] when the enumeration drained or a commit broke
/// out, and the tripped limit otherwise. With [`Budget::unlimited`] the
/// commits — order, verdicts, and counts — are byte-identical to the
/// pre-budget driver for every thread count.
pub(crate) fn drive_search<R: Send>(
    search: &mut ComboSearch,
    options: &EvalOptions,
    budget: &Budget,
    evaluate: impl Fn(&Combo) -> R + Sync,
    mut commit: impl FnMut(Combo, R, usize) -> ControlFlow<()>,
) -> SearchStatus {
    let threads = options.resolved_threads();
    let mut committed = 0usize;

    if threads <= 1 {
        // The serial reference loop: no batching, no speculation.
        loop {
            if let Some(stop) = budget.stop_reason(committed) {
                return stop;
            }
            let Some(combo) = search.next() else { break };
            let verdict = evaluate(&combo);
            committed += 1;
            if commit(combo, verdict, committed).is_break() {
                return SearchStatus::Complete;
            }
        }
        return SearchStatus::Complete;
    }

    // Ramp the batch size up from a couple of rounds per thread so an early
    // acceptance wastes little speculative work, while long searches settle
    // into large, well-amortised batches.
    let mut batch_size = (threads * 2).min(MAX_BATCH);
    let mut batch: Vec<Combo> = Vec::with_capacity(batch_size);
    loop {
        if let Some(stop) = budget.stop_reason(committed) {
            return stop;
        }
        batch.clear();
        // Never pull speculative candidates past the eval cap, so an
        // `Exhausted` stop commits exactly `max_evals` on every thread count.
        let this_batch = batch_size.min(budget.remaining_evals(committed));
        while batch.len() < this_batch {
            let Some(combo) = search.next() else { break };
            batch.push(combo);
        }
        if batch.is_empty() {
            // Enumeration drained: the top-of-loop check already returned
            // if a budget limit had tripped, so this end is the natural one.
            return SearchStatus::Complete;
        }
        if budget.deadline.is_some() || budget.cancel.is_some() {
            // Interruptible evaluation: workers poll the deadline/cancel
            // state between candidates and drop the suffix of their chunk.
            let eval_threads = if batch.len() >= options.parallel_threshold {
                threads
            } else {
                1
            };
            let verdicts = par_map_until(&batch, eval_threads, &evaluate, || budget.interrupted());
            for (combo, verdict) in batch.drain(..).zip(verdicts) {
                let Some(verdict) = verdict else {
                    // The budget tripped mid-batch; everything before this
                    // point was committed, which keeps the prefix clean.
                    return budget
                        .stop_reason(committed)
                        .unwrap_or(SearchStatus::Deadline);
                };
                committed += 1;
                if commit(combo, verdict, committed).is_break() {
                    return SearchStatus::Complete;
                }
            }
        } else {
            let verdicts = if batch.len() >= options.parallel_threshold {
                par_map(&batch, threads, &evaluate)
            } else {
                batch.iter().map(&evaluate).collect()
            };
            for (combo, verdict) in batch.drain(..).zip(verdicts) {
                committed += 1;
                if commit(combo, verdict, committed).is_break() {
                    return SearchStatus::Complete;
                }
            }
        }
        batch_size = (batch_size * 2).min(MAX_BATCH);
    }
}

/// Cross-request replay memoisation for the candidate-evaluation loops.
///
/// The four explainers re-derive the same per-(query, doc) state on every
/// request: the top-(k+1) pool scores ([`PoolScorer`]), the per-sentence tf
/// profiles behind the sentence-removal delta replay
/// ([`DeltaProfile`](credence_rank::DeltaProfile)), and the per-surface
/// removal profiles behind the term-removal replay
/// ([`TermRemovalProfile`](credence_rank::TermRemovalProfile)). One
/// `ReplayMemo` lives on each [`CredenceEngine`](crate::CredenceEngine)
/// and shares that state across the explainers and across requests — the
/// engine is per-generation, so a corpus publish swaps the engine and the
/// memo with it (invalidation by construction, never by sweeping).
///
/// Sharing is bit-safe: every memoised value is a pure function of
/// `(query, k, doc)` over the generation's immutable segment and ranker,
/// and the rehydrated scorers perform exactly the same folds as freshly
/// built ones, so responses are byte-identical with or without the memo.
///
/// Each map is bounded; at capacity it is cleared wholesale (the maps are
/// small and rebuilt in one request each, so wholesale reset beats
/// per-entry bookkeeping on these hot paths).
pub struct ReplayMemo {
    capacity: usize,
    pool: std::sync::Mutex<HashMap<(String, usize, DocId), Arc<PoolScorer>>>,
    delta: std::sync::Mutex<HashMap<(String, DocId), Arc<DeltaProfile>>>,
    removal: std::sync::Mutex<HashMap<(String, DocId), Arc<TermRemovalProfile>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ReplayMemo {
    /// A memo holding up to `capacity` entries per map (0 disables it).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            pool: std::sync::Mutex::new(HashMap::new()),
            delta: std::sync::Mutex::new(HashMap::new()),
            removal: std::sync::Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Lookups served from the memo so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Lookups that had to build their value.
    pub fn misses(&self) -> u64 {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn get_or_build<K: std::hash::Hash + Eq + Clone, V>(
        &self,
        map: &std::sync::Mutex<HashMap<K, Arc<V>>>,
        key: K,
        build: impl FnOnce() -> Option<V>,
    ) -> Option<Arc<V>> {
        use std::sync::atomic::Ordering::Relaxed;
        if self.capacity == 0 {
            return build().map(Arc::new);
        }
        if let Some(found) = map.lock().expect("memo lock poisoned").get(&key) {
            self.hits.fetch_add(1, Relaxed);
            return Some(Arc::clone(found));
        }
        self.misses.fetch_add(1, Relaxed);
        let value = Arc::new(build()?);
        let mut map = map.lock().expect("memo lock poisoned");
        if map.len() >= self.capacity {
            map.clear();
        }
        map.entry(key).or_insert_with(|| Arc::clone(&value));
        Some(value)
    }

    /// The memoised top-(k+1) pool scorer for `(query, k, doc)`; `build`
    /// runs on a miss. `build` must be the deterministic
    /// `PoolScorer::new(ranker, query, top_k(k+1), doc)` of the engine's
    /// cached ranking, so a hit is bit-identical to a rebuild.
    pub fn pool_scorer(
        &self,
        query: &str,
        k: usize,
        doc: DocId,
        build: impl FnOnce() -> PoolScorer,
    ) -> Arc<PoolScorer> {
        self.get_or_build(&self.pool, (query.to_string(), k, doc), || Some(build()))
            .expect("pool build is infallible")
    }

    /// The memoised sentence-delta profile for `(query, doc)`. `None`
    /// results (non-decomposable model) are not cached — the decision is a
    /// single capability check.
    pub fn delta_profile(
        &self,
        query: &str,
        doc: DocId,
        build: impl FnOnce() -> Option<DeltaProfile>,
    ) -> Option<Arc<DeltaProfile>> {
        self.get_or_build(&self.delta, (query.to_string(), doc), build)
    }

    /// The memoised term-removal profile for `(query, doc)`.
    pub fn removal_profile(
        &self,
        query: &str,
        doc: DocId,
        build: impl FnOnce() -> Option<TermRemovalProfile>,
    ) -> Option<Arc<TermRemovalProfile>> {
        self.get_or_build(&self.removal, (query.to_string(), doc), build)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combos::{CandidateOrdering, SearchBudget};

    fn collect_budgeted(
        options: &EvalOptions,
        budget: &Budget,
        stop_at: Option<usize>,
    ) -> (Vec<Vec<usize>>, Vec<usize>, SearchStatus) {
        let scores = [5.0, 4.0, 3.0, 2.0, 1.0];
        let mut search = ComboSearch::new(
            &scores,
            SearchBudget::default(),
            CandidateOrdering::ImportanceGuided,
        );
        let mut combos = Vec::new();
        let mut counts = Vec::new();
        let status = drive_search(
            &mut search,
            options,
            budget,
            |combo| combo.items.iter().sum::<usize>(),
            |combo, verdict, committed| {
                assert_eq!(verdict, combo.items.iter().sum::<usize>());
                combos.push(combo.items);
                counts.push(committed);
                if stop_at == Some(committed) {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        (combos, counts, status)
    }

    fn collect_with(
        options: &EvalOptions,
        stop_at: Option<usize>,
    ) -> (Vec<Vec<usize>>, Vec<usize>) {
        let (combos, counts, status) = collect_budgeted(options, &Budget::unlimited(), stop_at);
        assert_eq!(status, SearchStatus::Complete);
        (combos, counts)
    }

    #[test]
    fn parallel_commits_match_serial_order() {
        let serial = collect_with(&EvalOptions::exact_serial(), None);
        for threads in [0, 2, 3, 8] {
            let parallel = collect_with(
                &EvalOptions {
                    threads,
                    parallel_threshold: 1,
                    force_exact: false,
                },
                None,
            );
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn early_stop_commits_identically() {
        for stop in [1, 3, 7] {
            let serial = collect_with(&EvalOptions::exact_serial(), Some(stop));
            let parallel = collect_with(
                &EvalOptions {
                    threads: 4,
                    parallel_threshold: 1,
                    force_exact: false,
                },
                Some(stop),
            );
            assert_eq!(parallel, serial, "stop={stop}");
            assert_eq!(serial.1.last(), Some(&stop));
        }
    }

    #[test]
    fn max_evals_commits_exact_prefix_on_every_thread_count() {
        let (all, _) = collect_with(&EvalOptions::exact_serial(), None);
        for cap in [0, 1, 3, all.len(), all.len() + 10] {
            let budget = Budget::unlimited().with_max_evals(cap);
            for threads in [1, 2, 4] {
                let options = EvalOptions {
                    threads,
                    parallel_threshold: 1,
                    force_exact: false,
                };
                let (combos, counts, status) = collect_budgeted(&options, &budget, None);
                let expect = cap.min(all.len());
                assert_eq!(combos, all[..expect], "cap={cap} threads={threads}");
                assert_eq!(counts.len(), expect);
                let expect_status = if cap <= all.len() {
                    SearchStatus::Exhausted
                } else {
                    SearchStatus::Complete
                };
                assert_eq!(status, expect_status, "cap={cap} threads={threads}");
            }
        }
    }

    #[test]
    fn expired_deadline_stops_before_any_commit() {
        let budget = Budget {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
            ..Budget::default()
        };
        for threads in [1, 4] {
            let options = EvalOptions {
                threads,
                parallel_threshold: 1,
                force_exact: false,
            };
            let (combos, _, status) = collect_budgeted(&options, &budget, None);
            assert!(combos.is_empty(), "threads={threads}");
            assert_eq!(status, SearchStatus::Deadline, "threads={threads}");
        }
    }

    #[test]
    fn raised_cancel_flag_reports_cancelled() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let flag = Arc::new(AtomicBool::new(true));
        let budget = Budget::unlimited().with_cancel(flag);
        for threads in [1, 4] {
            let options = EvalOptions {
                threads,
                parallel_threshold: 1,
                force_exact: false,
            };
            let (combos, _, status) = collect_budgeted(&options, &budget, None);
            assert!(combos.is_empty(), "threads={threads}");
            assert_eq!(status, SearchStatus::Cancelled, "threads={threads}");
        }
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let unlimited = collect_with(&EvalOptions::exact_serial(), None);
        let budget = Budget::unlimited()
            .with_deadline_ms(600_000)
            .with_max_evals(1_000_000);
        for threads in [1, 4] {
            let options = EvalOptions {
                threads,
                parallel_threshold: 1,
                force_exact: false,
            };
            let (combos, counts, status) = collect_budgeted(&options, &budget, None);
            assert_eq!((combos, counts), unlimited, "threads={threads}");
            assert_eq!(status, SearchStatus::Complete, "threads={threads}");
        }
    }

    #[test]
    fn break_during_budgeted_run_is_complete() {
        let budget = Budget::unlimited().with_max_evals(1_000);
        let (combos, _, status) = collect_budgeted(&EvalOptions::exact_serial(), &budget, Some(2));
        assert_eq!(combos.len(), 2);
        assert_eq!(status, SearchStatus::Complete);
    }

    #[test]
    fn committed_counts_are_sequential() {
        let (_, counts) = collect_with(
            &EvalOptions {
                threads: 2,
                parallel_threshold: 1,
                force_exact: false,
            },
            None,
        );
        assert_eq!(counts, (1..=counts.len()).collect::<Vec<_>>());
    }
}
