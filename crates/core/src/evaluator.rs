//! The shared candidate-evaluation driver for the counterfactual searches.
//!
//! Every generative explainer is the same loop: pull candidates from a
//! [`ComboSearch`], evaluate each (a pure scoring computation), and commit
//! the verdicts *in enumeration order* so the size-major minimality
//! guarantee — and the exact output, including `candidates_evaluated`
//! counters — is preserved. [`drive_search`] factors that loop out and adds
//! level-parallel evaluation: candidates are pulled in deterministic
//! batches, evaluated concurrently with the ordered scoped-thread map
//! ([`credence_rank::par_map`]), and committed strictly sequentially.
//!
//! # Determinism
//!
//! Evaluation is required to be pure (no shared mutable state), so a
//! candidate's verdict never depends on which thread computed it or on what
//! was computed alongside it. The commit callback runs on the caller's
//! thread in exactly the order `ComboSearch` emitted the candidates, and
//! the search stops at the first commit that requests it. Batching may
//! *evaluate* a few candidates beyond the stopping point speculatively;
//! their results are discarded uncommitted, so the observable output —
//! accepted explanations, their order, and the committed-candidate counts —
//! is byte-identical to the serial loop for every thread count.

use std::ops::ControlFlow;

use credence_rank::{par_map, par_map_until};

use crate::budget::{Budget, SearchStatus};
use crate::combos::{Combo, ComboSearch};

/// Knobs for the candidate-evaluation engine, carried by every explainer
/// config (and surfaced through `EngineConfig` / the server).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Worker threads for candidate evaluation. `0` means one per available
    /// CPU; `1` disables parallelism (the serial reference path).
    pub threads: usize,
    /// Minimum batch size worth fanning out to threads; smaller batches are
    /// evaluated inline. Keeps small searches free of thread overhead.
    pub parallel_threshold: usize,
    /// Disable the incremental (delta / posting-list) scorers and evaluate
    /// every candidate with the exact full scorer. The output is identical
    /// either way (the incremental paths are bit-exact); this knob exists so
    /// tests and benches can run the reference path on demand.
    pub force_exact: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            parallel_threshold: 64,
            force_exact: false,
        }
    }
}

impl EvalOptions {
    /// The serial reference configuration: one thread, exact scoring.
    pub fn exact_serial() -> Self {
        Self {
            threads: 1,
            parallel_threshold: usize::MAX,
            force_exact: true,
        }
    }

    /// The number of worker threads after resolving `0` = auto.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// Largest speculative batch: bounds wasted evaluations past an early
/// acceptance while amortising thread setup on long searches.
const MAX_BATCH: usize = 512;

/// Run the candidate loop: evaluate combos from `search` (possibly in
/// parallel) and commit verdicts sequentially in enumeration order, bounded
/// by `budget`.
///
/// `evaluate` must be pure; `commit` receives the combo, its verdict, and
/// the 1-based count of candidates committed so far (the serial loop's
/// `search.emitted()` at that point), and returns [`ControlFlow::Break`] to
/// stop the search.
///
/// The budget is consulted before every candidate on the serial path and at
/// every batch boundary (plus between items inside a parallel batch, via
/// [`par_map_until`]) otherwise. The return value says how the loop ended:
/// [`SearchStatus::Complete`] when the enumeration drained or a commit broke
/// out, and the tripped limit otherwise. With [`Budget::unlimited`] the
/// commits — order, verdicts, and counts — are byte-identical to the
/// pre-budget driver for every thread count.
pub(crate) fn drive_search<R: Send>(
    search: &mut ComboSearch,
    options: &EvalOptions,
    budget: &Budget,
    evaluate: impl Fn(&Combo) -> R + Sync,
    mut commit: impl FnMut(Combo, R, usize) -> ControlFlow<()>,
) -> SearchStatus {
    let threads = options.resolved_threads();
    let mut committed = 0usize;

    if threads <= 1 {
        // The serial reference loop: no batching, no speculation.
        loop {
            if let Some(stop) = budget.stop_reason(committed) {
                return stop;
            }
            let Some(combo) = search.next() else { break };
            let verdict = evaluate(&combo);
            committed += 1;
            if commit(combo, verdict, committed).is_break() {
                return SearchStatus::Complete;
            }
        }
        return SearchStatus::Complete;
    }

    // Ramp the batch size up from a couple of rounds per thread so an early
    // acceptance wastes little speculative work, while long searches settle
    // into large, well-amortised batches.
    let mut batch_size = (threads * 2).min(MAX_BATCH);
    let mut batch: Vec<Combo> = Vec::with_capacity(batch_size);
    loop {
        if let Some(stop) = budget.stop_reason(committed) {
            return stop;
        }
        batch.clear();
        // Never pull speculative candidates past the eval cap, so an
        // `Exhausted` stop commits exactly `max_evals` on every thread count.
        let this_batch = batch_size.min(budget.remaining_evals(committed));
        while batch.len() < this_batch {
            let Some(combo) = search.next() else { break };
            batch.push(combo);
        }
        if batch.is_empty() {
            // Enumeration drained: the top-of-loop check already returned
            // if a budget limit had tripped, so this end is the natural one.
            return SearchStatus::Complete;
        }
        if budget.deadline.is_some() || budget.cancel.is_some() {
            // Interruptible evaluation: workers poll the deadline/cancel
            // state between candidates and drop the suffix of their chunk.
            let eval_threads = if batch.len() >= options.parallel_threshold {
                threads
            } else {
                1
            };
            let verdicts = par_map_until(&batch, eval_threads, &evaluate, || budget.interrupted());
            for (combo, verdict) in batch.drain(..).zip(verdicts) {
                let Some(verdict) = verdict else {
                    // The budget tripped mid-batch; everything before this
                    // point was committed, which keeps the prefix clean.
                    return budget
                        .stop_reason(committed)
                        .unwrap_or(SearchStatus::Deadline);
                };
                committed += 1;
                if commit(combo, verdict, committed).is_break() {
                    return SearchStatus::Complete;
                }
            }
        } else {
            let verdicts = if batch.len() >= options.parallel_threshold {
                par_map(&batch, threads, &evaluate)
            } else {
                batch.iter().map(&evaluate).collect()
            };
            for (combo, verdict) in batch.drain(..).zip(verdicts) {
                committed += 1;
                if commit(combo, verdict, committed).is_break() {
                    return SearchStatus::Complete;
                }
            }
        }
        batch_size = (batch_size * 2).min(MAX_BATCH);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combos::{CandidateOrdering, SearchBudget};

    fn collect_budgeted(
        options: &EvalOptions,
        budget: &Budget,
        stop_at: Option<usize>,
    ) -> (Vec<Vec<usize>>, Vec<usize>, SearchStatus) {
        let scores = [5.0, 4.0, 3.0, 2.0, 1.0];
        let mut search = ComboSearch::new(
            &scores,
            SearchBudget::default(),
            CandidateOrdering::ImportanceGuided,
        );
        let mut combos = Vec::new();
        let mut counts = Vec::new();
        let status = drive_search(
            &mut search,
            options,
            budget,
            |combo| combo.items.iter().sum::<usize>(),
            |combo, verdict, committed| {
                assert_eq!(verdict, combo.items.iter().sum::<usize>());
                combos.push(combo.items);
                counts.push(committed);
                if stop_at == Some(committed) {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        (combos, counts, status)
    }

    fn collect_with(
        options: &EvalOptions,
        stop_at: Option<usize>,
    ) -> (Vec<Vec<usize>>, Vec<usize>) {
        let (combos, counts, status) = collect_budgeted(options, &Budget::unlimited(), stop_at);
        assert_eq!(status, SearchStatus::Complete);
        (combos, counts)
    }

    #[test]
    fn parallel_commits_match_serial_order() {
        let serial = collect_with(&EvalOptions::exact_serial(), None);
        for threads in [0, 2, 3, 8] {
            let parallel = collect_with(
                &EvalOptions {
                    threads,
                    parallel_threshold: 1,
                    force_exact: false,
                },
                None,
            );
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn early_stop_commits_identically() {
        for stop in [1, 3, 7] {
            let serial = collect_with(&EvalOptions::exact_serial(), Some(stop));
            let parallel = collect_with(
                &EvalOptions {
                    threads: 4,
                    parallel_threshold: 1,
                    force_exact: false,
                },
                Some(stop),
            );
            assert_eq!(parallel, serial, "stop={stop}");
            assert_eq!(serial.1.last(), Some(&stop));
        }
    }

    #[test]
    fn max_evals_commits_exact_prefix_on_every_thread_count() {
        let (all, _) = collect_with(&EvalOptions::exact_serial(), None);
        for cap in [0, 1, 3, all.len(), all.len() + 10] {
            let budget = Budget::unlimited().with_max_evals(cap);
            for threads in [1, 2, 4] {
                let options = EvalOptions {
                    threads,
                    parallel_threshold: 1,
                    force_exact: false,
                };
                let (combos, counts, status) = collect_budgeted(&options, &budget, None);
                let expect = cap.min(all.len());
                assert_eq!(combos, all[..expect], "cap={cap} threads={threads}");
                assert_eq!(counts.len(), expect);
                let expect_status = if cap <= all.len() {
                    SearchStatus::Exhausted
                } else {
                    SearchStatus::Complete
                };
                assert_eq!(status, expect_status, "cap={cap} threads={threads}");
            }
        }
    }

    #[test]
    fn expired_deadline_stops_before_any_commit() {
        let budget = Budget {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
            ..Budget::default()
        };
        for threads in [1, 4] {
            let options = EvalOptions {
                threads,
                parallel_threshold: 1,
                force_exact: false,
            };
            let (combos, _, status) = collect_budgeted(&options, &budget, None);
            assert!(combos.is_empty(), "threads={threads}");
            assert_eq!(status, SearchStatus::Deadline, "threads={threads}");
        }
    }

    #[test]
    fn raised_cancel_flag_reports_cancelled() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let flag = Arc::new(AtomicBool::new(true));
        let budget = Budget::unlimited().with_cancel(flag);
        for threads in [1, 4] {
            let options = EvalOptions {
                threads,
                parallel_threshold: 1,
                force_exact: false,
            };
            let (combos, _, status) = collect_budgeted(&options, &budget, None);
            assert!(combos.is_empty(), "threads={threads}");
            assert_eq!(status, SearchStatus::Cancelled, "threads={threads}");
        }
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let unlimited = collect_with(&EvalOptions::exact_serial(), None);
        let budget = Budget::unlimited()
            .with_deadline_ms(600_000)
            .with_max_evals(1_000_000);
        for threads in [1, 4] {
            let options = EvalOptions {
                threads,
                parallel_threshold: 1,
                force_exact: false,
            };
            let (combos, counts, status) = collect_budgeted(&options, &budget, None);
            assert_eq!((combos, counts), unlimited, "threads={threads}");
            assert_eq!(status, SearchStatus::Complete, "threads={threads}");
        }
    }

    #[test]
    fn break_during_budgeted_run_is_complete() {
        let budget = Budget::unlimited().with_max_evals(1_000);
        let (combos, _, status) = collect_budgeted(&EvalOptions::exact_serial(), &budget, Some(2));
        assert_eq!(combos.len(), 2);
        assert_eq!(status, SearchStatus::Complete);
    }

    #[test]
    fn committed_counts_are_sequential() {
        let (_, counts) = collect_with(
            &EvalOptions {
                threads: 2,
                parallel_threshold: 1,
                force_exact: false,
            },
            None,
        );
        assert_eq!(counts, (1..=counts.len()).collect::<Vec<_>>());
    }
}
