//! # CREDENCE — counterfactual explanations for document ranking
//!
//! A from-scratch Rust reproduction of *"CREDENCE: Counterfactual
//! Explanations for Document Ranking"* (ICDE 2023). Given a corpus, a
//! black-box ranking model (`credence-rank`), and a query, this crate
//! generates the paper's four explanation families:
//!
//! 1. **Counterfactual documents** ([`sentence_removal`], §II-C) — minimal
//!    sets of sentences whose removal pushes a ranked document beyond `k`.
//! 2. **Counterfactual queries** ([`query_augmentation`], §II-D) — minimal
//!    sets of document terms which, appended to the query, raise the
//!    document's rank above a threshold.
//! 3. **Instance-based counterfactuals** ([`instance_based`], §II-E) —
//!    actual non-relevant corpus documents highly similar to the instance
//!    document, via Doc2Vec nearest neighbours or cosine over sampled BM25
//!    score vectors.
//! 4. **Build-your-own counterfactuals** ([`builder`], §III-C) — arbitrary
//!    user edits, re-ranked against the original top-(k+1) pool with
//!    validity checking.
//!
//! [`combos`] provides the shared minimality-ordered search the first two
//! algorithms iterate over, and [`engine`] exposes one façade
//! ([`CredenceEngine`]) mirroring the original system's REST backend
//! (Figure 1), including the LDA topic-browsing endpoint.
//!
//! ## Quick start
//!
//! ```
//! use credence_core::{CredenceEngine, EngineConfig};
//! use credence_index::{Bm25Params, Document, InvertedIndex};
//! use credence_rank::Bm25Ranker;
//! use credence_text::Analyzer;
//!
//! let docs = vec![
//!     Document::from_body("covid outbreak strains hospitals. Masks required indoors."),
//!     Document::from_body("covid outbreak closes schools. Classes move online."),
//!     Document::from_body("garden show opens. Flowers bloom downtown."),
//! ];
//! let index = InvertedIndex::build(docs, Analyzer::english());
//! let ranker = Bm25Ranker::new(&index, Bm25Params::default());
//! let engine = CredenceEngine::new(&ranker, EngineConfig::fast());
//! let ranking = engine.rank("covid outbreak", 2);
//! assert_eq!(ranking.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod budget;
pub mod builder;
pub mod combos;
pub mod engine;
pub mod error;
pub mod evaluator;
pub mod explanation;
pub mod feature_counterfactual;
pub mod instance_based;
pub mod lime;
pub mod metrics;
pub mod query_augmentation;
pub mod query_reduction;
pub mod registry;
pub mod saliency;
pub mod sentence_removal;
pub mod term_removal;

pub use budget::{Budget, SearchStatus};
pub use builder::{
    apply_edits, test_edits, test_edits_ranked, test_perturbation,
    test_perturbation_budgeted_ranked, test_perturbation_ranked, BuilderOutcome, Edit,
};
pub use combos::{CandidateOrdering, ComboSearch, SearchBudget};
pub use credence_index::{SearchStrategy, TopKOptions};
pub use engine::{CredenceEngine, EngineConfig, RetrievalStats};
pub use error::ExplainError;
pub use evaluator::{EvalOptions, ReplayMemo};
pub use explanation::{
    InstanceExplanation, QueryAugmentationExplanation, SentenceRemovalExplanation,
};
pub use feature_counterfactual::{
    explain_feature_changes, FeatureCfConfig, FeatureCfExplanation, FeatureChange,
};
pub use instance_based::{cosine_sampled, doc2vec_nearest, CosineSampledConfig};
pub use lime::{
    explain_feature_attribution, explain_feature_attribution_memo,
    explain_feature_attribution_ranked, FeatureAttribution, FeatureAttributionConfig,
    FeatureAttributionResult,
};
pub use query_augmentation::{
    explain_query_augmentation, explain_query_augmentation_ranked, QueryAugmentationConfig,
};
pub use query_reduction::{
    explain_query_reduction, explain_query_reduction_ranked, QueryReductionConfig,
    QueryReductionExplanation,
};
pub use registry::{
    bm25_factory, Corpus, CorpusInfo, CorpusRegistry, CorpusSnapshot, RankerFactory, SnapshotError,
};
pub use saliency::{explain_saliency, SaliencyExplanation, SaliencyUnit};
pub use sentence_removal::{
    explain_sentence_removal, explain_sentence_removal_memo, explain_sentence_removal_ranked,
    SentenceRemovalConfig,
};
pub use term_removal::{
    explain_term_removal, explain_term_removal_memo, explain_term_removal_ranked,
    TermRemovalConfig, TermRemovalExplanation,
};
