//! Errors surfaced by the explanation algorithms.

use std::fmt;

use credence_index::DocId;

/// Why an explanation request could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExplainError {
    /// The document id does not exist in the corpus.
    DocNotFound(DocId),
    /// The query analysed to zero terms.
    EmptyQuery,
    /// The instance document is not ranked in the top-k, so "lowering its
    /// rank beyond k" (or the builder's pool) is undefined. Carries its
    /// actual rank when it is ranked at all.
    DocNotRelevant {
        /// The document.
        doc: DocId,
        /// Its rank, if it appears in the ranking at all.
        rank: Option<usize>,
    },
    /// The document has no sentences to remove.
    NoSentences(DocId),
    /// No candidate terms exist (every document term already appears in the
    /// query, or the document analysed to nothing).
    NoCandidateTerms(DocId),
    /// `k` (or a threshold) was zero or otherwise unusable.
    InvalidParameter(&'static str),
    /// The request's wall-clock deadline expired before any work could be
    /// done (mid-search expiry returns a partial result instead).
    DeadlineExceeded,
    /// The request's cooperative cancel flag was raised before any work
    /// could be done (mid-search cancellation returns a partial result).
    Cancelled,
}

impl ExplainError {
    /// The stable machine-readable error code, shared by the REST error
    /// envelope and the CLI. These strings are API: clients match on them.
    pub fn code(&self) -> &'static str {
        match self {
            ExplainError::DocNotFound(_) => "doc_not_found",
            ExplainError::EmptyQuery => "empty_query",
            ExplainError::DocNotRelevant { .. } => "doc_not_relevant",
            ExplainError::NoSentences(_) => "no_sentences",
            ExplainError::NoCandidateTerms(_) => "no_candidate_terms",
            ExplainError::InvalidParameter(_) => "invalid_parameter",
            ExplainError::DeadlineExceeded => "deadline_exceeded",
            ExplainError::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for ExplainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplainError::DocNotFound(d) => write!(f, "document {d} not found"),
            ExplainError::EmptyQuery => write!(f, "query has no indexable terms"),
            ExplainError::DocNotRelevant { doc, rank } => match rank {
                Some(r) => write!(f, "document {doc} is ranked {r}, outside the top-k"),
                None => write!(f, "document {doc} is not retrieved for this query"),
            },
            ExplainError::NoSentences(d) => write!(f, "document {d} has no sentences"),
            ExplainError::NoCandidateTerms(d) => {
                write!(f, "document {d} offers no candidate terms to append")
            }
            ExplainError::InvalidParameter(p) => write!(f, "invalid parameter: {p}"),
            ExplainError::DeadlineExceeded => {
                write!(f, "deadline expired before the request could start")
            }
            ExplainError::Cancelled => write!(f, "request was cancelled"),
        }
    }
}

impl std::error::Error for ExplainError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ExplainError::DocNotFound(DocId(3))
            .to_string()
            .contains('3'));
        assert!(ExplainError::EmptyQuery.to_string().contains("query"));
        let e = ExplainError::DocNotRelevant {
            doc: DocId(1),
            rank: Some(14),
        };
        assert!(e.to_string().contains("14"));
        let e = ExplainError::DocNotRelevant {
            doc: DocId(1),
            rank: None,
        };
        assert!(e.to_string().contains("not retrieved"));
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(ExplainError::DocNotFound(DocId(0)).code(), "doc_not_found");
        assert_eq!(ExplainError::EmptyQuery.code(), "empty_query");
        let e = ExplainError::DocNotRelevant {
            doc: DocId(0),
            rank: None,
        };
        assert_eq!(e.code(), "doc_not_relevant");
        assert_eq!(ExplainError::NoSentences(DocId(0)).code(), "no_sentences");
        assert_eq!(
            ExplainError::NoCandidateTerms(DocId(0)).code(),
            "no_candidate_terms"
        );
        assert_eq!(
            ExplainError::InvalidParameter("k").code(),
            "invalid_parameter"
        );
        assert_eq!(ExplainError::DeadlineExceeded.code(), "deadline_exceeded");
        assert_eq!(ExplainError::Cancelled.code(), "cancelled");
    }
}
