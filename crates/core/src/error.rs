//! Errors surfaced by the explanation algorithms.

use std::fmt;

use credence_index::DocId;

/// Why an explanation request could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExplainError {
    /// The document id does not exist in the corpus.
    DocNotFound(DocId),
    /// The query analysed to zero terms.
    EmptyQuery,
    /// The instance document is not ranked in the top-k, so "lowering its
    /// rank beyond k" (or the builder's pool) is undefined. Carries its
    /// actual rank when it is ranked at all.
    DocNotRelevant {
        /// The document.
        doc: DocId,
        /// Its rank, if it appears in the ranking at all.
        rank: Option<usize>,
    },
    /// The document has no sentences to remove.
    NoSentences(DocId),
    /// No candidate terms exist (every document term already appears in the
    /// query, or the document analysed to nothing).
    NoCandidateTerms(DocId),
    /// `k` (or a threshold) was zero or otherwise unusable.
    InvalidParameter(&'static str),
}

impl fmt::Display for ExplainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplainError::DocNotFound(d) => write!(f, "document {d} not found"),
            ExplainError::EmptyQuery => write!(f, "query has no indexable terms"),
            ExplainError::DocNotRelevant { doc, rank } => match rank {
                Some(r) => write!(f, "document {doc} is ranked {r}, outside the top-k"),
                None => write!(f, "document {doc} is not retrieved for this query"),
            },
            ExplainError::NoSentences(d) => write!(f, "document {d} has no sentences"),
            ExplainError::NoCandidateTerms(d) => {
                write!(f, "document {d} offers no candidate terms to append")
            }
            ExplainError::InvalidParameter(p) => write!(f, "invalid parameter: {p}"),
        }
    }
}

impl std::error::Error for ExplainError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ExplainError::DocNotFound(DocId(3))
            .to_string()
            .contains('3'));
        assert!(ExplainError::EmptyQuery.to_string().contains("query"));
        let e = ExplainError::DocNotRelevant {
            doc: DocId(1),
            rank: Some(14),
        };
        assert!(e.to_string().contains("14"));
        let e = ExplainError::DocNotRelevant {
            doc: DocId(1),
            rank: None,
        };
        assert!(e.to_string().contains("not retrieved"));
    }
}
