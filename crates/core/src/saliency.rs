//! Occlusion saliency — the baseline explanation family CREDENCE is
//! positioned against.
//!
//! The paper's related work (EXS, LIRME, DeepSHAP for retrieval) explains
//! rankings with *saliency*: per-feature importance weights. To let the
//! benches compare counterfactual and saliency explanations on the same
//! footing, this module implements the standard model-agnostic occlusion
//! estimator: the saliency of a unit (term or sentence) is the score drop
//! the black-box ranker exhibits when that unit is removed,
//!
//! ```text
//! saliency(u) = score(q, d) − score(q, d \ u)
//! ```
//!
//! Unlike counterfactuals, saliency makes no statement about what suffices
//! to change the *ranking* — the comparison table (T-SALIENCY) quantifies
//! exactly that gap: top-saliency units are not necessarily a valid
//! counterfactual set, and counterfactual sets are not necessarily the
//! top-saliency units.

use credence_index::DocId;
use credence_rank::Ranker;
use credence_text::{split_sentences, tokenize};

use crate::error::ExplainError;

/// Saliency granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaliencyUnit {
    /// One weight per sentence.
    Sentence,
    /// One weight per distinct (normalised) term.
    Term,
}

/// One unit's saliency.
#[derive(Debug, Clone, PartialEq)]
pub struct SaliencyWeight {
    /// The unit's text (sentence text, or the term).
    pub unit: String,
    /// Index of the unit (sentence index, or rank among distinct terms in
    /// first-occurrence order).
    pub index: usize,
    /// Score drop when the unit is occluded. Positive = the unit supports
    /// relevance.
    pub weight: f64,
}

/// A saliency explanation: weights for every unit, sorted descending.
#[derive(Debug, Clone, PartialEq)]
pub struct SaliencyExplanation {
    /// The granularity used.
    pub unit: SaliencyUnit,
    /// Weights, most salient first (ties by unit index).
    pub weights: Vec<SaliencyWeight>,
    /// The document's unperturbed score.
    pub base_score: f64,
}

/// Compute an occlusion-saliency explanation for `doc` under `query`.
///
/// Requires only that the document exists and the query analyses to
/// something; the document does not need to be in the top-k (saliency is
/// defined for any score).
pub fn explain_saliency(
    ranker: &dyn Ranker,
    query: &str,
    doc: DocId,
    unit: SaliencyUnit,
) -> Result<SaliencyExplanation, ExplainError> {
    let index = ranker.index();
    let document = index
        .document(doc)
        .ok_or(ExplainError::DocNotFound(doc))?
        .clone();
    if index.analyze_query(query).is_empty() {
        return Err(ExplainError::EmptyQuery);
    }
    let base_score = ranker.score_doc(query, doc);

    let mut weights = match unit {
        SaliencyUnit::Sentence => {
            let sentences = split_sentences(&document.body);
            if sentences.is_empty() {
                return Err(ExplainError::NoSentences(doc));
            }
            sentences
                .iter()
                .map(|s| {
                    let occluded: String = sentences
                        .iter()
                        .filter(|x| x.index != s.index)
                        .map(|x| x.text.as_str())
                        .collect::<Vec<_>>()
                        .join(" ");
                    SaliencyWeight {
                        unit: s.text.clone(),
                        index: s.index,
                        weight: base_score - ranker.score_text(query, &occluded),
                    }
                })
                .collect::<Vec<_>>()
        }
        SaliencyUnit::Term => {
            let tokens = tokenize(&document.body);
            let mut distinct: Vec<String> = Vec::new();
            for t in &tokens {
                if !distinct.contains(&t.term) {
                    distinct.push(t.term.clone());
                }
            }
            if distinct.is_empty() {
                return Err(ExplainError::NoCandidateTerms(doc));
            }
            distinct
                .iter()
                .enumerate()
                .map(|(i, term)| {
                    // Occlude: drop every occurrence of the term.
                    let occluded: String = tokens
                        .iter()
                        .filter(|t| &t.term != term)
                        .map(|t| t.raw.as_str())
                        .collect::<Vec<_>>()
                        .join(" ");
                    SaliencyWeight {
                        unit: term.clone(),
                        index: i,
                        weight: base_score - ranker.score_text(query, &occluded),
                    }
                })
                .collect::<Vec<_>>()
        }
    };

    weights.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.index.cmp(&b.index))
    });
    Ok(SaliencyExplanation {
        unit,
        weights,
        base_score,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_index::{Bm25Params, Document, InvertedIndex};
    use credence_rank::Bm25Ranker;
    use credence_text::Analyzer;

    fn fixture() -> InvertedIndex {
        InvertedIndex::build(
            vec![
                Document::from_body(
                    "The covid outbreak worries everyone. Gardens are quiet this week. \
                     Officials tracked the covid outbreak closely.",
                ),
                Document::from_body("covid outbreak news continues daily."),
                Document::from_body("The garden fair sells tomato seedlings."),
            ],
            Analyzer::english(),
        )
    }

    #[test]
    fn sentence_saliency_ranks_query_sentences_first() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let exp =
            explain_saliency(&ranker, "covid outbreak", DocId(0), SaliencyUnit::Sentence).unwrap();
        assert_eq!(exp.weights.len(), 3);
        // The garden sentence must be least salient (its removal can only
        // help the score through length normalisation).
        let last = exp.weights.last().unwrap();
        assert!(last.unit.contains("Gardens"));
        // The two covid sentences carry positive weight.
        for w in &exp.weights[..2] {
            assert!(w.weight > 0.0, "{w:?}");
            assert!(w.unit.contains("covid"));
        }
    }

    #[test]
    fn term_saliency_ranks_query_terms_first() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let exp =
            explain_saliency(&ranker, "covid outbreak", DocId(0), SaliencyUnit::Term).unwrap();
        let top2: Vec<&str> = exp.weights[..2].iter().map(|w| w.unit.as_str()).collect();
        assert!(top2.contains(&"covid"));
        assert!(top2.contains(&"outbreak"));
    }

    #[test]
    fn non_query_terms_have_non_positive_weight() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let exp =
            explain_saliency(&ranker, "covid outbreak", DocId(0), SaliencyUnit::Term).unwrap();
        for w in &exp.weights {
            if w.unit != "covid" && w.unit != "outbreak" {
                // Removing a non-query term shortens the document, which can
                // only raise or keep the BM25 score: weight <= 0.
                assert!(w.weight <= 1e-12, "{w:?}");
            }
        }
    }

    #[test]
    fn base_score_matches_ranker() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let exp =
            explain_saliency(&ranker, "covid outbreak", DocId(0), SaliencyUnit::Sentence).unwrap();
        assert!((exp.base_score - ranker.score_doc("covid outbreak", DocId(0))).abs() < 1e-12);
    }

    #[test]
    fn works_for_unranked_documents() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let exp =
            explain_saliency(&ranker, "covid outbreak", DocId(2), SaliencyUnit::Term).unwrap();
        assert_eq!(exp.base_score, 0.0);
        assert!(exp.weights.iter().all(|w| w.weight.abs() < 1e-12));
    }

    #[test]
    fn validation_errors() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        assert!(matches!(
            explain_saliency(&ranker, "covid", DocId(99), SaliencyUnit::Term),
            Err(ExplainError::DocNotFound(_))
        ));
        assert!(matches!(
            explain_saliency(&ranker, "", DocId(0), SaliencyUnit::Term),
            Err(ExplainError::EmptyQuery)
        ));
    }
}
