//! Counterfactual query *reduction* — the symmetric completion of §II-D.
//!
//! The paper's counterfactual queries append terms to *raise* a document;
//! the natural dual asks which of the query's own terms keep the document
//! relevant: a minimal subset of query terms whose **removal** lowers the
//! document's rank beyond `k`. ("Your article only ranks for `covid
//! outbreak` because of `outbreak` — drop it and the article disappears.")
//!
//! Together the four generative explainers cover the full perturbation
//! grid the paper's framework implies:
//!
//! | | perturb document | perturb query |
//! |---|---|---|
//! | **lower rank** | sentence removal (§II-C) | query reduction (this) |
//! | **raise rank** | builder edits (§III-C) | query augmentation (§II-D) |
//!
//! Candidates are the query's distinct analysed terms; a candidate's
//! importance is the document's BM25-style weight for that term (how much
//! score mass the document draws from it), and the usual size-major,
//! importance-descending enumeration guarantees minimality. Removing every
//! query term is excluded — an empty query has no ranking to speak of.

use std::collections::HashSet;
use std::ops::ControlFlow;

use credence_index::DocId;
use credence_rank::{rank_corpus, RankedList, Ranker, SubsetScorer};

use crate::budget::{Budget, SearchStatus};
use crate::combos::{CandidateOrdering, ComboSearch, SearchBudget};
use crate::error::ExplainError;
use crate::evaluator::{drive_search, EvalOptions};

/// Configuration for the query-reduction explainer.
#[derive(Debug, Clone)]
pub struct QueryReductionConfig {
    /// Maximum number of explanations to return.
    pub n: usize,
    /// Search limits.
    pub budget: SearchBudget,
    /// Candidate ordering.
    pub ordering: CandidateOrdering,
    /// Candidate-evaluation engine knobs (threads, incremental scoring).
    pub eval: EvalOptions,
    /// Request-lifecycle bounds (deadline / eval cap / cancel flag).
    pub lifecycle: Budget,
}

impl Default for QueryReductionConfig {
    fn default() -> Self {
        Self {
            n: 1,
            budget: SearchBudget::default(),
            ordering: CandidateOrdering::ImportanceGuided,
            eval: EvalOptions::default(),
            lifecycle: Budget::unlimited(),
        }
    }
}

/// A query-reduction counterfactual.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReductionExplanation {
    /// The removed query terms (surface forms from the original query).
    pub removed_terms: Vec<String>,
    /// The reduced query.
    pub reduced_query: String,
    /// Summed importance of the removed terms.
    pub importance: f64,
    /// The document's rank under the original query.
    pub old_rank: usize,
    /// The document's rank under the reduced query (`None` when it is no
    /// longer retrieved at all — the strongest form of "beyond k").
    pub new_rank: Option<usize>,
    /// Cumulative candidates evaluated at acceptance.
    pub candidates_evaluated: usize,
}

/// Result of a query-reduction request.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReductionResult {
    /// Explanations found, in discovery order.
    pub explanations: Vec<QueryReductionExplanation>,
    /// The query's candidate terms with their importance, best first.
    pub candidates: Vec<(String, f64)>,
    /// Total candidates evaluated.
    pub candidates_evaluated: usize,
    /// Rank under the original query.
    pub old_rank: usize,
    /// How the search ended; anything but [`SearchStatus::Complete`] marks
    /// the result as the best-so-far prefix of a budget-limited run.
    pub status: SearchStatus,
}

/// Generate query-reduction counterfactuals for `doc` under `query` with
/// cutoff `k`.
pub fn explain_query_reduction(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    config: &QueryReductionConfig,
) -> Result<QueryReductionResult, ExplainError> {
    let ranking = rank_corpus(ranker, query);
    explain_query_reduction_ranked(ranker, query, k, doc, config, &ranking)
}

/// [`explain_query_reduction`] against a pre-computed base ranking for
/// `query` (for example the engine's ranking cache), avoiding the initial
/// full-corpus pass.
pub fn explain_query_reduction_ranked(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    config: &QueryReductionConfig,
    ranking: &RankedList,
) -> Result<QueryReductionResult, ExplainError> {
    if k == 0 {
        return Err(ExplainError::InvalidParameter("k must be at least 1"));
    }
    let index = ranker.index();
    if index.document(doc).is_none() {
        return Err(ExplainError::DocNotFound(doc));
    }
    if index.analyze_query(query).is_empty() {
        return Err(ExplainError::EmptyQuery);
    }
    let analyzer = index.analyzer();

    // Distinct query terms in surface form, keyed by analysed form.
    let mut surfaces: Vec<(String, String)> = Vec::new(); // (analysed, surface)
    let mut seen: HashSet<String> = HashSet::new();
    for tok in analyzer.analyze_tokens(query) {
        if seen.insert(tok.term.clone()) {
            surfaces.push((tok.term, tok.raw.to_lowercase()));
        }
    }
    if surfaces.is_empty() {
        return Err(ExplainError::EmptyQuery);
    }
    if surfaces.len() < 2 {
        return Err(ExplainError::InvalidParameter(
            "query reduction needs at least two distinct query terms",
        ));
    }

    let old_rank = ranking
        .rank_of(doc)
        .ok_or(ExplainError::DocNotRelevant { doc, rank: None })?;
    if old_rank > k {
        return Err(ExplainError::DocNotRelevant {
            doc,
            rank: Some(old_rank),
        });
    }

    // Importance: how much of the document's score each query term carries,
    // measured by scoring the document against the single-term query.
    let candidates: Vec<(String, f64)> = {
        let mut c: Vec<(String, f64)> = surfaces
            .iter()
            .map(|(_, surface)| (surface.clone(), ranker.score_doc(surface, doc)))
            .collect();
        c.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        c
    };

    // Map each candidate (importance order) back to its query-order surface
    // position so the incremental scorer can rank kept-term subsets.
    let query_surfaces: Vec<&str> = surfaces.iter().map(|(_, s)| s.as_str()).collect();
    let kept_positions = |combo_items: &[usize]| -> Vec<usize> {
        let removed: HashSet<&str> = combo_items
            .iter()
            .map(|&i| candidates[i].0.as_str())
            .collect();
        (0..query_surfaces.len())
            .filter(|&qi| !removed.contains(query_surfaces[qi]))
            .collect()
    };
    // The incremental ranker scores only documents in the kept terms'
    // posting lists; models without drop-zero semantics fall back to a full
    // corpus re-rank per candidate.
    let scorer = if config.eval.force_exact {
        None
    } else {
        SubsetScorer::new(ranker, &query_surfaces)
    };
    let rank_exact = |kept: &[usize]| -> Option<usize> {
        let reduced: Vec<&str> = kept.iter().map(|&qi| query_surfaces[qi]).collect();
        rank_corpus(ranker, &reduced.join(" ")).rank_of(doc)
    };

    let scores: Vec<f64> = candidates.iter().map(|c| c.1).collect();
    let mut budget = config.budget;
    // Never remove every term.
    budget.max_size = budget.max_size.min(candidates.len() - 1);
    let mut search = ComboSearch::new(&scores, budget, config.ordering);
    let mut explanations = Vec::new();
    let mut total_committed = 0usize;

    let mut status = SearchStatus::Complete;
    if config.n > 0 {
        status = drive_search(
            &mut search,
            &config.eval,
            &config.lifecycle,
            |combo| {
                let kept = kept_positions(&combo.items);
                match &scorer {
                    Some(s) => s.rank_with(&kept, doc),
                    None => rank_exact(&kept),
                }
            },
            |combo, new_rank, committed| {
                total_committed = committed;
                let valid = match new_rank {
                    None => true,
                    Some(r) => r > k,
                };
                if valid {
                    let mut removed_terms: Vec<String> = combo
                        .items
                        .iter()
                        .map(|&i| candidates[i].0.clone())
                        .collect();
                    removed_terms.sort();
                    let reduced_query = kept_positions(&combo.items)
                        .into_iter()
                        .map(|qi| query_surfaces[qi])
                        .collect::<Vec<_>>()
                        .join(" ");
                    explanations.push(QueryReductionExplanation {
                        removed_terms,
                        reduced_query,
                        importance: combo.score,
                        old_rank,
                        new_rank,
                        candidates_evaluated: committed,
                    });
                }
                if explanations.len() < config.n {
                    ControlFlow::Continue(())
                } else {
                    ControlFlow::Break(())
                }
            },
        );
    }

    Ok(QueryReductionResult {
        explanations,
        candidates,
        candidates_evaluated: total_committed,
        old_rank,
        status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_index::{Bm25Params, Document, InvertedIndex};
    use credence_rank::Bm25Ranker;
    use credence_text::Analyzer;

    /// Doc 0 depends on "covid"; many other docs own "outbreak".
    fn fixture() -> InvertedIndex {
        InvertedIndex::build(
            vec![
                Document::from_body("covid covid covid guidance for travellers this spring"),
                Document::from_body("outbreak outbreak outbreak at the harbor facility"),
                Document::from_body("outbreak drills outbreak continue weekly"),
                Document::from_body("outbreak notices posted outbreak everywhere"),
                Document::from_body("garden fair tickets on sale"),
            ],
            Analyzer::english(),
        )
    }

    #[test]
    fn removing_the_supporting_term_drops_the_document() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        // For "covid outbreak", doc 0 is relevant only through "covid".
        let k = 4;
        let result = explain_query_reduction(
            &r,
            "covid outbreak",
            k,
            DocId(0),
            &QueryReductionConfig::default(),
        )
        .unwrap();
        assert!(!result.explanations.is_empty());
        let e = &result.explanations[0];
        assert_eq!(e.removed_terms, vec!["covid".to_string()]);
        assert_eq!(e.reduced_query, "outbreak");
        assert_eq!(e.new_rank, None, "doc 0 has no outbreak terms");
    }

    #[test]
    fn candidates_ordered_by_document_support() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let result = explain_query_reduction(
            &r,
            "covid outbreak",
            4,
            DocId(0),
            &QueryReductionConfig::default(),
        )
        .unwrap();
        assert_eq!(result.candidates[0].0, "covid");
        assert!(result.candidates[0].1 > result.candidates[1].1);
    }

    #[test]
    fn never_removes_every_term() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let result = explain_query_reduction(
            &r,
            "covid outbreak",
            4,
            DocId(0),
            &QueryReductionConfig {
                n: 10,
                ..Default::default()
            },
        )
        .unwrap();
        for e in &result.explanations {
            assert!(e.removed_terms.len() < 2, "{e:?}");
            assert!(!e.reduced_query.is_empty());
        }
    }

    #[test]
    fn single_term_queries_rejected() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let err =
            explain_query_reduction(&r, "covid", 4, DocId(0), &QueryReductionConfig::default())
                .unwrap_err();
        assert!(matches!(err, ExplainError::InvalidParameter(_)));
    }

    #[test]
    fn validation_errors() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        assert!(explain_query_reduction(
            &r,
            "covid outbreak",
            0,
            DocId(0),
            &QueryReductionConfig::default()
        )
        .is_err());
        assert!(matches!(
            explain_query_reduction(
                &r,
                "covid outbreak",
                4,
                DocId(9),
                &QueryReductionConfig::default()
            ),
            Err(ExplainError::DocNotFound(_))
        ));
        assert!(matches!(
            explain_query_reduction(
                &r,
                "covid outbreak",
                4,
                DocId(4),
                &QueryReductionConfig::default()
            ),
            Err(ExplainError::DocNotRelevant { .. })
        ));
        assert!(matches!(
            explain_query_reduction(&r, "zzz qqq", 4, DocId(0), &Default::default()),
            Err(ExplainError::EmptyQuery)
        ));
    }

    #[test]
    fn explanations_revalidate() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let k = 4;
        let result = explain_query_reduction(
            &r,
            "covid outbreak",
            k,
            DocId(0),
            &QueryReductionConfig {
                n: 3,
                ..Default::default()
            },
        )
        .unwrap();
        for e in &result.explanations {
            let ranking = rank_corpus(&r, &e.reduced_query);
            assert_eq!(ranking.rank_of(DocId(0)), e.new_rank);
        }
    }
}
