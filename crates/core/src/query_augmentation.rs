//! Counterfactual *query* explanations by term augmentation (§II-D).
//!
//! > "A valid explanation identifies a minimal set of terms that, when
//! > appended to the query, raises the rank of a selected document beyond
//! > some threshold."
//!
//! The algorithm, as specified:
//!
//! 1. Build candidate terms from the instance document, excluding terms
//!    already in the query (and stopwords, which the analyzer drops).
//! 2. Score each candidate with TF-IDF — frequency in the instance document,
//!    exclusivity among the ranked set `D^M` (the displayed top-k).
//! 3. Enumerate candidate-term combinations first by perturbation size
//!    (ascending), then by summed TF-IDF (descending).
//! 4. A candidate is a valid explanation when the document's rank under the
//!    augmented query reaches the threshold (`new_rank <= threshold`).
//! 5. Stop after `n` explanations or budget exhaustion.

use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;

use credence_index::score::tf_idf;
use credence_index::DocId;
use credence_rank::{rank_corpus, AugmentedScorer, RankedList, Ranker};

use crate::budget::{Budget, SearchStatus};
use crate::combos::{CandidateOrdering, ComboSearch, SearchBudget};
use crate::error::ExplainError;
use crate::evaluator::{drive_search, EvalOptions};
use crate::explanation::QueryAugmentationExplanation;

/// Configuration for the query-augmentation explainer.
#[derive(Debug, Clone)]
pub struct QueryAugmentationConfig {
    /// Maximum number of explanations to return.
    pub n: usize,
    /// Rank the document must reach for an augmentation to count
    /// (`new_rank <= threshold`; Fig. 3 uses 2).
    pub threshold: usize,
    /// Search limits.
    pub budget: SearchBudget,
    /// Candidate ordering (ablation knob; the paper uses TF-IDF-guided).
    pub ordering: CandidateOrdering,
    /// Candidate-evaluation engine knobs (threads, incremental scoring).
    pub eval: EvalOptions,
    /// Request-lifecycle bounds (deadline / eval cap / cancel flag).
    pub lifecycle: Budget,
}

impl Default for QueryAugmentationConfig {
    fn default() -> Self {
        Self {
            n: 1,
            threshold: 1,
            budget: SearchBudget::default(),
            ordering: CandidateOrdering::ImportanceGuided,
            eval: EvalOptions::default(),
            lifecycle: Budget::unlimited(),
        }
    }
}

/// One scored candidate term.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateTerm {
    /// The term in its document surface form (for display and appending).
    pub surface: String,
    /// The analysed (stemmed) form used for statistics.
    pub analyzed: String,
    /// Term frequency in the instance document.
    pub tf: u32,
    /// Number of top-k documents containing the term.
    pub set_df: u32,
    /// The TF-IDF score within the ranked set.
    pub tfidf: f64,
}

/// Result of a query-augmentation explanation request.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAugmentationResult {
    /// The explanations found, in discovery order.
    pub explanations: Vec<QueryAugmentationExplanation>,
    /// The scored candidate terms, sorted by TF-IDF descending.
    pub candidates: Vec<CandidateTerm>,
    /// Total augmented queries evaluated.
    pub candidates_evaluated: usize,
    /// The document's rank under the original query.
    pub old_rank: usize,
    /// How the search ended; anything but [`SearchStatus::Complete`] marks
    /// the result as the best-so-far prefix of a budget-limited run.
    pub status: SearchStatus,
}

/// Collect candidate terms from the instance document: analysed terms absent
/// from the analysed query, with their most frequent surface form.
fn collect_candidates(
    ranker: &dyn Ranker,
    query: &str,
    doc: DocId,
    top_k: &[DocId],
) -> Vec<CandidateTerm> {
    let index = ranker.index();
    let analyzer = index.analyzer();
    let body = &index.document(doc).expect("caller validated doc").body;

    let query_terms: HashSet<String> = analyzer.analyze(query).into_iter().collect();

    // Count analysed terms and track surface forms (most frequent wins;
    // ties broken by first appearance for determinism).
    let mut tf: HashMap<String, u32> = HashMap::new();
    let mut surfaces: HashMap<String, HashMap<String, (u32, usize)>> = HashMap::new();
    for (pos, tok) in analyzer.analyze_tokens(body).into_iter().enumerate() {
        if query_terms.contains(&tok.term) {
            continue;
        }
        *tf.entry(tok.term.clone()).or_insert(0) += 1;
        let surface = tok.raw.to_lowercase();
        let entry = surfaces
            .entry(tok.term)
            .or_default()
            .entry(surface)
            .or_insert((0, pos));
        entry.0 += 1;
    }

    // Set-level document frequency over the displayed ranking.
    let vocab = index.vocabulary();
    let mut candidates: Vec<CandidateTerm> = tf
        .into_iter()
        .map(|(analyzed, tf)| {
            let set_df = vocab.id(&analyzed).map_or(0, |tid| {
                top_k
                    .iter()
                    .filter(|&&d| index.term_freq(d, tid) > 0)
                    .count() as u32
            });
            let tfidf = tf_idf(tf, set_df, top_k.len());
            let surface = surfaces[&analyzed]
                .iter()
                .max_by(|a, b| (a.1 .0).cmp(&b.1 .0).then_with(|| b.1 .1.cmp(&a.1 .1)))
                .map(|(s, _)| s.clone())
                .unwrap_or_else(|| analyzed.clone());
            CandidateTerm {
                surface,
                analyzed,
                tf,
                set_df,
                tfidf,
            }
        })
        .collect();
    candidates.sort_by(|a, b| {
        b.tfidf
            .partial_cmp(&a.tfidf)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.analyzed.cmp(&b.analyzed))
    });
    candidates
}

/// Generate counterfactual query explanations for `doc` under `query` with
/// cutoff `k`.
///
/// Unlike sentence removal, the instance document need only be *ranked* (its
/// rank may exceed the threshold by any amount); raising an already-top-1
/// document is rejected as `InvalidParameter`.
pub fn explain_query_augmentation(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    config: &QueryAugmentationConfig,
) -> Result<QueryAugmentationResult, ExplainError> {
    let ranking = rank_corpus(ranker, query);
    explain_query_augmentation_ranked(ranker, query, k, doc, config, &ranking)
}

/// [`explain_query_augmentation`] against a pre-computed base ranking for
/// `query` (for example the engine's ranking cache), avoiding the initial
/// full-corpus pass.
pub fn explain_query_augmentation_ranked(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    config: &QueryAugmentationConfig,
    ranking: &RankedList,
) -> Result<QueryAugmentationResult, ExplainError> {
    if k == 0 {
        return Err(ExplainError::InvalidParameter("k must be at least 1"));
    }
    if config.threshold == 0 {
        return Err(ExplainError::InvalidParameter(
            "threshold must be at least 1",
        ));
    }
    let index = ranker.index();
    if index.document(doc).is_none() {
        return Err(ExplainError::DocNotFound(doc));
    }
    if index.analyze_query(query).is_empty() {
        return Err(ExplainError::EmptyQuery);
    }

    let old_rank = ranking
        .rank_of(doc)
        .ok_or(ExplainError::DocNotRelevant { doc, rank: None })?;
    if old_rank <= config.threshold {
        return Err(ExplainError::InvalidParameter(
            "document already ranks at or above the threshold",
        ));
    }

    let top_k = ranking.top_k(k);
    let candidates = collect_candidates(ranker, query, doc, &top_k);
    if candidates.is_empty() {
        return Err(ExplainError::NoCandidateTerms(doc));
    }

    let surfaces: Vec<&str> = candidates.iter().map(|c| c.surface.as_str()).collect();
    // The incremental ranker only re-scores documents in the appended terms'
    // posting lists; when a precondition fails (non-decomposable model, a
    // surface that re-analyses oddly) every candidate re-ranks the corpus.
    let scorer = if config.eval.force_exact {
        None
    } else {
        AugmentedScorer::new(ranker, ranking, &surfaces)
    };
    let rank_exact = |combo_items: &[usize]| -> Option<usize> {
        let appended: Vec<&str> = combo_items.iter().map(|&i| surfaces[i]).collect();
        let augmented_query = format!("{} {}", query, appended.join(" "));
        rank_corpus(ranker, &augmented_query).rank_of(doc)
    };

    let scores: Vec<f64> = candidates.iter().map(|c| c.tfidf).collect();
    let mut search = ComboSearch::new(&scores, config.budget, config.ordering);
    let mut explanations = Vec::new();
    let mut total_committed = 0usize;

    let mut status = SearchStatus::Complete;
    if config.n > 0 {
        status = drive_search(
            &mut search,
            &config.eval,
            &config.lifecycle,
            |combo| match &scorer {
                Some(s) => s.rank_with(&combo.items, doc),
                None => rank_exact(&combo.items),
            },
            |combo, new_rank, committed| {
                total_committed = committed;
                let Some(new_rank) = new_rank else {
                    return ControlFlow::Continue(());
                };
                if new_rank <= config.threshold {
                    let terms: Vec<String> = combo
                        .items
                        .iter()
                        .map(|&i| candidates[i].surface.clone())
                        .collect();
                    let augmented_query = format!("{} {}", query, terms.join(" "));
                    explanations.push(QueryAugmentationExplanation {
                        terms,
                        augmented_query,
                        tfidf: combo.score,
                        old_rank,
                        new_rank,
                        candidates_evaluated: committed,
                    });
                }
                if explanations.len() < config.n {
                    ControlFlow::Continue(())
                } else {
                    ControlFlow::Break(())
                }
            },
        );
    }

    Ok(QueryAugmentationResult {
        explanations,
        candidates,
        candidates_evaluated: total_committed,
        old_rank,
        status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_index::{Bm25Params, Document, InvertedIndex};
    use credence_rank::Bm25Ranker;
    use credence_text::Analyzer;

    /// Doc 2 ranks below docs 0/1 for "covid outbreak" but contains the
    /// exclusive high-signal terms "microchip" and "5g".
    fn fixture() -> InvertedIndex {
        InvertedIndex::build(
            vec![
                Document::from_body(
                    "covid outbreak coverage continues. The covid outbreak dominates headlines \
                     again today across the region.",
                ),
                Document::from_body(
                    "covid outbreak numbers climb. Hospitals monitor the covid outbreak \
                     carefully through the weekend period.",
                ),
                Document::from_body(
                    "The covid outbreak is a hoax spread by elites. A secret 5g microchip \
                     hides in every vaccine dose. The microchip tracks your location.",
                ),
                Document::from_body("Garden fair tickets are on sale at the gate."),
                Document::from_body("The 5g rollout reached the northern suburbs quickly."),
            ],
            Analyzer::english(),
        )
    }

    fn ranker(idx: &InvertedIndex) -> Bm25Ranker<'_> {
        Bm25Ranker::new(idx, Bm25Params::default())
    }

    #[test]
    fn instance_ranks_third_initially() {
        let idx = fixture();
        let r = ranker(&idx);
        let ranking = rank_corpus(&r, "covid outbreak");
        assert_eq!(ranking.rank_of(DocId(2)), Some(3));
    }

    #[test]
    fn finds_single_term_augmentation() {
        let idx = fixture();
        let r = ranker(&idx);
        let result = explain_query_augmentation(
            &r,
            "covid outbreak",
            3,
            DocId(2),
            &QueryAugmentationConfig {
                n: 1,
                threshold: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.old_rank, 3);
        assert_eq!(result.explanations.len(), 1);
        let e = &result.explanations[0];
        assert_eq!(e.terms.len(), 1, "a single exclusive term suffices");
        assert_eq!(e.new_rank, 1);
        assert!(e.augmented_query.starts_with("covid outbreak "));
    }

    #[test]
    fn top_candidate_is_the_exclusive_frequent_term() {
        let idx = fixture();
        let r = ranker(&idx);
        let result = explain_query_augmentation(
            &r,
            "covid outbreak",
            3,
            DocId(2),
            &QueryAugmentationConfig::default(),
        )
        .unwrap();
        // "microchip" has tf 2 and set-df 1 → highest TF-IDF.
        assert_eq!(result.candidates[0].analyzed, "microchip");
        assert_eq!(result.candidates[0].tf, 2);
        assert_eq!(result.candidates[0].set_df, 1);
    }

    #[test]
    fn candidates_exclude_query_terms() {
        let idx = fixture();
        let r = ranker(&idx);
        let result = explain_query_augmentation(
            &r,
            "covid outbreak",
            3,
            DocId(2),
            &QueryAugmentationConfig::default(),
        )
        .unwrap();
        for c in &result.candidates {
            assert_ne!(c.analyzed, "covid");
            assert_ne!(c.analyzed, "outbreak");
        }
    }

    #[test]
    fn multiple_explanations_are_all_valid() {
        let idx = fixture();
        let r = ranker(&idx);
        let result = explain_query_augmentation(
            &r,
            "covid outbreak",
            3,
            DocId(2),
            &QueryAugmentationConfig {
                n: 5,
                threshold: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!result.explanations.is_empty());
        for e in &result.explanations {
            assert!(e.new_rank <= 2, "{e:?}");
            // Independent re-check.
            let ranking = rank_corpus(&r, &e.augmented_query);
            assert_eq!(ranking.rank_of(DocId(2)), Some(e.new_rank));
        }
        // Minimality ordering: sizes never decrease.
        let sizes: Vec<usize> = result.explanations.iter().map(|e| e.terms.len()).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "{sizes:?}");
    }

    #[test]
    fn already_top_ranked_doc_rejected() {
        let idx = fixture();
        let r = ranker(&idx);
        let err = explain_query_augmentation(
            &r,
            "covid outbreak",
            3,
            DocId(0),
            &QueryAugmentationConfig {
                threshold: 1,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, ExplainError::InvalidParameter(_)));
    }

    #[test]
    fn unranked_doc_rejected() {
        let idx = fixture();
        let r = ranker(&idx);
        let err = explain_query_augmentation(
            &r,
            "covid outbreak",
            3,
            DocId(3),
            &QueryAugmentationConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ExplainError::DocNotRelevant { .. }));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let idx = fixture();
        let r = ranker(&idx);
        assert!(explain_query_augmentation(
            &r,
            "covid outbreak",
            0,
            DocId(2),
            &QueryAugmentationConfig::default()
        )
        .is_err());
        assert!(explain_query_augmentation(
            &r,
            "covid outbreak",
            3,
            DocId(2),
            &QueryAugmentationConfig {
                threshold: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(matches!(
            explain_query_augmentation(
                &r,
                "covid outbreak",
                3,
                DocId(99),
                &QueryAugmentationConfig::default()
            ),
            Err(ExplainError::DocNotFound(_))
        ));
    }

    #[test]
    fn surface_forms_are_appended_not_stems() {
        // "tracks" stems to "track"; the augmented query must carry a
        // surface form from the document, which re-analyses to the same stem.
        let idx = fixture();
        let r = ranker(&idx);
        let result = explain_query_augmentation(
            &r,
            "covid outbreak",
            3,
            DocId(2),
            &QueryAugmentationConfig {
                n: 8,
                threshold: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let analyzer = idx.analyzer();
        for c in &result.candidates {
            let reanalyzed = analyzer.analyze(&c.surface);
            assert_eq!(
                reanalyzed,
                vec![c.analyzed.clone()],
                "surface {} must re-analyse to {}",
                c.surface,
                c.analyzed
            );
        }
    }
}
