//! Minimality-ordered combination search.
//!
//! Both counterfactual generators iterate candidate perturbations "first by
//! perturbation size in increasing order, then by importance score in
//! decreasing order" (§II-C/§II-D). Because every size-`j` combination is
//! evaluated before any size-`j+1` combination, the first valid
//! counterfactual found is guaranteed *minimal* — the property the paper
//! emphasises.
//!
//! [`ComboSearch`] materialises each size level lazily: level `j` is only
//! generated when the search exhausts level `j-1`, and within a level the
//! combinations are sorted by summed candidate score (descending, ties
//! broken lexicographically on candidate indices for determinism).
//!
//! A [`SearchBudget`] bounds the exploration. When `max_candidates` truncates
//! the candidate pool, the pool keeps the top-scoring candidates — matching
//! the paper's "aims to evaluate terms in order of their importance" — and
//! minimality remains guaranteed *within the explored pool*.

use std::cmp::Ordering;

/// Limits on the combination search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Largest perturbation size to explore.
    pub max_size: usize,
    /// Keep only the top-scoring this-many candidates.
    pub max_candidates: usize,
    /// Stop after this many candidate evaluations.
    pub max_evaluations: usize,
}

impl Default for SearchBudget {
    fn default() -> Self {
        Self {
            max_size: 4,
            max_candidates: 24,
            max_evaluations: 20_000,
        }
    }
}

/// How candidates are ordered within a size level — the knob the ablation
/// experiment (T-ABLATE) turns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateOrdering {
    /// The paper's ordering: summed importance score, descending.
    ImportanceGuided,
    /// Importance ascending — the adversarial ordering.
    Reverse,
    /// Deterministic pseudo-random ordering from a seed.
    Shuffled(u64),
}

/// One enumerated combination: indices into the original candidate slice.
#[derive(Debug, Clone, PartialEq)]
pub struct Combo {
    /// Candidate indices (into the caller's candidate slice), ascending.
    pub items: Vec<usize>,
    /// Summed score of the members.
    pub score: f64,
}

/// The minimality-ordered enumerator.
#[derive(Debug)]
pub struct ComboSearch {
    /// (original_index, score) of the retained candidates, sorted by score
    /// descending.
    pool: Vec<(usize, f64)>,
    budget: SearchBudget,
    ordering: CandidateOrdering,
    current_size: usize,
    level: Vec<Combo>,
    level_pos: usize,
    emitted: usize,
}

impl ComboSearch {
    /// Create a search over `scores` (one score per candidate; the candidate
    /// is identified by its index in this slice).
    pub fn new(scores: &[f64], budget: SearchBudget, ordering: CandidateOrdering) -> Self {
        let mut pool: Vec<(usize, f64)> = scores.iter().copied().enumerate().collect();
        pool.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        pool.truncate(budget.max_candidates);
        Self {
            pool,
            budget,
            ordering,
            current_size: 0,
            level: Vec::new(),
            level_pos: 0,
            emitted: 0,
        }
    }

    /// Number of combinations handed out so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// The retained candidate pool (after `max_candidates` truncation),
    /// best first.
    pub fn pool(&self) -> &[(usize, f64)] {
        &self.pool
    }

    fn build_level(&mut self, size: usize) {
        self.level.clear();
        self.level_pos = 0;
        let n = self.pool.len();
        if size == 0 || size > n {
            return;
        }
        // Enumerate index combinations over the pool.
        let mut idx: Vec<usize> = (0..size).collect();
        loop {
            let mut items: Vec<usize> = idx.iter().map(|&i| self.pool[i].0).collect();
            items.sort_unstable();
            let score: f64 = idx.iter().map(|&i| self.pool[i].1).sum();
            self.level.push(Combo { items, score });
            // Advance the combination odometer.
            let mut i = size;
            loop {
                if i == 0 {
                    return self.finish_level();
                }
                i -= 1;
                if idx[i] != i + n - size {
                    idx[i] += 1;
                    for j in i + 1..size {
                        idx[j] = idx[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    fn finish_level(&mut self) {
        match self.ordering {
            CandidateOrdering::ImportanceGuided => {
                self.level.sort_by(|a, b| {
                    b.score
                        .partial_cmp(&a.score)
                        .unwrap_or(Ordering::Equal)
                        .then_with(|| a.items.cmp(&b.items))
                });
            }
            CandidateOrdering::Reverse => {
                self.level.sort_by(|a, b| {
                    a.score
                        .partial_cmp(&b.score)
                        .unwrap_or(Ordering::Equal)
                        .then_with(|| a.items.cmp(&b.items))
                });
            }
            CandidateOrdering::Shuffled(seed) => {
                // Deterministic Fisher-Yates driven by a splitmix64 stream.
                let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut next = move || {
                    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    z ^ (z >> 31)
                };
                // Sort lexicographically first so shuffling is independent of
                // generation order.
                self.level.sort_by(|a, b| a.items.cmp(&b.items));
                for i in (1..self.level.len()).rev() {
                    let j = (next() % (i as u64 + 1)) as usize;
                    self.level.swap(i, j);
                }
            }
        }
    }

    /// Items of the combination expressed in the caller's candidate indices.
    fn take_next(&mut self) -> Option<Combo> {
        loop {
            if self.emitted >= self.budget.max_evaluations {
                return None;
            }
            if self.level_pos < self.level.len() {
                let combo = self.level[self.level_pos].clone();
                self.level_pos += 1;
                self.emitted += 1;
                return Some(combo);
            }
            // Advance to the next size level.
            if self.current_size >= self.budget.max_size.min(self.pool.len()) {
                return None;
            }
            self.current_size += 1;
            let size = self.current_size;
            self.build_level(size);
        }
    }
}

impl Iterator for ComboSearch {
    type Item = Combo;

    fn next(&mut self) -> Option<Combo> {
        self.take_next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn search(scores: &[f64]) -> ComboSearch {
        ComboSearch::new(
            scores,
            SearchBudget::default(),
            CandidateOrdering::ImportanceGuided,
        )
    }

    #[test]
    fn sizes_are_non_decreasing() {
        let combos: Vec<Combo> = search(&[3.0, 1.0, 2.0]).collect();
        let sizes: Vec<usize> = combos.iter().map(|c| c.items.len()).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "{sizes:?}");
        // 3 singles + 3 pairs + 1 triple.
        assert_eq!(combos.len(), 7);
    }

    #[test]
    fn within_size_scores_descend() {
        let combos: Vec<Combo> = search(&[3.0, 1.0, 2.0]).collect();
        for size in 1..=3 {
            let level: Vec<&Combo> = combos.iter().filter(|c| c.items.len() == size).collect();
            assert!(level.windows(2).all(|w| w[0].score >= w[1].score));
        }
    }

    #[test]
    fn singles_come_in_score_order() {
        let combos: Vec<Combo> = search(&[3.0, 1.0, 2.0]).take(3).collect();
        let firsts: Vec<usize> = combos.iter().map(|c| c.items[0]).collect();
        assert_eq!(firsts, vec![0, 2, 1]);
    }

    #[test]
    fn best_pair_is_top_two_candidates() {
        let mut s = search(&[3.0, 1.0, 2.0]);
        let first_pair = s.find(|c| c.items.len() == 2).unwrap();
        assert_eq!(first_pair.items, vec![0, 2]);
        assert!((first_pair.score - 5.0).abs() < 1e-12);
    }

    #[test]
    fn all_size_j_before_any_size_j_plus_1() {
        // The minimality guarantee, stated directly.
        let combos: Vec<Combo> = ComboSearch::new(
            &[5.0, 4.0, 3.0, 2.0, 1.0],
            SearchBudget {
                max_size: 3,
                ..SearchBudget::default()
            },
            CandidateOrdering::ImportanceGuided,
        )
        .collect();
        let mut seen_larger = false;
        let mut last_size = 0;
        for c in &combos {
            if c.items.len() > last_size {
                last_size = c.items.len();
                seen_larger = true;
            } else {
                assert_eq!(c.items.len(), last_size);
            }
        }
        assert!(seen_larger);
        // Exhaustiveness per level: C(5,1)+C(5,2)+C(5,3) = 5+10+10.
        assert_eq!(combos.len(), 25);
    }

    #[test]
    fn max_candidates_keeps_best() {
        let s = ComboSearch::new(
            &[1.0, 9.0, 5.0, 7.0],
            SearchBudget {
                max_candidates: 2,
                ..SearchBudget::default()
            },
            CandidateOrdering::ImportanceGuided,
        );
        let pool: Vec<usize> = s.pool().iter().map(|&(i, _)| i).collect();
        assert_eq!(pool, vec![1, 3]);
    }

    #[test]
    fn max_evaluations_caps_emission() {
        let combos: Vec<Combo> = ComboSearch::new(
            &[1.0; 10],
            SearchBudget {
                max_evaluations: 7,
                ..SearchBudget::default()
            },
            CandidateOrdering::ImportanceGuided,
        )
        .collect();
        assert_eq!(combos.len(), 7);
    }

    #[test]
    fn max_size_respected() {
        let combos: Vec<Combo> = ComboSearch::new(
            &[1.0, 2.0, 3.0],
            SearchBudget {
                max_size: 1,
                ..SearchBudget::default()
            },
            CandidateOrdering::ImportanceGuided,
        )
        .collect();
        assert_eq!(combos.len(), 3);
        assert!(combos.iter().all(|c| c.items.len() == 1));
    }

    #[test]
    fn empty_candidates() {
        let combos: Vec<Combo> = search(&[]).collect();
        assert!(combos.is_empty());
    }

    #[test]
    fn reverse_ordering_flips_levels() {
        let combos: Vec<Combo> = ComboSearch::new(
            &[3.0, 1.0, 2.0],
            SearchBudget::default(),
            CandidateOrdering::Reverse,
        )
        .take(3)
        .collect();
        let firsts: Vec<usize> = combos.iter().map(|c| c.items[0]).collect();
        assert_eq!(firsts, vec![1, 2, 0]);
    }

    #[test]
    fn shuffled_is_deterministic_and_size_major() {
        let a: Vec<Combo> = ComboSearch::new(
            &[3.0, 1.0, 2.0, 5.0],
            SearchBudget::default(),
            CandidateOrdering::Shuffled(7),
        )
        .collect();
        let b: Vec<Combo> = ComboSearch::new(
            &[3.0, 1.0, 2.0, 5.0],
            SearchBudget::default(),
            CandidateOrdering::Shuffled(7),
        )
        .collect();
        assert_eq!(a, b);
        let sizes: Vec<usize> = a.iter().map(|c| c.items.len()).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
        // Same seed, different orderings still cover the same set.
        let c: Vec<Combo> = ComboSearch::new(
            &[3.0, 1.0, 2.0, 5.0],
            SearchBudget::default(),
            CandidateOrdering::Shuffled(8),
        )
        .collect();
        assert_eq!(a.len(), c.len());
    }

    #[test]
    fn items_are_original_indices_even_after_truncation() {
        let combos: Vec<Combo> = ComboSearch::new(
            &[0.0, 10.0, 0.0, 9.0],
            SearchBudget {
                max_candidates: 2,
                ..SearchBudget::default()
            },
            CandidateOrdering::ImportanceGuided,
        )
        .collect();
        assert_eq!(combos[0].items, vec![1]);
        assert_eq!(combos[1].items, vec![3]);
        assert_eq!(combos[2].items, vec![1, 3]);
    }

    #[test]
    fn combo_items_sorted_ascending() {
        for combo in search(&[1.0, 5.0, 3.0, 4.0, 2.0]) {
            let mut sorted = combo.items.clone();
            sorted.sort_unstable();
            assert_eq!(combo.items, sorted);
        }
    }
}
