//! Term-level counterfactual documents — the granularity ablation.
//!
//! §II-C motivates *sentence* removal by grammar preservation: "to generate
//! counterfactual explanations in terms of a selected document without
//! corrupting its grammar, we consider removing sentences". This module
//! implements the alternative the paper implicitly argues against — removing
//! individual *terms* — so the trade-off can be measured (T-GRAIN in
//! EXPERIMENTS.md): term removal finds smaller, more surgical perturbations,
//! at the cost of ungrammatical counterfactuals and a larger search space.
//!
//! The algorithm is the same minimality-ordered search: candidate terms are
//! the document's distinct terms scored by the number of occurrences that
//! match the query (mirroring the sentence-importance heuristic); removing a
//! term removes *all* of its occurrences.

use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;

use credence_index::{DocId, InvertedIndex};
use credence_rank::{rank_corpus, rerank_pool, PoolScorer, RankedList, Ranker, TermRemovalScorer};
use credence_text::tokenize;

use crate::budget::{Budget, SearchStatus};
use crate::combos::{CandidateOrdering, ComboSearch, SearchBudget};
use crate::error::ExplainError;
use crate::evaluator::{drive_search, EvalOptions};

/// Configuration for the term-removal explainer.
#[derive(Debug, Clone)]
pub struct TermRemovalConfig {
    /// Maximum number of explanations to return.
    pub n: usize,
    /// Search limits.
    pub budget: SearchBudget,
    /// Candidate ordering.
    pub ordering: CandidateOrdering,
    /// Candidate-evaluation engine knobs (threads, incremental scoring).
    pub eval: EvalOptions,
    /// Request-lifecycle bounds (deadline / eval cap / cancel flag).
    pub lifecycle: Budget,
}

impl Default for TermRemovalConfig {
    fn default() -> Self {
        Self {
            n: 1,
            budget: SearchBudget::default(),
            ordering: CandidateOrdering::ImportanceGuided,
            eval: EvalOptions::default(),
            lifecycle: Budget::unlimited(),
        }
    }
}

/// A term-removal counterfactual explanation.
#[derive(Debug, Clone, PartialEq)]
pub struct TermRemovalExplanation {
    /// The removed terms (surface forms as they appear in the document).
    pub removed_terms: Vec<String>,
    /// The perturbed body (all occurrences of the removed terms deleted).
    pub perturbed_body: String,
    /// Summed importance of the removed terms.
    pub importance: f64,
    /// Rank before perturbation.
    pub old_rank: usize,
    /// Rank after perturbation within the top-(k+1) pool.
    pub new_rank: usize,
    /// Cumulative candidates evaluated at acceptance.
    pub candidates_evaluated: usize,
}

/// Result of a term-removal request.
#[derive(Debug, Clone, PartialEq)]
pub struct TermRemovalResult {
    /// Explanations found, in discovery order.
    pub explanations: Vec<TermRemovalExplanation>,
    /// The candidate terms with their importance scores, best first.
    pub candidates: Vec<(String, f64)>,
    /// Total candidates evaluated.
    pub candidates_evaluated: usize,
    /// Original rank of the document.
    pub old_rank: usize,
    /// How the search ended; anything but [`SearchStatus::Complete`] marks
    /// the result as the best-so-far prefix of a budget-limited run.
    pub status: SearchStatus,
}

/// Remove every occurrence of the given surface terms (matched on the
/// normalised token) from `body`, collapsing leftover whitespace. Shared
/// with the LIME surrogate's exact scoring fallback.
pub(crate) fn remove_terms(body: &str, terms: &HashSet<String>) -> String {
    let mut out = String::with_capacity(body.len());
    let mut cursor = 0usize;
    for tok in tokenize(body) {
        out.push_str(&body[cursor..tok.start]);
        cursor = tok.end;
        if !terms.contains(&tok.term) {
            out.push_str(&tok.raw);
        }
    }
    out.push_str(&body[cursor..]);
    // Collapse double spaces produced by removals.
    let mut collapsed = String::with_capacity(out.len());
    let mut prev_space = false;
    for c in out.chars() {
        if c == ' ' {
            if !prev_space {
                collapsed.push(c);
            }
            prev_space = true;
        } else {
            prev_space = false;
            collapsed.push(c);
        }
    }
    collapsed.trim().to_string()
}

/// Candidate terms for the document-perturbation explainers: the document's
/// distinct surface (normalised) terms, scored by how many of their
/// occurrences are query terms (after full analysis) — the term-level
/// analogue of sentence importance — sorted best first with alphabetical
/// ties. Terms with zero query affinity are still candidates (the search
/// may need them), but sort last.
///
/// Term removal and the LIME surrogate (`crate::lime`) both derive their
/// candidate lists through this one function, in this exact order, because
/// [`ReplayMemo`](crate::evaluator::ReplayMemo) keys term-removal profiles
/// by `(query, doc)` alone: a profile deposited by either explainer must
/// replay bit-identically for the other, which requires an identical
/// surface list.
pub(crate) fn document_term_candidates(
    index: &InvertedIndex,
    query: &str,
    body: &str,
) -> Vec<(String, f64)> {
    let analyzer = index.analyzer();
    let query_terms: HashSet<String> = analyzer.analyze(query).into_iter().collect();
    let tokens = tokenize(body);
    let mut occurrences: HashMap<&str, f64> = HashMap::new();
    let mut order: Vec<&str> = Vec::new();
    for tok in &tokens {
        let count = occurrences.entry(tok.term.as_str()).or_insert_with(|| {
            order.push(tok.term.as_str());
            0.0
        });
        *count += 1.0;
    }
    let mut candidates: Vec<(String, f64)> = order
        .into_iter()
        .map(|term| {
            let analyzed = analyzer.analyze(term);
            let matches_query = analyzed
                .first()
                .is_some_and(|t| query_terms.contains(t.as_str()));
            let score = if matches_query {
                occurrences[term]
            } else {
                0.0
            };
            (term.to_string(), score)
        })
        .collect();
    candidates.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    candidates
}

/// Generate term-removal counterfactuals for `doc` under `query`.
pub fn explain_term_removal(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    config: &TermRemovalConfig,
) -> Result<TermRemovalResult, ExplainError> {
    let ranking = rank_corpus(ranker, query);
    explain_term_removal_ranked(ranker, query, k, doc, config, &ranking)
}

/// [`explain_term_removal`] against a pre-computed base ranking for `query`
/// (for example the engine's ranking cache), avoiding the initial
/// full-corpus pass.
pub fn explain_term_removal_ranked(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    config: &TermRemovalConfig,
    ranking: &RankedList,
) -> Result<TermRemovalResult, ExplainError> {
    explain_term_removal_memo(ranker, query, k, doc, config, ranking, None)
}

/// [`explain_term_removal_ranked`] with an optional posting-replay memo.
/// When `memo` is `Some`, the per-(query, doc) removal profiles and the
/// top-(k+1) pool scorer are fetched from (or deposited into) the memo
/// instead of rebuilt; shared state is read-only during scoring, so the
/// result is bit-identical either way.
pub fn explain_term_removal_memo(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    config: &TermRemovalConfig,
    ranking: &RankedList,
    memo: Option<&crate::evaluator::ReplayMemo>,
) -> Result<TermRemovalResult, ExplainError> {
    if k == 0 {
        return Err(ExplainError::InvalidParameter("k must be at least 1"));
    }
    let index = ranker.index();
    let document = index
        .document(doc)
        .ok_or(ExplainError::DocNotFound(doc))?
        .clone();
    if index.analyze_query(query).is_empty() {
        return Err(ExplainError::EmptyQuery);
    }
    let old_rank = ranking
        .rank_of(doc)
        .ok_or(ExplainError::DocNotRelevant { doc, rank: None })?;
    if old_rank > k {
        return Err(ExplainError::DocNotRelevant {
            doc,
            rank: Some(old_rank),
        });
    }
    let pool = ranking.top_k(k + 1);

    let candidates = document_term_candidates(index, query, &document.body);
    if candidates.is_empty() {
        return Err(ExplainError::NoCandidateTerms(doc));
    }

    // Fast path: score each candidate set from pre-analysed tf/length
    // deltas (no string surgery, no re-analysis), then rank it against the
    // precomputed pool scores. The perturbed body is only materialised for
    // accepted explanations. Falls back to exact text scoring when the
    // model is not term-decomposable or `force_exact` is set.
    let pool_scorer = if config.eval.force_exact {
        None
    } else {
        Some(match memo {
            Some(m) => m.pool_scorer(query, k, doc, || PoolScorer::new(ranker, query, &pool, doc)),
            None => std::sync::Arc::new(PoolScorer::new(ranker, query, &pool, doc)),
        })
    };
    let surfaces: Vec<&str> = candidates.iter().map(|c| c.0.as_str()).collect();
    let removal_scorer = if config.eval.force_exact {
        None
    } else {
        match memo {
            Some(m) => m
                .removal_profile(query, doc, || {
                    credence_rank::TermRemovalProfile::new(ranker, query, &document.body, &surfaces)
                })
                .map(|p| TermRemovalScorer::from_profile(ranker, p)),
            None => TermRemovalScorer::new(ranker, query, &document.body, &surfaces),
        }
    };

    let scores: Vec<f64> = candidates.iter().map(|c| c.1).collect();
    let mut search = ComboSearch::new(&scores, config.budget, config.ordering);
    let mut explanations = Vec::new();
    let mut total_committed = 0usize;

    let mut status = SearchStatus::Complete;
    if config.n > 0 {
        status = drive_search(
            &mut search,
            &config.eval,
            &config.lifecycle,
            |combo| {
                if let (Some(inc), Some(pool_scorer)) = (&removal_scorer, &pool_scorer) {
                    return (pool_scorer.rank_for(inc.score_without(&combo.items)), None);
                }
                let terms: HashSet<String> = combo
                    .items
                    .iter()
                    .map(|&i| candidates[i].0.clone())
                    .collect();
                let perturbed = remove_terms(&document.body, &terms);
                let new_rank = match &pool_scorer {
                    Some(scorer) => scorer.rank_for(ranker.score_text(query, &perturbed)),
                    None => {
                        let rows = rerank_pool(ranker, query, &pool, Some((doc, &perturbed)));
                        rows.iter()
                            .find(|r| r.substituted)
                            .map(|r| r.new_rank)
                            .expect("substituted doc in pool")
                    }
                };
                (new_rank, Some(perturbed))
            },
            |combo, (new_rank, perturbed), committed| {
                total_committed = committed;
                if new_rank > k {
                    let mut removed: Vec<String> = combo
                        .items
                        .iter()
                        .map(|&i| candidates[i].0.clone())
                        .collect();
                    let perturbed = perturbed.unwrap_or_else(|| {
                        let terms: HashSet<String> = removed.iter().cloned().collect();
                        remove_terms(&document.body, &terms)
                    });
                    removed.sort();
                    explanations.push(TermRemovalExplanation {
                        removed_terms: removed,
                        perturbed_body: perturbed,
                        importance: combo.score,
                        old_rank,
                        new_rank,
                        candidates_evaluated: committed,
                    });
                }
                if explanations.len() < config.n {
                    ControlFlow::Continue(())
                } else {
                    ControlFlow::Break(())
                }
            },
        );
    }

    Ok(TermRemovalResult {
        explanations,
        candidates,
        candidates_evaluated: total_committed,
        old_rank,
        status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_index::{Bm25Params, Document, InvertedIndex};
    use credence_rank::Bm25Ranker;
    use credence_text::Analyzer;

    fn fixture() -> InvertedIndex {
        InvertedIndex::build(
            vec![
                Document::from_body(
                    "The covid outbreak worries everyone. Gardens are quiet. \
                     Officials tracked the covid outbreak closely.",
                ),
                Document::from_body(
                    "covid outbreak updates arrive hourly for readers following the regional \
                     evening news bulletin.",
                ),
                Document::from_body(
                    "covid outbreak statistics were published early this morning by the \
                     county health department office.",
                ),
                Document::from_body("The annual garden show opened downtown."),
            ],
            Analyzer::english(),
        )
    }

    #[test]
    fn removes_the_minimal_term_set() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let result = explain_term_removal(
            &ranker,
            "covid outbreak",
            2,
            DocId(0),
            &TermRemovalConfig::default(),
        )
        .unwrap();
        assert!(!result.explanations.is_empty());
        let e = &result.explanations[0];
        assert!(e.new_rank > 2);
        // The perturbed body has lost the removed query terms entirely.
        for t in &e.removed_terms {
            assert!(!e.perturbed_body.to_lowercase().contains(t));
        }
    }

    #[test]
    fn term_removal_is_finer_grained_than_sentences() {
        // Removing the two query terms ("covid", "outbreak") guts relevance
        // without discarding whole sentences: the explanation removes at
        // most 2 terms while sentence removal needs 2 full sentences.
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let result = explain_term_removal(
            &ranker,
            "covid outbreak",
            2,
            DocId(0),
            &TermRemovalConfig::default(),
        )
        .unwrap();
        let e = &result.explanations[0];
        assert!(e.removed_terms.len() <= 2, "{:?}", e.removed_terms);
        // Non-removed content survives.
        assert!(e.perturbed_body.contains("Gardens"));
    }

    #[test]
    fn importance_ranks_query_terms_first() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let result = explain_term_removal(
            &ranker,
            "covid outbreak",
            2,
            DocId(0),
            &TermRemovalConfig::default(),
        )
        .unwrap();
        let top2: Vec<&str> = result.candidates[..2]
            .iter()
            .map(|c| c.0.as_str())
            .collect();
        assert!(top2.contains(&"covid"));
        assert!(top2.contains(&"outbreak"));
        assert_eq!(result.candidates[0].1, 2.0, "tf within the document");
    }

    #[test]
    fn validation_errors() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        assert!(matches!(
            explain_term_removal(&ranker, "covid", 0, DocId(0), &TermRemovalConfig::default()),
            Err(ExplainError::InvalidParameter(_))
        ));
        assert!(matches!(
            explain_term_removal(
                &ranker,
                "covid outbreak",
                2,
                DocId(3),
                &TermRemovalConfig::default()
            ),
            Err(ExplainError::DocNotRelevant { .. })
        ));
        assert!(matches!(
            explain_term_removal(
                &ranker,
                "covid outbreak",
                2,
                DocId(9),
                &TermRemovalConfig::default()
            ),
            Err(ExplainError::DocNotFound(_))
        ));
    }

    #[test]
    fn remove_terms_preserves_other_text() {
        let terms: HashSet<String> = ["covid".to_string()].into_iter().collect();
        let out = remove_terms("The covid outbreak, covid again.", &terms);
        assert_eq!(out, "The outbreak, again.");
    }

    #[test]
    fn remove_terms_handles_punctuation_adjacency() {
        let terms: HashSet<String> = ["covid-19".to_string()].into_iter().collect();
        let out = remove_terms("Covid-19, they said. (Covid-19!)", &terms);
        assert!(!out.to_lowercase().contains("covid"));
    }

    #[test]
    fn every_explanation_revalidates() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let k = 2;
        let result = explain_term_removal(
            &ranker,
            "covid outbreak",
            k,
            DocId(0),
            &TermRemovalConfig {
                n: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let ranking = rank_corpus(&ranker, "covid outbreak");
        let pool = ranking.top_k(k + 1);
        for e in &result.explanations {
            let rows = rerank_pool(
                &ranker,
                "covid outbreak",
                &pool,
                Some((DocId(0), &e.perturbed_body)),
            );
            let rank = rows.iter().find(|r| r.substituted).unwrap().new_rank;
            assert_eq!(rank, e.new_rank);
            assert!(rank > k);
        }
    }
}
