//! Build-your-own counterfactual documents (§III-C).
//!
//! The Builder page lets a user edit a ranked document arbitrarily, then
//! tests the edit's counterfactual validity: the edited document is
//! substituted for the original and re-ranked alongside the other top
//! `k + 1` documents. Rank movements are reported per document (the UI's
//! coloured arrows), the originally hidden rank-(k+1) document is flagged
//! (the orange plus icon), and the perturbation is a valid counterfactual —
//! the green check mark — exactly when the edited document's new rank
//! exceeds `k`.
//!
//! Edits can be supplied as structured term operations ([`Edit`]) — the
//! Figure-5 interaction replaces `covid`/`covid-19` with `flu` and
//! `outbreak` with `the flu` — or as a free-form replacement body.

use credence_index::DocId;
use credence_rank::{rank_corpus, rerank_pool, PoolEntry, RankedList, Ranker};
use credence_text::tokenize;

use crate::budget::{Budget, SearchStatus};
use crate::error::ExplainError;

/// One structured edit to a document body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Edit {
    /// Replace every whole-word occurrence of `from` (case-insensitive on
    /// the token) with `to`.
    Replace {
        /// The surface term to replace.
        from: String,
        /// Replacement text (may be multiple words or empty).
        to: String,
    },
    /// Remove every whole-word occurrence of the term.
    Remove {
        /// The surface term to delete.
        term: String,
    },
}

impl Edit {
    /// Convenience constructor for [`Edit::Replace`].
    pub fn replace(from: impl Into<String>, to: impl Into<String>) -> Self {
        Edit::Replace {
            from: from.into(),
            to: to.into(),
        }
    }

    /// Convenience constructor for [`Edit::Remove`].
    pub fn remove(term: impl Into<String>) -> Self {
        Edit::Remove { term: term.into() }
    }
}

/// Apply structured edits to a body, token-aligned: only whole tokens are
/// replaced (matching on the normalised term, so `Covid-19,` matches a
/// `covid-19` edit while `covidology` does not), punctuation and spacing
/// around tokens are preserved, and removals collapse leftover double
/// spaces.
pub fn apply_edits(body: &str, edits: &[Edit]) -> String {
    let mut out = String::with_capacity(body.len());
    let tokens = tokenize(body);
    let mut cursor = 0usize;
    for tok in &tokens {
        // Emit the gap before this token untouched.
        out.push_str(&body[cursor..tok.start]);
        cursor = tok.end;
        // Apply the first matching edit.
        let mut replacement: Option<&str> = None;
        for edit in edits {
            match edit {
                Edit::Replace { from, to } => {
                    if tok.term == from.to_lowercase() {
                        replacement = Some(to.as_str());
                        break;
                    }
                }
                Edit::Remove { term } => {
                    if tok.term == term.to_lowercase() {
                        replacement = Some("");
                        break;
                    }
                }
            }
        }
        match replacement {
            Some(text) => out.push_str(text),
            None => out.push_str(&tok.raw),
        }
    }
    out.push_str(&body[cursor..]);
    collapse_spaces(&out)
}

/// Collapse runs of spaces left behind by removals, and trim spaces hugging
/// punctuation (" ." → ".").
fn collapse_spaces(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut prev_space = false;
    for c in s.chars() {
        if c == ' ' {
            if prev_space {
                continue;
            }
            prev_space = true;
            out.push(c);
        } else {
            if prev_space && matches!(c, '.' | ',' | '!' | '?' | ';' | ':') {
                out.pop();
            }
            prev_space = false;
            out.push(c);
        }
    }
    out.trim().to_string()
}

/// The outcome of testing a user perturbation.
#[derive(Debug, Clone, PartialEq)]
pub struct BuilderOutcome {
    /// The edited body that was tested.
    pub edited_body: String,
    /// The re-ranked top-(k+1) pool, best first, with rank movements.
    pub rows: Vec<PoolEntry>,
    /// The edited document's rank before the edit.
    pub old_rank: usize,
    /// The edited document's rank in the re-ranked pool.
    pub new_rank: usize,
    /// The originally hidden rank-(k+1) document (the orange plus icon),
    /// when the ranking extends that far.
    pub revealed: Option<DocId>,
    /// The green check mark: `new_rank > k`.
    pub valid: bool,
}

/// Test a free-form perturbation of `doc`'s body (§III-C's RE-RANK button).
pub fn test_perturbation(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    edited_body: &str,
) -> Result<BuilderOutcome, ExplainError> {
    let ranking = rank_corpus(ranker, query);
    test_perturbation_ranked(ranker, query, k, doc, edited_body, &ranking)
}

/// [`test_perturbation`] against a pre-computed base ranking for `query`
/// (for example the engine's ranking cache), avoiding the full-corpus pass.
pub fn test_perturbation_ranked(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    edited_body: &str,
    ranking: &RankedList,
) -> Result<BuilderOutcome, ExplainError> {
    if k == 0 {
        return Err(ExplainError::InvalidParameter("k must be at least 1"));
    }
    let index = ranker.index();
    if index.document(doc).is_none() {
        return Err(ExplainError::DocNotFound(doc));
    }
    if index.analyze_query(query).is_empty() {
        return Err(ExplainError::EmptyQuery);
    }
    let old_rank = ranking
        .rank_of(doc)
        .ok_or(ExplainError::DocNotRelevant { doc, rank: None })?;
    if old_rank > k {
        return Err(ExplainError::DocNotRelevant {
            doc,
            rank: Some(old_rank),
        });
    }
    let pool = ranking.top_k(k + 1);
    let revealed = (pool.len() > k).then(|| pool[k]);
    let rows = rerank_pool(ranker, query, &pool, Some((doc, edited_body)));
    let new_rank = rows
        .iter()
        .find(|r| r.substituted)
        .map(|r| r.new_rank)
        .expect("substituted doc is in the pool");
    Ok(BuilderOutcome {
        edited_body: edited_body.to_string(),
        rows,
        old_rank,
        new_rank,
        revealed,
        valid: new_rank > k,
    })
}

/// [`test_perturbation_ranked`] under a request [`Budget`].
///
/// The builder evaluates exactly one perturbation, so there is no partial
/// result to return: an already-expired deadline or a raised cancel flag
/// fails fast with [`ExplainError::DeadlineExceeded`] /
/// [`ExplainError::Cancelled`] before the pool is re-scored. An eval cap is
/// ignored — the single evaluation is the request.
pub fn test_perturbation_budgeted_ranked(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    edited_body: &str,
    ranking: &RankedList,
    budget: &Budget,
) -> Result<BuilderOutcome, ExplainError> {
    match budget.stop_reason(0) {
        Some(SearchStatus::Cancelled) => return Err(ExplainError::Cancelled),
        Some(SearchStatus::Deadline) => return Err(ExplainError::DeadlineExceeded),
        _ => {}
    }
    test_perturbation_ranked(ranker, query, k, doc, edited_body, ranking)
}

/// Apply structured [`Edit`]s to `doc` and test the result.
pub fn test_edits(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    edits: &[Edit],
) -> Result<BuilderOutcome, ExplainError> {
    let ranking = rank_corpus(ranker, query);
    test_edits_ranked(ranker, query, k, doc, edits, &ranking)
}

/// [`test_edits`] against a pre-computed base ranking for `query`.
pub fn test_edits_ranked(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    edits: &[Edit],
    ranking: &RankedList,
) -> Result<BuilderOutcome, ExplainError> {
    let body = ranker
        .index()
        .document(doc)
        .ok_or(ExplainError::DocNotFound(doc))?
        .body
        .clone();
    let edited = apply_edits(&body, edits);
    test_perturbation_ranked(ranker, query, k, doc, &edited, ranking)
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_index::{Bm25Params, Document, InvertedIndex};
    use credence_rank::Bm25Ranker;
    use credence_text::Analyzer;

    #[test]
    fn replace_is_whole_word_and_case_insensitive() {
        let body = "Covid-19 spreads. The covid outbreak grows, covidology aside.";
        let edited = apply_edits(
            body,
            &[
                Edit::replace("covid-19", "flu"),
                Edit::replace("covid", "flu"),
                Edit::replace("outbreak", "the flu"),
            ],
        );
        assert_eq!(
            edited,
            "flu spreads. The flu the flu grows, covidology aside."
        );
    }

    #[test]
    fn remove_collapses_spacing() {
        let body = "The covid outbreak grows covid daily.";
        let edited = apply_edits(body, &[Edit::remove("covid")]);
        assert_eq!(edited, "The outbreak grows daily.");
    }

    #[test]
    fn remove_before_punctuation_is_clean() {
        let body = "They fear covid. Everyone studies covid.";
        let edited = apply_edits(body, &[Edit::remove("covid")]);
        assert_eq!(edited, "They fear. Everyone studies.");
    }

    #[test]
    fn empty_edits_are_identity_modulo_spacing() {
        let body = "Nothing changes here.";
        assert_eq!(apply_edits(body, &[]), body);
    }

    #[test]
    fn first_matching_edit_wins() {
        let body = "alpha beta";
        let edited = apply_edits(
            body,
            &[Edit::replace("alpha", "one"), Edit::remove("alpha")],
        );
        assert_eq!(edited, "one beta");
    }

    fn fixture() -> InvertedIndex {
        InvertedIndex::build(
            vec![
                Document::from_body(
                    "covid outbreak covid outbreak dominates every headline this week",
                ),
                Document::from_body(
                    "The covid outbreak arrived quietly. Officials downplayed the covid \
                     outbreak for weeks before acting.",
                ),
                Document::from_body("covid outbreak notes circulate among reporters daily."),
                Document::from_body("outbreak drills continue at the harbor facility."),
                Document::from_body("The garden show opens to large crowds."),
            ],
            Analyzer::english(),
        )
    }

    #[test]
    fn figure5_style_replacement_is_valid_counterfactual() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let k = 2;
        let outcome = test_edits(
            &r,
            "covid outbreak",
            k,
            DocId(1),
            &[
                Edit::replace("covid", "flu"),
                Edit::replace("outbreak", "the flu"),
            ],
        )
        .unwrap();
        assert!(outcome.valid, "{outcome:?}");
        assert_eq!(outcome.new_rank, k + 1, "sinks to the bottom of the pool");
        assert!(outcome.old_rank <= k);
        assert!(!outcome.edited_body.contains("covid"));
        assert!(outcome.edited_body.contains("flu"));
    }

    #[test]
    fn revealed_document_is_old_rank_k_plus_1() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let ranking = rank_corpus(&r, "covid outbreak");
        let expected = ranking.top_k(3)[2];
        let outcome =
            test_perturbation(&r, "covid outbreak", 2, DocId(1), "irrelevant now").unwrap();
        assert_eq!(outcome.revealed, Some(expected));
    }

    #[test]
    fn budgeted_builder_fails_fast_on_expired_budget() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let ranking = rank_corpus(&r, "covid outbreak");

        let expired = Budget {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
            ..Budget::default()
        };
        let err = test_perturbation_budgeted_ranked(
            &r,
            "covid outbreak",
            2,
            DocId(1),
            "gone",
            &ranking,
            &expired,
        )
        .unwrap_err();
        assert_eq!(err, ExplainError::DeadlineExceeded);

        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let cancelled = Budget::unlimited().with_cancel(flag);
        let err = test_perturbation_budgeted_ranked(
            &r,
            "covid outbreak",
            2,
            DocId(1),
            "gone",
            &ranking,
            &cancelled,
        )
        .unwrap_err();
        assert_eq!(err, ExplainError::Cancelled);

        // A live budget (even a zero eval cap — the single evaluation is the
        // request) behaves exactly like the unbudgeted path.
        let generous = Budget::unlimited()
            .with_deadline_ms(60_000)
            .with_max_evals(0);
        let budgeted = test_perturbation_budgeted_ranked(
            &r,
            "covid outbreak",
            2,
            DocId(1),
            "gone",
            &ranking,
            &generous,
        )
        .unwrap();
        let plain = test_perturbation(&r, "covid outbreak", 2, DocId(1), "gone").unwrap();
        assert_eq!(budgeted.rows, plain.rows);
        assert_eq!(budgeted.valid, plain.valid);
    }

    #[test]
    fn harmless_edit_is_not_valid() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let outcome = test_edits(
            &r,
            "covid outbreak",
            2,
            DocId(1),
            &[Edit::replace("officials", "bureaucrats")],
        )
        .unwrap();
        assert!(!outcome.valid);
        assert_eq!(outcome.new_rank, outcome.old_rank);
    }

    #[test]
    fn movement_arrows_are_consistent() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let outcome =
            test_perturbation(&r, "covid outbreak", 2, DocId(0), "nothing at all").unwrap();
        // Gutting the rank-1 doc raises everyone else (or leaves them put).
        for row in outcome.rows.iter().filter(|r| !r.substituted) {
            assert!(row.movement() <= 0, "{row:?}");
        }
        let sub = outcome.rows.iter().find(|r| r.substituted).unwrap();
        assert!(sub.movement() > 0);
    }

    #[test]
    fn pool_smaller_than_k_plus_1_has_no_reveal() {
        let idx = InvertedIndex::build(
            vec![
                Document::from_body("covid outbreak story number one"),
                Document::from_body("covid outbreak story number two"),
            ],
            Analyzer::english(),
        );
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let outcome = test_perturbation(&r, "covid outbreak", 2, DocId(0), "gone").unwrap();
        assert_eq!(outcome.revealed, None);
        // Both docs were in the pool; the gutted one is last.
        assert_eq!(outcome.new_rank, 2);
        assert!(!outcome.valid, "cannot exceed k when pool has only k docs");
    }

    #[test]
    fn errors_propagate() {
        let idx = fixture();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        assert!(matches!(
            test_perturbation(&r, "covid outbreak", 2, DocId(99), "x"),
            Err(ExplainError::DocNotFound(_))
        ));
        assert!(matches!(
            test_perturbation(&r, "", 2, DocId(0), "x"),
            Err(ExplainError::EmptyQuery)
        ));
        assert!(matches!(
            test_perturbation(&r, "covid outbreak", 1, DocId(2), "x"),
            Err(ExplainError::DocNotRelevant { .. })
        ));
        assert!(matches!(
            test_perturbation(&r, "covid outbreak", 0, DocId(0), "x"),
            Err(ExplainError::InvalidParameter(_))
        ));
    }
}
