//! Request-lifecycle budgets for the counterfactual searches.
//!
//! A [`Budget`] carries the three ways a caller can bound a search:
//!
//! * a **wall-clock deadline** (`deadline_ms` over REST, `--deadline-ms` on
//!   the CLI) — an [`Instant`] past which no further candidates are pulled;
//! * a **max-evaluation cap** (`max_evals`) — a hard ceiling on the number
//!   of candidates *committed*, independent of the enumeration limits in
//!   [`SearchBudget`](crate::SearchBudget);
//! * a **cooperative cancel flag** — an `Arc<AtomicBool>` the owner of the
//!   request (a connection handler, a supervisor thread) can flip to abort
//!   an in-flight search.
//!
//! The evaluator checks the budget at every batch boundary (and before
//! every candidate on the serial path), and the parallel workers poll the
//! deadline/cancel state between individual evaluations, so even a single
//! huge batch cannot pin a worker much past expiry. A tripped budget does
//! not error: the search stops and reports *how* it stopped via
//! [`SearchStatus`], with everything committed so far intact. Because
//! commits are strictly in enumeration order, a budget-limited run is
//! always prefix-consistent: its output equals the unlimited run truncated
//! at its `candidates_evaluated`.
//!
//! The default budget is [`Budget::unlimited`], which every check treats as
//! a no-op — explainer outputs with no budget set are bit-identical to
//! builds that predate this module.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a candidate search finished.
///
/// Serialised (lowercase) as the `status` field of every explainer result,
/// both over REST and in the CLI summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchStatus {
    /// The search ran to its natural end: the requested number of
    /// explanations was found or the candidate enumeration drained.
    Complete,
    /// The budget's `max_evals` cap was reached before the search ended.
    Exhausted,
    /// The wall-clock deadline expired; the result is the best-so-far
    /// prefix at the batch boundary where expiry was observed.
    Deadline,
    /// The cooperative cancel flag was raised by the request's owner.
    Cancelled,
}

impl SearchStatus {
    /// The stable machine-readable name (`"complete"`, `"exhausted"`,
    /// `"deadline"`, `"cancelled"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            SearchStatus::Complete => "complete",
            SearchStatus::Exhausted => "exhausted",
            SearchStatus::Deadline => "deadline",
            SearchStatus::Cancelled => "cancelled",
        }
    }

    /// Whether the search stopped early (anything but [`Complete`]).
    ///
    /// [`Complete`]: SearchStatus::Complete
    pub fn is_partial(&self) -> bool {
        !matches!(self, SearchStatus::Complete)
    }
}

impl std::fmt::Display for SearchStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A request-scoped bound on search work. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Stop pulling candidates once this instant has passed.
    pub deadline: Option<Instant>,
    /// Stop after committing this many candidate evaluations.
    pub max_evals: Option<usize>,
    /// Cooperative cancellation: stop as soon as this flag reads `true`.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl Budget {
    /// The default budget: no deadline, no eval cap, no cancel flag. Every
    /// check is a no-op and searches behave exactly as if unbudgeted.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Bound the search by a wall-clock deadline `ms` milliseconds from now.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(Instant::now() + Duration::from_millis(ms));
        self
    }

    /// Bound the search to at most `max_evals` committed evaluations.
    pub fn with_max_evals(mut self, max_evals: usize) -> Self {
        self.max_evals = Some(max_evals);
        self
    }

    /// Attach a cooperative cancel flag shared with the request's owner.
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The budget's cancel flag, installing a fresh (unraised) one if none
    /// is attached yet. Owners that adopt a request after parsing — e.g. an
    /// async job queue that must be able to abort any submission — call
    /// this to obtain a handle that is guaranteed to be observed by the
    /// search, whether or not the original caller supplied a flag.
    pub fn ensure_cancel(&mut self) -> Arc<AtomicBool> {
        match &self.cancel {
            Some(flag) => Arc::clone(flag),
            None => {
                let flag = Arc::new(AtomicBool::new(false));
                self.cancel = Some(Arc::clone(&flag));
                flag
            }
        }
    }

    /// Whether every check is a no-op (no limit of any kind is set).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_evals.is_none() && self.cancel.is_none()
    }

    /// Whether the deadline has passed or the cancel flag is raised — the
    /// two *asynchronous* stop conditions, pollable from worker threads
    /// without knowing the committed count.
    pub fn interrupted(&self) -> bool {
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }

    /// The reason the search must stop now, given `committed` evaluations
    /// committed so far — or `None` to keep going. Cancellation wins over
    /// the deadline, which wins over the eval cap.
    pub fn stop_reason(&self, committed: usize) -> Option<SearchStatus> {
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Some(SearchStatus::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(SearchStatus::Deadline);
            }
        }
        if let Some(max) = self.max_evals {
            if committed >= max {
                return Some(SearchStatus::Exhausted);
            }
        }
        None
    }

    /// How many more evaluations the eval cap allows (`usize::MAX` when
    /// uncapped). Used to trim speculative batches so an `Exhausted` stop
    /// commits exactly `max_evals` candidates on every thread count.
    pub fn remaining_evals(&self, committed: usize) -> usize {
        match self.max_evals {
            Some(max) => max.saturating_sub(committed),
            None => usize::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_stops() {
        let budget = Budget::unlimited();
        assert!(budget.is_unlimited());
        assert!(!budget.interrupted());
        assert_eq!(budget.stop_reason(0), None);
        assert_eq!(budget.stop_reason(usize::MAX), None);
        assert_eq!(budget.remaining_evals(1_000_000), usize::MAX);
    }

    #[test]
    fn max_evals_stops_at_cap() {
        let budget = Budget::unlimited().with_max_evals(3);
        assert_eq!(budget.stop_reason(2), None);
        assert_eq!(budget.stop_reason(3), Some(SearchStatus::Exhausted));
        assert_eq!(budget.remaining_evals(1), 2);
        assert_eq!(budget.remaining_evals(5), 0);
    }

    #[test]
    fn expired_deadline_stops_immediately() {
        let budget = Budget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Budget::default()
        };
        assert!(budget.interrupted());
        assert_eq!(budget.stop_reason(0), Some(SearchStatus::Deadline));
    }

    #[test]
    fn future_deadline_does_not_stop() {
        let budget = Budget::unlimited().with_deadline_ms(60_000);
        assert!(!budget.interrupted());
        assert_eq!(budget.stop_reason(0), None);
    }

    #[test]
    fn cancel_flag_wins_over_everything() {
        let flag = Arc::new(AtomicBool::new(false));
        let budget = Budget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            max_evals: Some(0),
            cancel: Some(Arc::clone(&flag)),
        };
        assert_eq!(budget.stop_reason(0), Some(SearchStatus::Deadline));
        flag.store(true, Ordering::Relaxed);
        assert_eq!(budget.stop_reason(0), Some(SearchStatus::Cancelled));
    }

    #[test]
    fn ensure_cancel_installs_and_reuses_one_flag() {
        let mut budget = Budget::unlimited();
        assert!(budget.cancel.is_none());
        let flag = budget.ensure_cancel();
        assert!(!budget.is_unlimited(), "a flag is now attached");
        assert!(!budget.interrupted(), "installed unraised");
        let again = budget.ensure_cancel();
        assert!(Arc::ptr_eq(&flag, &again), "second call shares the flag");
        flag.store(true, Ordering::Relaxed);
        assert_eq!(budget.stop_reason(0), Some(SearchStatus::Cancelled));

        // A pre-attached flag is reused, never replaced.
        let caller = Arc::new(AtomicBool::new(false));
        let mut budget = Budget::unlimited().with_cancel(Arc::clone(&caller));
        assert!(Arc::ptr_eq(&budget.ensure_cancel(), &caller));
    }

    #[test]
    fn status_names_are_stable() {
        assert_eq!(SearchStatus::Complete.as_str(), "complete");
        assert_eq!(SearchStatus::Exhausted.as_str(), "exhausted");
        assert_eq!(SearchStatus::Deadline.as_str(), "deadline");
        assert_eq!(SearchStatus::Cancelled.as_str(), "cancelled");
        assert!(!SearchStatus::Complete.is_partial());
        assert!(SearchStatus::Deadline.is_partial());
        assert_eq!(SearchStatus::Exhausted.to_string(), "exhausted");
    }
}
