//! The explanation result types shared across algorithms.

use credence_index::DocId;

/// A counterfactual *document* explanation (§II-C): a minimal set of
/// sentences whose removal renders the document non-relevant.
#[derive(Debug, Clone, PartialEq)]
pub struct SentenceRemovalExplanation {
    /// Indices (into the document's sentence list) of removed sentences.
    pub removed: Vec<usize>,
    /// The removed sentences' text, in document order.
    pub removed_text: Vec<String>,
    /// The perturbed body (remaining sentences joined in order).
    pub perturbed_body: String,
    /// Summed importance score of the removed sentences.
    pub importance: f64,
    /// The document's rank before perturbation (1-based).
    pub old_rank: usize,
    /// The document's rank after perturbation within the top-(k+1) pool.
    pub new_rank: usize,
    /// How many candidate perturbations were evaluated before this one was
    /// accepted (cumulative, for the ablation/efficiency tables).
    pub candidates_evaluated: usize,
}

/// A counterfactual *query* explanation (§II-D): a minimal set of document
/// terms which, appended to the query, raise the document above a rank
/// threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAugmentationExplanation {
    /// The appended terms, in the surface form they carry in the document.
    pub terms: Vec<String>,
    /// The full augmented query (original query plus appended terms).
    pub augmented_query: String,
    /// Summed TF-IDF score of the appended terms (within the ranked set).
    pub tfidf: f64,
    /// The document's rank under the original query (1-based).
    pub old_rank: usize,
    /// The document's rank under the augmented query.
    pub new_rank: usize,
    /// Cumulative candidate evaluations when this explanation was accepted.
    pub candidates_evaluated: usize,
}

/// An instance-based counterfactual (§II-E): an actual non-relevant corpus
/// document similar to the instance document.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceExplanation {
    /// The counterfactual instance document.
    pub doc: DocId,
    /// Similarity to the instance document (cosine, in `[-1, 1]`).
    pub similarity: f64,
    /// The instance's rank for the original query, when it is ranked at all
    /// (always `> k` by construction).
    pub rank: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_are_plain_data() {
        let e = SentenceRemovalExplanation {
            removed: vec![0, 5],
            removed_text: vec!["a".into(), "b".into()],
            perturbed_body: "rest".into(),
            importance: 4.0,
            old_rank: 3,
            new_rank: 11,
            candidates_evaluated: 9,
        };
        assert_eq!(e.clone(), e);

        let q = QueryAugmentationExplanation {
            terms: vec!["5g".into()],
            augmented_query: "covid outbreak 5g".into(),
            tfidf: 2.7,
            old_rank: 3,
            new_rank: 2,
            candidates_evaluated: 1,
        };
        assert_eq!(q.clone(), q);

        let i = InstanceExplanation {
            doc: DocId(11),
            similarity: 0.75,
            rank: None,
        };
        assert_eq!(i.clone(), i);
    }
}
