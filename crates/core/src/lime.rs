//! Local surrogate attribution (Rank-LIME) — the fifth explanation family.
//!
//! The four CREDENCE families are *exact* counterfactuals: they search for
//! perturbations whose effect is verified by re-ranking. This module adds the
//! complementary *attribution* view in the style of Rank-LIME: perturb the
//! document by randomly masking terms, score every variant with the black-box
//! ranker, and fit a locality-weighted linear surrogate over binary
//! term-presence features. The surrogate's coefficients are signed per-term
//! attributions (positive = the term's presence raises the score), and a
//! weighted R² *fidelity* score reports how faithful the linear story is —
//! the confidence estimate the exact families never needed.
//!
//! # Pipeline
//!
//! 1. **Candidates** — the document's distinct surface terms, scored and
//!    ordered exactly like [`term_removal`](crate::term_removal) (query-term
//!    occurrence counts, ties alphabetical). The top
//!    [`max_features`](FeatureAttributionConfig::max_features) become the
//!    surrogate's features.
//! 2. **Sampler** — `samples` binary masks drawn up front from the seeded
//!    workspace generator ([`credence_rng::rngs::StdRng`]); each feature is
//!    removed independently with probability ½.
//! 3. **Scoring** — each mask's variant is scored through the same
//!    posting-replay subset scorer term removal uses
//!    ([`credence_rank::TermRemovalScorer`], shared via
//!    [`ReplayMemo`](crate::evaluator::ReplayMemo)), falling back to exact
//!    re-analysis when the model is not term-decomposable. Batches are scored
//!    in parallel under [`EvalOptions`].
//! 4. **Surrogate** — weighted least squares with ridge regularisation on an
//!    exponential locality kernel over the removed-mass fraction, solved by
//!    an in-repo Gaussian elimination (no external linear-algebra
//!    dependency), plus the weighted R² fidelity.
//!
//! # Determinism
//!
//! Attributions are sampled, so determinism is the parity story: for a fixed
//! `(seed, samples, corpus generation)` the result is byte-identical across
//! serial and parallel evaluation and across replay-memo hits and misses.
//! All masks are drawn sequentially on the caller's thread before any
//! scoring; [`credence_rank::par_map`] preserves order; the subset scorer is
//! bit-exact against the full re-scoring path; and the WLS accumulation runs
//! on the caller's thread in fixed sample order. The [`Budget`] is consulted
//! only at sample-batch boundaries, so deadline partials always cover a
//! whole number of completed batches and `Exhausted` commits exactly
//! `max_evals` samples on every thread count.

use std::collections::HashSet;

use credence_index::DocId;
use credence_rank::{par_map, rank_corpus, RankedList, Ranker, TermRemovalScorer};
use credence_rng::{rngs::StdRng, Rng, SeedableRng};

use crate::budget::{Budget, SearchStatus};
use crate::error::ExplainError;
use crate::evaluator::EvalOptions;
use crate::term_removal::{document_term_candidates, remove_terms};

/// Samples scored per budget check. Deadline/cancel partials always cover a
/// whole number of these batches, which keeps partial payloads reproducible
/// modulo wall-clock (the committed count, not the batch contents, varies).
const SAMPLE_BATCH: usize = 64;

/// Width of the exponential locality kernel over the removed-mass fraction
/// `d ∈ [0, 1]`: `w = exp(-(d / WIDTH)²)`. Variants close to the original
/// document dominate the fit, per LIME's locality principle.
const KERNEL_WIDTH: f64 = 0.75;

/// Pivot magnitude below which the normal equations are declared singular
/// and the fit degenerates to all-zero attributions.
const SINGULAR_EPS: f64 = 1e-12;

/// Configuration for the feature-attribution (Rank-LIME) explainer.
#[derive(Debug, Clone)]
pub struct FeatureAttributionConfig {
    /// Number of perturbed document variants to draw and score.
    pub samples: usize,
    /// Seed for the mask sampler. Same seed ⇒ byte-identical payload.
    pub seed: u64,
    /// Maximum number of attributions returned (largest `|weight|` first).
    pub top_m: usize,
    /// Ridge regularisation strength added to the feature diagonal of the
    /// normal equations (the intercept is never penalised). `0` disables
    /// regularisation, which lets the surrogate recover an exactly linear
    /// model's weights perfectly.
    pub lambda: f64,
    /// Cap on the number of candidate terms used as surrogate features
    /// (the solver is O(features³)); candidates beyond the cap stay in the
    /// document in every sample.
    pub max_features: usize,
    /// Candidate-evaluation engine knobs (threads, incremental scoring).
    pub eval: EvalOptions,
    /// Request-lifecycle bounds (deadline / sample cap / cancel flag).
    pub lifecycle: Budget,
}

impl Default for FeatureAttributionConfig {
    fn default() -> Self {
        Self {
            samples: 256,
            seed: 42,
            top_m: 10,
            lambda: 1e-3,
            max_features: 24,
            eval: EvalOptions::default(),
            lifecycle: Budget::unlimited(),
        }
    }
}

/// One signed per-term attribution from the linear surrogate.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureAttribution {
    /// The document surface term.
    pub term: String,
    /// The surrogate coefficient: the modelled score change from the term
    /// being present rather than removed. Positive = presence helps.
    pub weight: f64,
}

/// Result of a feature-attribution request.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureAttributionResult {
    /// Top-m attributions, largest `|weight|` first (ties alphabetical).
    pub attributions: Vec<FeatureAttribution>,
    /// The surrogate intercept: the modelled score with every feature term
    /// removed (plus the constant mass of non-feature terms).
    pub intercept: f64,
    /// Weighted R² of the surrogate over the scored samples, clamped to
    /// `[0, 1]`. `1` means the ranker is locally linear in the features;
    /// low values mean the attributions are a coarse story.
    pub fidelity: f64,
    /// Number of candidate terms used as surrogate features.
    pub features: usize,
    /// Perturbed variants actually scored (equals `samples` on a
    /// [`SearchStatus::Complete`] run; a whole number of batches otherwise).
    pub samples_evaluated: usize,
    /// Original rank of the document.
    pub old_rank: usize,
    /// How the sampling ended; anything but [`SearchStatus::Complete`]
    /// marks the fit as covering a budget-limited sample prefix.
    pub status: SearchStatus,
}

/// Generate Rank-LIME feature attributions for `doc` under `query`.
pub fn explain_feature_attribution(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    config: &FeatureAttributionConfig,
) -> Result<FeatureAttributionResult, ExplainError> {
    let ranking = rank_corpus(ranker, query);
    explain_feature_attribution_ranked(ranker, query, k, doc, config, &ranking)
}

/// [`explain_feature_attribution`] against a pre-computed base ranking for
/// `query` (for example the engine's ranking cache), avoiding the initial
/// full-corpus pass.
pub fn explain_feature_attribution_ranked(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    config: &FeatureAttributionConfig,
    ranking: &RankedList,
) -> Result<FeatureAttributionResult, ExplainError> {
    explain_feature_attribution_memo(ranker, query, k, doc, config, ranking, None)
}

/// [`explain_feature_attribution_ranked`] with an optional posting-replay
/// memo. The memoised per-(query, doc) term-removal profile is shared with
/// the term-removal explainer — both derive candidates identically via
/// [`document_term_candidates`], so a profile deposited by either explainer
/// replays bit-identically for the other.
pub fn explain_feature_attribution_memo(
    ranker: &dyn Ranker,
    query: &str,
    k: usize,
    doc: DocId,
    config: &FeatureAttributionConfig,
    ranking: &RankedList,
    memo: Option<&crate::evaluator::ReplayMemo>,
) -> Result<FeatureAttributionResult, ExplainError> {
    if k == 0 {
        return Err(ExplainError::InvalidParameter("k must be at least 1"));
    }
    if config.samples == 0 {
        return Err(ExplainError::InvalidParameter("samples must be at least 1"));
    }
    if !config.lambda.is_finite() || config.lambda < 0.0 {
        return Err(ExplainError::InvalidParameter(
            "lambda must be finite and non-negative",
        ));
    }
    let index = ranker.index();
    let document = index
        .document(doc)
        .ok_or(ExplainError::DocNotFound(doc))?
        .clone();
    if index.analyze_query(query).is_empty() {
        return Err(ExplainError::EmptyQuery);
    }
    let old_rank = ranking
        .rank_of(doc)
        .ok_or(ExplainError::DocNotRelevant { doc, rank: None })?;
    if old_rank > k {
        return Err(ExplainError::DocNotRelevant {
            doc,
            rank: Some(old_rank),
        });
    }

    let candidates = document_term_candidates(index, query, &document.body);
    if candidates.is_empty() {
        return Err(ExplainError::NoCandidateTerms(doc));
    }
    let features = candidates.len().min(config.max_features.max(1));

    // The subset scorer replays posting deltas over the *full* candidate
    // surface list — the same profile term removal builds — so the memo's
    // (query, doc) entry is interchangeable between the two explainers.
    let surfaces: Vec<&str> = candidates.iter().map(|c| c.0.as_str()).collect();
    let removal_scorer = if config.eval.force_exact {
        None
    } else {
        match memo {
            Some(m) => m
                .removal_profile(query, doc, || {
                    credence_rank::TermRemovalProfile::new(ranker, query, &document.body, &surfaces)
                })
                .map(|p| TermRemovalScorer::from_profile(ranker, p)),
            None => TermRemovalScorer::new(ranker, query, &document.body, &surfaces),
        }
    };

    // Draw every mask up front, sequentially, on this thread: the sample
    // stream is a pure function of the seed, independent of thread count,
    // batch sizes, and budget outcomes. `masks[i]` holds the *removed*
    // feature indices of sample `i` (each removed independently with p=½).
    let mut rng = StdRng::seed_from_u64(config.seed);
    let masks: Vec<Vec<usize>> = (0..config.samples)
        .map(|_| (0..features).filter(|_| rng.gen_bool(0.5)).collect())
        .collect();

    let score_mask = |removed: &Vec<usize>| -> f64 {
        if let Some(scorer) = &removal_scorer {
            return scorer.score_without(removed);
        }
        let terms: HashSet<String> = removed.iter().map(|&j| candidates[j].0.clone()).collect();
        ranker.score_text(query, &remove_terms(&document.body, &terms))
    };

    // Score in fixed-size batches; the budget is consulted only between
    // batches so partials cover whole batches, and the batch is trimmed to
    // the remaining eval allowance so `Exhausted` commits exactly
    // `max_evals` samples on every thread count.
    let threads = config.eval.resolved_threads();
    let mut ys: Vec<f64> = Vec::with_capacity(masks.len());
    let mut committed = 0usize;
    let status = loop {
        if let Some(stop) = config.lifecycle.stop_reason(committed) {
            break stop;
        }
        if committed == masks.len() {
            break SearchStatus::Complete;
        }
        let quota = SAMPLE_BATCH.min(config.lifecycle.remaining_evals(committed));
        let end = masks.len().min(committed + quota);
        let batch = &masks[committed..end];
        let scores: Vec<f64> = if threads > 1 && batch.len() >= config.eval.parallel_threshold {
            par_map(batch, threads, &score_mask)
        } else {
            batch.iter().map(&score_mask).collect()
        };
        ys.extend(scores);
        committed = end;
    };

    let (intercept, beta, fidelity) =
        fit_surrogate(&masks[..committed], &ys, features, config.lambda);
    let mut attributions: Vec<FeatureAttribution> = beta
        .iter()
        .enumerate()
        .map(|(j, &weight)| FeatureAttribution {
            term: candidates[j].0.clone(),
            weight,
        })
        .collect();
    attributions.sort_by(|a, b| {
        b.weight
            .abs()
            .partial_cmp(&a.weight.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.term.cmp(&b.term))
    });
    attributions.truncate(config.top_m);

    Ok(FeatureAttributionResult {
        attributions,
        intercept,
        fidelity,
        features,
        samples_evaluated: committed,
        old_rank,
        status,
    })
}

/// The locality weight of a sample that removed `removed` of `features`
/// feature terms.
fn kernel_weight(removed: usize, features: usize) -> f64 {
    let d = removed as f64 / features as f64;
    (-(d / KERNEL_WIDTH).powi(2)).exp()
}

/// Fit the ridge-regularised weighted least squares surrogate over binary
/// kept-features design columns (plus an unpenalised intercept) and return
/// `(intercept, per-feature coefficients, weighted R²)`.
///
/// Accumulation and elimination run in fixed order on the caller's thread,
/// so the fit is a pure function of `(masks, ys, lambda)`. A singular system
/// (or an empty sample prefix) degenerates to all-zero coefficients with
/// fidelity `0`.
fn fit_surrogate(masks: &[Vec<usize>], ys: &[f64], p: usize, lambda: f64) -> (f64, Vec<f64>, f64) {
    let dim = p + 1;
    if masks.is_empty() {
        return (0.0, vec![0.0; p], 0.0);
    }
    // Normal equations G = XᵀWX (+ λ on the feature diagonal), b = XᵀWy.
    // Design entries are 0/1 (column 0 is the intercept, column 1+j is
    // "feature j kept"), so each sample adds its weight at every pair of
    // active columns.
    let mut g = vec![vec![0.0f64; dim]; dim];
    let mut b = vec![0.0f64; dim];
    let mut kept = vec![true; p];
    let mut active: Vec<usize> = Vec::with_capacity(dim);
    for (mask, &y) in masks.iter().zip(ys) {
        let w = kernel_weight(mask.len(), p);
        kept.iter_mut().for_each(|x| *x = true);
        for &j in mask {
            kept[j] = false;
        }
        active.clear();
        active.push(0);
        active.extend((0..p).filter(|&j| kept[j]).map(|j| j + 1));
        for &r in &active {
            b[r] += w * y;
            for &c in &active {
                g[r][c] += w;
            }
        }
    }
    for j in 1..dim {
        g[j][j] += lambda;
    }
    let Some(beta) = solve_linear(&mut g, &mut b) else {
        return (0.0, vec![0.0; p], 0.0);
    };

    // Weighted R² of the fit. `kept_sum` turns the per-sample prediction
    // into intercept + Σ(all feature coefficients) − Σ(removed ones).
    let kept_sum: f64 = beta[1..].iter().sum();
    let (mut sw, mut swy) = (0.0f64, 0.0f64);
    for (mask, &y) in masks.iter().zip(ys) {
        let w = kernel_weight(mask.len(), p);
        sw += w;
        swy += w * y;
    }
    let ybar = swy / sw;
    let (mut ss_res, mut ss_tot) = (0.0f64, 0.0f64);
    for (mask, &y) in masks.iter().zip(ys) {
        let w = kernel_weight(mask.len(), p);
        let removed: f64 = mask.iter().map(|&j| beta[j + 1]).sum();
        let pred = beta[0] + kept_sum - removed;
        ss_res += w * (y - pred) * (y - pred);
        ss_tot += w * (y - ybar) * (y - ybar);
    }
    let fidelity = if ss_tot > SINGULAR_EPS {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    } else if ss_res <= SINGULAR_EPS {
        // A constant target perfectly fit by the intercept.
        1.0
    } else {
        0.0
    };
    (beta[0], beta[1..].to_vec(), fidelity)
}

/// Solve `G x = b` by Gaussian elimination with partial pivoting. Returns
/// `None` when a pivot falls below [`SINGULAR_EPS`].
fn solve_linear(g: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let mut pivot = col;
        for row in col + 1..n {
            if g[row][col].abs() > g[pivot][col].abs() {
                pivot = row;
            }
        }
        if g[pivot][col].abs() < SINGULAR_EPS {
            return None;
        }
        if pivot != col {
            g.swap(pivot, col);
            b.swap(pivot, col);
        }
        for row in col + 1..n {
            let f = g[row][col] / g[col][col];
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                g[row][c] -= f * g[col][c];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut s = b[col];
        for c in col + 1..n {
            s -= g[col][c] * x[c];
        }
        x[col] = s / g[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_index::{Bm25Params, Document, InvertedIndex};
    use credence_rank::Bm25Ranker;
    use credence_text::Analyzer;

    fn fixture() -> InvertedIndex {
        InvertedIndex::build(
            vec![
                Document::from_body(
                    "The covid outbreak worries everyone. Gardens are quiet. \
                     Officials tracked the covid outbreak closely.",
                ),
                Document::from_body(
                    "covid outbreak updates arrive hourly for readers following the regional \
                     evening news bulletin.",
                ),
                Document::from_body(
                    "covid outbreak statistics were published early this morning by the \
                     county health department office.",
                ),
                Document::from_body("The annual garden show opened downtown."),
            ],
            Analyzer::english(),
        )
    }

    fn explain(config: &FeatureAttributionConfig) -> FeatureAttributionResult {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        explain_feature_attribution(&ranker, "covid outbreak", 2, DocId(0), config).unwrap()
    }

    #[test]
    fn query_terms_dominate_the_attributions() {
        let result = explain(&FeatureAttributionConfig::default());
        assert_eq!(result.status, SearchStatus::Complete);
        assert_eq!(result.samples_evaluated, 256);
        assert_eq!(result.old_rank, 1);
        let top2: Vec<&str> = result.attributions[..2]
            .iter()
            .map(|a| a.term.as_str())
            .collect();
        assert!(top2.contains(&"covid"), "{top2:?}");
        assert!(top2.contains(&"outbreak"), "{top2:?}");
        for a in &result.attributions[..2] {
            assert!(a.weight > 0.0, "query-term presence should raise the score");
        }
        assert!(result.fidelity > 0.5, "fidelity {}", result.fidelity);
    }

    #[test]
    fn same_seed_is_bitwise_reproducible() {
        let a = explain(&FeatureAttributionConfig::default());
        let b = explain(&FeatureAttributionConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = explain(&FeatureAttributionConfig::default());
        let b = explain(&FeatureAttributionConfig {
            seed: 7,
            ..Default::default()
        });
        // Same qualitative story, different sampled coefficients.
        assert_ne!(a, b);
    }

    #[test]
    fn parallel_eval_matches_serial_bitwise() {
        let serial = explain(&FeatureAttributionConfig {
            eval: EvalOptions::exact_serial(),
            ..Default::default()
        });
        for threads in [0, 2, 5] {
            let parallel = explain(&FeatureAttributionConfig {
                eval: EvalOptions {
                    threads,
                    parallel_threshold: 1,
                    force_exact: false,
                },
                ..Default::default()
            });
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn memo_replay_matches_fresh_build() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let ranking = rank_corpus(&ranker, "covid outbreak");
        let config = FeatureAttributionConfig::default();
        let fresh = explain_feature_attribution_ranked(
            &ranker,
            "covid outbreak",
            2,
            DocId(0),
            &config,
            &ranking,
        )
        .unwrap();
        let memo = crate::evaluator::ReplayMemo::new(16);
        for _ in 0..2 {
            let replayed = explain_feature_attribution_memo(
                &ranker,
                "covid outbreak",
                2,
                DocId(0),
                &config,
                &ranking,
                Some(&memo),
            )
            .unwrap();
            assert_eq!(replayed, fresh);
        }
        assert!(memo.hits() > 0, "second run should replay the profile");
    }

    #[test]
    fn max_evals_stops_after_exactly_that_many_samples() {
        for threads in [1, 4] {
            let result = explain(&FeatureAttributionConfig {
                lifecycle: Budget::unlimited().with_max_evals(70),
                eval: EvalOptions {
                    threads,
                    parallel_threshold: 1,
                    force_exact: false,
                },
                ..Default::default()
            });
            assert_eq!(result.status, SearchStatus::Exhausted, "threads={threads}");
            assert_eq!(result.samples_evaluated, 70, "threads={threads}");
        }
    }

    #[test]
    fn expired_deadline_reports_a_whole_batch_partial() {
        let result = explain(&FeatureAttributionConfig {
            lifecycle: Budget {
                deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
                ..Budget::default()
            },
            ..Default::default()
        });
        assert_eq!(result.status, SearchStatus::Deadline);
        assert_eq!(result.samples_evaluated, 0);
        assert_eq!(result.fidelity, 0.0);
        assert!(result.attributions.iter().all(|a| a.weight == 0.0));
    }

    #[test]
    fn absent_query_terms_never_appear() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let result = explain_feature_attribution(
            &ranker,
            "covid zebra",
            2,
            DocId(0),
            &FeatureAttributionConfig::default(),
        )
        .unwrap();
        assert!(result.attributions.iter().all(|a| a.term != "zebra"));
    }

    #[test]
    fn validation_errors() {
        let idx = fixture();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let config = FeatureAttributionConfig::default();
        assert!(matches!(
            explain_feature_attribution(&ranker, "covid", 0, DocId(0), &config),
            Err(ExplainError::InvalidParameter(_))
        ));
        assert!(matches!(
            explain_feature_attribution(
                &ranker,
                "covid",
                2,
                DocId(0),
                &FeatureAttributionConfig {
                    samples: 0,
                    ..Default::default()
                }
            ),
            Err(ExplainError::InvalidParameter(_))
        ));
        assert!(matches!(
            explain_feature_attribution(
                &ranker,
                "covid",
                2,
                DocId(0),
                &FeatureAttributionConfig {
                    lambda: -1.0,
                    ..Default::default()
                }
            ),
            Err(ExplainError::InvalidParameter(_))
        ));
        assert!(matches!(
            explain_feature_attribution(&ranker, "covid outbreak", 2, DocId(9), &config),
            Err(ExplainError::DocNotFound(_))
        ));
        assert!(matches!(
            explain_feature_attribution(&ranker, "covid outbreak", 2, DocId(3), &config),
            Err(ExplainError::DocNotRelevant { .. })
        ));
    }

    #[test]
    fn solver_recovers_a_known_system() {
        // 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
        let mut g = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let mut b = vec![5.0, 10.0];
        let x = solve_linear(&mut g, &mut b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_system_degenerates_to_zero() {
        let mut g = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let mut b = vec![2.0, 2.0];
        assert!(solve_linear(&mut g, &mut b).is_none());
    }
}
