//! The CREDENCE engine — the Figure-1 backend behind one façade.
//!
//! The original system wires a Lucene index, the monoT5 ranker, the
//! counterfactual algorithms, a Doc2Vec model, and an LDA topic module
//! behind a FastAPI service. [`CredenceEngine`] is that service layer as a
//! library: construct it over any black-box [`Ranker`] and call the methods
//! that mirror the REST endpoints (`credence-server` exposes them over
//! HTTP).
//!
//! The engine trains the Doc2Vec space once at construction (it is
//! query-independent) and fits LDA per request over the currently ranked
//! top-k documents, exactly as the Browse-Topics modal does.

use credence_embed::{Doc2Vec, Doc2VecConfig};
use credence_index::{DocId, TopKOptions};
use credence_rank::{rank_corpus_with, RankedList, Ranker};
use credence_text::Vocabulary;
use credence_topics::{summarize_topics, LdaConfig, LdaModel, TopicSummary};

use crate::budget::Budget;
use crate::builder::{
    test_edits_ranked, test_perturbation_budgeted_ranked, test_perturbation_ranked, BuilderOutcome,
    Edit,
};
use crate::error::ExplainError;
use crate::evaluator::EvalOptions;
use crate::explanation::InstanceExplanation;
use crate::instance_based::{cosine_sampled, doc2vec_nearest, CosineSampledConfig};
use crate::query_augmentation::{
    explain_query_augmentation_ranked, QueryAugmentationConfig, QueryAugmentationResult,
};
use crate::query_reduction::{
    explain_query_reduction_ranked, QueryReductionConfig, QueryReductionResult,
};
use crate::sentence_removal::{SentenceRemovalConfig, SentenceRemovalResult};
use crate::term_removal::{TermRemovalConfig, TermRemovalResult};

/// Engine-level configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Doc2Vec training configuration (for the Doc2Vec-nearest explainer).
    pub doc2vec: Doc2VecConfig,
    /// Cosine-sampled explainer configuration.
    pub cosine: CosineSampledConfig,
    /// LDA configuration for topic browsing.
    pub lda: LdaConfig,
    /// Number of top terms reported per topic.
    pub topic_terms: usize,
    /// Capacity of the per-engine query→ranking cache (0 disables it).
    pub ranking_cache: usize,
    /// Rank the corpus with scoped threads once it has at least this many
    /// documents (0 disables parallel ranking). Only consulted for rankers
    /// without a pruned top-k path (the exhaustive fallback).
    pub parallel_threshold: usize,
    /// Top-k retrieval knobs (strategy, shard count, density threshold)
    /// handed to rankers that expose the pruned engine.
    pub retrieval: TopKOptions,
    /// Default candidate-evaluation knobs for the counterfactual search
    /// loops. A request config carrying non-default [`EvalOptions`] wins
    /// over this engine default.
    pub eval: EvalOptions,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            doc2vec: Doc2VecConfig::default(),
            cosine: CosineSampledConfig::default(),
            lda: LdaConfig::default(),
            topic_terms: 8,
            ranking_cache: 64,
            parallel_threshold: 10_000,
            retrieval: TopKOptions::default(),
            eval: EvalOptions::default(),
        }
    }
}

impl EngineConfig {
    /// A configuration with cheap training parameters, for tests and
    /// latency-sensitive demos.
    pub fn fast() -> Self {
        Self {
            doc2vec: Doc2VecConfig {
                dim: 32,
                epochs: 30,
                infer_epochs: 15,
                ..Doc2VecConfig::default()
            },
            lda: LdaConfig {
                iterations: 40,
                ..LdaConfig::default()
            },
            ..Self::default()
        }
    }
}

/// One row of a ranking response.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedDoc {
    /// The document.
    pub doc: DocId,
    /// 1-based rank.
    pub rank: usize,
    /// Model score.
    pub score: f64,
    /// Document name (external id).
    pub name: String,
    /// Document title.
    pub title: String,
}

/// Counters accumulated by the engine's retrieval path, snapshotted for
/// the server's `/metrics` endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetrievalStats {
    /// Documents actually scored by the top-k engine.
    pub docs_scored: u64,
    /// Posting entries skipped by MaxScore pruning (an upper bound on the
    /// unique documents never scored).
    pub docs_pruned: u64,
    /// Shards spawned by the parallel fallback (0 for serial strategies).
    pub shards_used: u64,
    /// Posting blocks decoded by the block-traversal strategies.
    pub blocks_decoded: u64,
    /// Posting blocks skipped undecoded via their block-max metadata.
    pub blocks_skipped: u64,
    /// Ranking-cache lookups served without recomputation.
    pub cache_hits: u64,
    /// Ranking-cache lookups that had to rank the corpus.
    pub cache_misses: u64,
    /// Rankings currently resident in the cache (a gauge, not a counter).
    pub cache_size: u64,
    /// Rankings evicted from the cache to make room for newer entries.
    pub cache_evictions: u64,
}

/// Sentinel for "no node" in the LRU's intrusive links.
const NIL: usize = usize::MAX;

/// Per-(query, doc) entries retained by the engine's posting-replay memo
/// before a wholesale clear (see [`crate::evaluator::ReplayMemo`]).
const REPLAY_MEMO_CAPACITY: usize = 256;

struct LruNode {
    query: String,
    ranking: std::sync::Arc<RankedList>,
    prev: usize,
    next: usize,
}

/// The mutable interior of [`RankingCache`]: a hash map from query to node
/// slot plus a doubly-linked recency list threaded through a slab of
/// nodes. `get` and `insert` are both O(1) — no linear scans, unlike the
/// FIFO deque this replaces.
#[derive(Default)]
struct LruState {
    map: std::collections::HashMap<String, usize>,
    nodes: Vec<LruNode>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl LruState {
    fn new() -> Self {
        Self {
            head: NIL,
            tail: NIL,
            ..Self::default()
        }
    }

    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        } else {
            self.tail = i;
        }
        self.head = i;
    }

    fn get(&mut self, query: &str) -> Option<std::sync::Arc<RankedList>> {
        let &i = self.map.get(query)?;
        if self.head != i {
            self.detach(i);
            self.push_front(i);
        }
        Some(std::sync::Arc::clone(&self.nodes[i].ranking))
    }

    /// Inserts `query`; returns `true` when an older entry was evicted to
    /// make room.
    fn insert(
        &mut self,
        query: &str,
        ranking: std::sync::Arc<RankedList>,
        capacity: usize,
    ) -> bool {
        if self.map.contains_key(query) {
            return false; // a racing thread inserted first; keep its entry
        }
        let mut evicted_one = false;
        if self.map.len() >= capacity {
            let lru = self.tail;
            self.detach(lru);
            let evicted = std::mem::take(&mut self.nodes[lru].query);
            self.map.remove(&evicted);
            self.free.push(lru);
            evicted_one = true;
        }
        let node = LruNode {
            query: query.to_string(),
            ranking,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.push_front(i);
        self.map.insert(query.to_string(), i);
        evicted_one
    }
}

/// An O(1) LRU cache of corpus rankings keyed by query string.
///
/// Every explainer starts by ranking the corpus for its query; a busy
/// server re-ranks the same query many times per user interaction
/// (rank → explain → explain → builder …). The corpus and the model are
/// immutable after engine construction, so cached rankings can never go
/// stale. Hits and misses are counted for the `/metrics` endpoint.
struct RankingCache {
    capacity: usize,
    state: std::sync::Mutex<LruState>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    evictions: std::sync::atomic::AtomicU64,
}

impl RankingCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            state: std::sync::Mutex::new(LruState::new()),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
            evictions: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn get_or_insert(
        &self,
        query: &str,
        compute: impl FnOnce() -> RankedList,
    ) -> std::sync::Arc<RankedList> {
        use std::sync::atomic::Ordering::Relaxed;
        if self.capacity == 0 {
            self.misses.fetch_add(1, Relaxed);
            return std::sync::Arc::new(compute());
        }
        {
            let mut state = self.state.lock().expect("cache lock poisoned");
            if let Some(ranking) = state.get(query) {
                self.hits.fetch_add(1, Relaxed);
                return ranking;
            }
        }
        self.misses.fetch_add(1, Relaxed);
        let ranking = std::sync::Arc::new(compute());
        let mut state = self.state.lock().expect("cache lock poisoned");
        if state.insert(query, std::sync::Arc::clone(&ranking), self.capacity) {
            self.evictions.fetch_add(1, Relaxed);
        }
        ranking
    }

    fn len(&self) -> usize {
        self.state.lock().expect("cache lock poisoned").map.len()
    }
}

/// Engine-level retrieval counters (all monotonically increasing).
#[derive(Default)]
struct RetrievalCounters {
    docs_scored: std::sync::atomic::AtomicU64,
    docs_pruned: std::sync::atomic::AtomicU64,
    shards_used: std::sync::atomic::AtomicU64,
    blocks_decoded: std::sync::atomic::AtomicU64,
    blocks_skipped: std::sync::atomic::AtomicU64,
}

/// The CREDENCE backend over a black-box ranker.
pub struct CredenceEngine<'a> {
    ranker: &'a dyn Ranker,
    doc2vec: Doc2Vec,
    config: EngineConfig,
    cache: RankingCache,
    counters: RetrievalCounters,
    replay: crate::evaluator::ReplayMemo,
}

impl<'a> CredenceEngine<'a> {
    /// Build the engine: trains the corpus-level Doc2Vec space.
    pub fn new(ranker: &'a dyn Ranker, config: EngineConfig) -> Self {
        let index = ranker.index();
        let analyzer = index.analyzer();
        let sequences: Vec<Vec<usize>> = index
            .documents()
            .iter()
            .map(|d| {
                analyzer
                    .analyze(&d.body)
                    .iter()
                    .filter_map(|t| index.vocabulary().id(t).map(|x| x as usize))
                    .collect()
            })
            .collect();
        let doc2vec = Doc2Vec::train(&sequences, index.vocabulary().len(), &config.doc2vec);
        let cache = RankingCache::new(config.ranking_cache);
        Self {
            ranker,
            doc2vec,
            config,
            cache,
            counters: RetrievalCounters::default(),
            replay: crate::evaluator::ReplayMemo::new(REPLAY_MEMO_CAPACITY),
        }
    }

    /// The engine's posting-replay memo (exposed for parity tests and
    /// diagnostics). The memo is scoped to this engine — and therefore to
    /// one corpus generation — so a corpus publish invalidates it by
    /// construction.
    pub fn replay_memo(&self) -> &crate::evaluator::ReplayMemo {
        &self.replay
    }

    /// Cached corpus ranking for `query` using the engine's configured
    /// retrieval knobs.
    fn cached_ranking(&self, query: &str) -> std::sync::Arc<RankedList> {
        self.cached_ranking_with(query, &self.config.retrieval)
    }

    /// Cached corpus ranking for `query` with per-request retrieval knobs.
    ///
    /// The cache is keyed by query alone for whole-corpus requests: every
    /// strategy produces bit-identical rankings, so a cached entry
    /// satisfies any `opts` (the knobs only steer *how* a miss is
    /// computed). A partition filter changes *what* is ranked, so
    /// partitioned requests (router fanout legs) get a composite key —
    /// `\u{0}` cannot survive tokenisation, so composite keys cannot
    /// collide with real queries.
    fn cached_ranking_with(&self, query: &str, opts: &TopKOptions) -> std::sync::Arc<RankedList> {
        use std::sync::atomic::Ordering::Relaxed;
        let key = match &opts.partition {
            Some(p) => {
                std::borrow::Cow::Owned(format!("{query}\u{0}partition={}/{}", p.index, p.count))
            }
            None => std::borrow::Cow::Borrowed(query),
        };
        self.cache.get_or_insert(&key, || {
            let n = self.ranker.index().num_docs();
            let fallback_threads =
                if self.config.parallel_threshold > 0 && n >= self.config.parallel_threshold {
                    std::thread::available_parallelism()
                        .map(|p| p.get())
                        .unwrap_or(1)
                } else {
                    1
                };
            let (list, stats) = rank_corpus_with(self.ranker, query, opts, fallback_threads);
            self.counters
                .docs_scored
                .fetch_add(stats.docs_scored, Relaxed);
            self.counters
                .docs_pruned
                .fetch_add(stats.docs_pruned, Relaxed);
            self.counters
                .shards_used
                .fetch_add(stats.shards_used, Relaxed);
            self.counters
                .blocks_decoded
                .fetch_add(stats.blocks_decoded, Relaxed);
            self.counters
                .blocks_skipped
                .fetch_add(stats.blocks_skipped, Relaxed);
            list
        })
    }

    /// Number of rankings currently cached (diagnostics).
    pub fn cached_queries(&self) -> usize {
        self.cache.len()
    }

    /// A snapshot of the engine's retrieval and cache counters.
    pub fn retrieval_stats(&self) -> RetrievalStats {
        use std::sync::atomic::Ordering::Relaxed;
        RetrievalStats {
            docs_scored: self.counters.docs_scored.load(Relaxed),
            docs_pruned: self.counters.docs_pruned.load(Relaxed),
            shards_used: self.counters.shards_used.load(Relaxed),
            blocks_decoded: self.counters.blocks_decoded.load(Relaxed),
            blocks_skipped: self.counters.blocks_skipped.load(Relaxed),
            cache_hits: self.cache.hits.load(Relaxed),
            cache_misses: self.cache.misses.load(Relaxed),
            cache_size: self.cache.len() as u64,
            cache_evictions: self.cache.evictions.load(Relaxed),
        }
    }

    /// The evaluation options to use for a request: an explicitly customised
    /// request config wins; a default-valued one inherits the engine's.
    fn effective_eval(&self, requested: EvalOptions) -> EvalOptions {
        if requested == EvalOptions::default() {
            self.config.eval
        } else {
            requested
        }
    }

    /// The underlying ranker.
    pub fn ranker(&self) -> &dyn Ranker {
        self.ranker
    }

    /// The trained Doc2Vec model (exposed for diagnostics and benches).
    pub fn doc2vec(&self) -> &Doc2Vec {
        &self.doc2vec
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// `POST /rank` — the top-k ranking for a query.
    pub fn rank(&self, query: &str, k: usize) -> Vec<RankedDoc> {
        let opts = self.config.retrieval;
        self.rank_with_options(query, k, &opts)
    }

    /// [`Self::rank`] with per-request retrieval knobs (the REST layer's
    /// `search_strategy` / `search_shards` overrides).
    pub fn rank_with_options(&self, query: &str, k: usize, opts: &TopKOptions) -> Vec<RankedDoc> {
        let index = self.ranker.index();
        let ranking = self.cached_ranking_with(query, opts);
        ranking
            .entries()
            .iter()
            .take(k)
            .enumerate()
            .map(|(i, &(doc, score))| {
                let d = index.document(doc).expect("ranked doc exists");
                RankedDoc {
                    doc,
                    rank: i + 1,
                    score,
                    name: d.name.clone(),
                    title: d.title.clone(),
                }
            })
            .collect()
    }

    /// The full corpus ranking (used by experiments). Served from the
    /// engine's ranking cache.
    pub fn full_ranking(&self, query: &str) -> RankedList {
        (*self.cached_ranking(query)).clone()
    }

    /// `POST /explain/sentence-removal` (§II-C).
    pub fn sentence_removal(
        &self,
        query: &str,
        k: usize,
        doc: DocId,
        config: &SentenceRemovalConfig,
    ) -> Result<SentenceRemovalResult, ExplainError> {
        let ranking = self.cached_ranking(query);
        let mut config = config.clone();
        config.eval = self.effective_eval(config.eval);
        crate::sentence_removal::explain_sentence_removal_memo(
            self.ranker,
            query,
            k,
            doc,
            &config,
            &ranking,
            Some(&self.replay),
        )
    }

    /// `POST /explain/query-augmentation` (§II-D).
    pub fn query_augmentation(
        &self,
        query: &str,
        k: usize,
        doc: DocId,
        config: &QueryAugmentationConfig,
    ) -> Result<QueryAugmentationResult, ExplainError> {
        let ranking = self.cached_ranking(query);
        let mut config = config.clone();
        config.eval = self.effective_eval(config.eval);
        explain_query_augmentation_ranked(self.ranker, query, k, doc, &config, &ranking)
    }

    /// `POST /explain/query-reduction` — the §II-D dual: minimal query-term
    /// removals that drop the document past `k`.
    pub fn query_reduction(
        &self,
        query: &str,
        k: usize,
        doc: DocId,
        config: &QueryReductionConfig,
    ) -> Result<QueryReductionResult, ExplainError> {
        let ranking = self.cached_ranking(query);
        let mut config = config.clone();
        config.eval = self.effective_eval(config.eval);
        explain_query_reduction_ranked(self.ranker, query, k, doc, &config, &ranking)
    }

    /// `POST /explain/term-removal` — the term-granularity ablation of
    /// §II-C's sentence removal.
    pub fn term_removal(
        &self,
        query: &str,
        k: usize,
        doc: DocId,
        config: &TermRemovalConfig,
    ) -> Result<TermRemovalResult, ExplainError> {
        let ranking = self.cached_ranking(query);
        let mut config = config.clone();
        config.eval = self.effective_eval(config.eval);
        crate::term_removal::explain_term_removal_memo(
            self.ranker,
            query,
            k,
            doc,
            &config,
            &ranking,
            Some(&self.replay),
        )
    }

    /// `POST /explain/feature_attribution` — the Rank-LIME local surrogate
    /// attribution family ([`crate::lime`]).
    pub fn feature_attribution(
        &self,
        query: &str,
        k: usize,
        doc: DocId,
        config: &crate::lime::FeatureAttributionConfig,
    ) -> Result<crate::lime::FeatureAttributionResult, ExplainError> {
        let ranking = self.cached_ranking(query);
        let mut config = config.clone();
        config.eval = self.effective_eval(config.eval);
        crate::lime::explain_feature_attribution_memo(
            self.ranker,
            query,
            k,
            doc,
            &config,
            &ranking,
            Some(&self.replay),
        )
    }

    /// `POST /explain/doc2vec-nearest` (§II-E, variant 1).
    pub fn doc2vec_nearest(
        &self,
        query: &str,
        k: usize,
        doc: DocId,
        n: usize,
    ) -> Result<Vec<InstanceExplanation>, ExplainError> {
        doc2vec_nearest(self.ranker, &self.doc2vec, query, k, doc, n)
    }

    /// `POST /explain/cosine-sampled` (§II-E, variant 2). `samples`
    /// overrides the configured default when `Some`.
    pub fn cosine_sampled(
        &self,
        query: &str,
        k: usize,
        doc: DocId,
        n: usize,
        samples: Option<usize>,
    ) -> Result<Vec<InstanceExplanation>, ExplainError> {
        let mut cfg = self.config.cosine;
        if let Some(s) = samples {
            cfg.samples = s;
        }
        cosine_sampled(self.ranker, query, k, doc, n, &cfg)
    }

    /// `POST /rerank` — the builder's free-form perturbation test (§III-C).
    pub fn builder_rerank(
        &self,
        query: &str,
        k: usize,
        doc: DocId,
        edited_body: &str,
    ) -> Result<BuilderOutcome, ExplainError> {
        let ranking = self.cached_ranking(query);
        test_perturbation_ranked(self.ranker, query, k, doc, edited_body, &ranking)
    }

    /// [`Self::builder_rerank`] under a request [`Budget`]: fails fast with
    /// `deadline_exceeded` / `cancelled` when the budget is already spent.
    pub fn builder_rerank_budgeted(
        &self,
        query: &str,
        k: usize,
        doc: DocId,
        edited_body: &str,
        budget: &Budget,
    ) -> Result<BuilderOutcome, ExplainError> {
        let ranking = self.cached_ranking(query);
        test_perturbation_budgeted_ranked(self.ranker, query, k, doc, edited_body, &ranking, budget)
    }

    /// Structured-edit variant of [`Self::builder_rerank`].
    pub fn builder_edits(
        &self,
        query: &str,
        k: usize,
        doc: DocId,
        edits: &[Edit],
    ) -> Result<BuilderOutcome, ExplainError> {
        let ranking = self.cached_ranking(query);
        test_edits_ranked(self.ranker, query, k, doc, edits, &ranking)
    }

    /// Documents most similar to *arbitrary text* (e.g. a builder edit in
    /// progress), via Doc2Vec inference — plausibility guidance the builder
    /// page can offer while the user types. Returns non-relevant documents
    /// only when `exclude_top_k_for` is set.
    pub fn nearest_to_text(
        &self,
        text: &str,
        n: usize,
        exclude_top_k_for: Option<(&str, usize)>,
    ) -> Vec<crate::explanation::InstanceExplanation> {
        let index = self.ranker.index();
        let analyzer = index.analyzer();
        let words: Vec<usize> = analyzer
            .analyze(text)
            .iter()
            .filter_map(|t| index.vocabulary().id(t).map(|x| x as usize))
            .collect();
        let inferred = self.doc2vec.infer(&words);
        let (excluded, ranking): (
            std::collections::HashSet<DocId>,
            Option<std::sync::Arc<RankedList>>,
        ) = match exclude_top_k_for {
            None => (Default::default(), None),
            Some((query, k)) => {
                let ranking = self.cached_ranking(query);
                (ranking.top_k(k).into_iter().collect(), Some(ranking))
            }
        };
        let neighbors = credence_embed::nearest_neighbors_quantized(
            &inferred,
            self.doc2vec.quantized(),
            |d| self.doc2vec.doc_vector(d),
            (0..index.num_docs()).filter(|&d| !excluded.contains(&DocId(d as u32))),
            n,
        );
        neighbors
            .into_iter()
            .map(|nb| {
                let doc = DocId(nb.item as u32);
                crate::explanation::InstanceExplanation {
                    doc,
                    similarity: nb.similarity as f64,
                    rank: ranking.as_ref().and_then(|r| r.rank_of(doc)),
                }
            })
            .collect()
    }

    /// Highlight spans + best snippet for a ranked document — the view the
    /// ranking table renders.
    pub fn snippet(
        &self,
        query: &str,
        doc: DocId,
        window: usize,
    ) -> Result<
        (
            Vec<credence_index::Highlight>,
            Option<credence_index::Snippet>,
        ),
        ExplainError,
    > {
        let index = self.ranker.index();
        let document = index.document(doc).ok_or(ExplainError::DocNotFound(doc))?;
        let analyzer = index.analyzer();
        let highlights = credence_index::highlight_terms(analyzer, query, &document.body);
        let snippet = credence_index::best_snippet(analyzer, query, &document.body, window);
        Ok((highlights, snippet))
    }

    /// `POST /topics` — LDA over the currently ranked top-k documents (the
    /// Browse-Topics modal).
    pub fn topics(
        &self,
        query: &str,
        k: usize,
        num_topics: usize,
    ) -> Result<Vec<TopicSummary>, ExplainError> {
        if num_topics == 0 {
            return Err(ExplainError::InvalidParameter(
                "num_topics must be at least 1",
            ));
        }
        let index = self.ranker.index();
        if index.analyze_query(query).is_empty() {
            return Err(ExplainError::EmptyQuery);
        }
        let ranking = self.cached_ranking(query);
        let top = ranking.top_k(k);
        if top.is_empty() {
            return Ok(Vec::new());
        }
        // Build a local vocabulary over the ranked documents only, so topic
        // term ids match the summary resolution step.
        let analyzer = index.analyzer();
        let mut vocab = Vocabulary::new();
        let docs: Vec<Vec<usize>> = top
            .iter()
            .map(|&d| {
                analyzer
                    .analyze(&index.document(d).expect("ranked doc exists").body)
                    .iter()
                    .map(|t| vocab.intern(t) as usize)
                    .collect()
            })
            .collect();
        let lda = LdaModel::fit(
            &docs,
            vocab.len(),
            &LdaConfig {
                num_topics,
                ..self.config.lda.clone()
            },
        );
        Ok(summarize_topics(&lda, &vocab, self.config.topic_terms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_index::{Bm25Params, Document, InvertedIndex};
    use credence_rank::Bm25Ranker;
    use credence_text::Analyzer;

    fn corpus() -> Vec<Document> {
        vec![
            Document::new(
                "n1",
                "Outbreak news",
                "covid outbreak covid outbreak dominates the news cycle this week entirely",
            ),
            Document::new(
                "n2",
                "More outbreak news",
                "The covid outbreak arrived quietly. Officials downplayed the covid outbreak \
                 for weeks before acting decisively.",
            ),
            Document::new(
                "n3",
                "Conspiracy corner",
                "The covid outbreak is a cover story. A secret microchip hides in every \
                 vaccine dose. The microchip tracks your movements constantly.",
            ),
            Document::new(
                "n4",
                "Copycat conspiracy",
                "A secret microchip hides in every vaccine dose. The microchip tracks your \
                 movements constantly and secretly.",
            ),
            Document::new(
                "n5",
                "Harbor drills",
                "Outbreak drills continue at the harbor facility through the weekend shift.",
            ),
            Document::new(
                "n7",
                "Gardens",
                "The garden show opens to record spring crowds.",
            ),
            Document::new(
                "n6",
                "Rowing",
                "The rowing club wins the spring regatta again.",
            ),
        ]
    }

    fn with_engine<T>(f: impl FnOnce(&CredenceEngine<'_>) -> T) -> T {
        let idx = InvertedIndex::build(corpus(), Analyzer::english());
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let engine = CredenceEngine::new(&ranker, EngineConfig::fast());
        f(&engine)
    }

    #[test]
    fn rank_endpoint_returns_metadata() {
        with_engine(|e| {
            let rows = e.rank("covid outbreak", 3);
            assert_eq!(rows.len(), 3);
            assert_eq!(rows[0].rank, 1);
            assert!(!rows[0].name.is_empty());
            assert!(rows.windows(2).all(|w| w[0].score >= w[1].score));
        });
    }

    #[test]
    fn rank_with_k_larger_than_matches() {
        with_engine(|e| {
            let rows = e.rank("covid outbreak", 50);
            assert_eq!(rows.len(), 4, "only matching docs are returned");
        });
    }

    #[test]
    fn all_four_explainers_run_through_the_engine() {
        with_engine(|e| {
            let k = 3;
            let doc = DocId(2); // the conspiracy doc, rank 3

            let sr = e
                .sentence_removal("covid outbreak", k, doc, &SentenceRemovalConfig::default())
                .unwrap();
            assert!(!sr.explanations.is_empty());

            let qa = e
                .query_augmentation(
                    "covid outbreak",
                    k,
                    doc,
                    &QueryAugmentationConfig {
                        n: 1,
                        threshold: 1,
                        ..Default::default()
                    },
                )
                .unwrap();
            assert!(!qa.explanations.is_empty());

            let d2v = e.doc2vec_nearest("covid outbreak", k, doc, 1).unwrap();
            assert_eq!(d2v.len(), 1);

            let cs = e
                .cosine_sampled("covid outbreak", k, doc, 1, Some(10))
                .unwrap();
            assert_eq!(cs.len(), 1);
            assert_eq!(cs[0].doc, DocId(3), "the copycat doc");

            let b = e
                .builder_edits(
                    "covid outbreak",
                    k,
                    doc,
                    &[Edit::replace("covid", "flu"), Edit::remove("outbreak")],
                )
                .unwrap();
            assert!(b.valid);
        });
    }

    #[test]
    fn replay_memo_keeps_repeat_explanations_bit_identical() {
        with_engine(|e| {
            let k = 3;
            let doc = DocId(2);
            let sr_cfg = SentenceRemovalConfig::default();
            let tr_cfg = TermRemovalConfig::default();

            let sr1 = e
                .sentence_removal("covid outbreak", k, doc, &sr_cfg)
                .unwrap();
            let tr1 = e.term_removal("covid outbreak", k, doc, &tr_cfg).unwrap();
            assert_eq!(
                e.replay_memo().hits(),
                1,
                "the second explainer reuses the first one's pool scorer"
            );

            let sr2 = e
                .sentence_removal("covid outbreak", k, doc, &sr_cfg)
                .unwrap();
            let tr2 = e.term_removal("covid outbreak", k, doc, &tr_cfg).unwrap();
            assert!(
                e.replay_memo().hits() > 1,
                "repeat requests hit the replay memo"
            );
            assert_eq!(sr1, sr2, "memoised sentence removal is bit-identical");
            assert_eq!(tr1, tr2, "memoised term removal is bit-identical");

            // And the memoised path agrees with the memo-free library entry
            // point against the same ranking.
            let ranking = e.cached_ranking("covid outbreak");
            let fresh = crate::sentence_removal::explain_sentence_removal_ranked(
                e.ranker(),
                "covid outbreak",
                k,
                doc,
                &{
                    let mut c = sr_cfg.clone();
                    c.eval = e.config().eval;
                    c
                },
                &ranking,
            )
            .unwrap();
            assert_eq!(sr1, fresh, "memoised path matches the uncached path");
        });
    }

    #[test]
    fn retrieval_stats_report_cache_size_and_evictions() {
        let idx = InvertedIndex::build(corpus(), Analyzer::english());
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let mut config = EngineConfig::fast();
        config.ranking_cache = 2;
        let engine = CredenceEngine::new(&ranker, config);
        engine.rank("covid outbreak", 3);
        engine.rank("microchip", 3);
        let stats = engine.retrieval_stats();
        assert_eq!(stats.cache_size, 2);
        assert_eq!(stats.cache_evictions, 0);
        engine.rank("garden show", 3);
        let stats = engine.retrieval_stats();
        assert_eq!(stats.cache_size, 2, "capacity caps resident entries");
        assert_eq!(stats.cache_evictions, 1, "the LRU entry was evicted");
    }

    #[test]
    fn topics_endpoint_summarises_ranked_docs() {
        with_engine(|e| {
            let topics = e.topics("covid outbreak", 3, 2).unwrap();
            assert_eq!(topics.len(), 2);
            for t in &topics {
                assert!(!t.terms.is_empty());
                assert!(t.terms.len() <= e.config().topic_terms);
            }
            // Query terms dominate the ranked set, so they appear somewhere.
            let all: Vec<&str> = topics
                .iter()
                .flat_map(|t| t.terms.iter().map(|(s, _)| s.as_str()))
                .collect();
            assert!(all.contains(&"covid") || all.contains(&"outbreak"));
        });
    }

    #[test]
    fn topics_validation() {
        with_engine(|e| {
            assert!(e.topics("covid", 3, 0).is_err());
            assert!(e.topics("", 3, 2).is_err());
            assert!(e.topics("covid", 0, 2).unwrap().is_empty());
        });
    }

    #[test]
    fn nearest_to_text_finds_similar_documents() {
        with_engine(|e| {
            // Text close to the copycat conspiracy doc.
            let out = e.nearest_to_text(
                "secret microchip hides in every vaccine dose tracking movements",
                2,
                None,
            );
            assert_eq!(out.len(), 2);
            let found: Vec<u32> = out.iter().map(|x| x.doc.0).collect();
            assert!(
                found.contains(&2) || found.contains(&3),
                "conspiracy docs expected, got {found:?}"
            );
        });
    }

    #[test]
    fn nearest_to_text_can_exclude_the_top_k() {
        with_engine(|e| {
            let out = e.nearest_to_text(
                "covid outbreak dominates the news",
                3,
                Some(("covid outbreak", 3)),
            );
            let ranking = e.full_ranking("covid outbreak");
            let top: Vec<_> = ranking.top_k(3);
            for inst in &out {
                assert!(!top.contains(&inst.doc));
            }
        });
    }

    #[test]
    fn snippet_endpoint_highlights_query_terms() {
        with_engine(|e| {
            let (highlights, snippet) = e.snippet("covid outbreak", DocId(0), 8).unwrap();
            assert!(!highlights.is_empty());
            let snippet = snippet.unwrap();
            assert!(snippet.hits > 0);
            assert!(e.snippet("covid", DocId(99), 8).is_err());
        });
    }

    #[test]
    fn parallel_threshold_changes_nothing_observable() {
        let idx = InvertedIndex::build(corpus(), Analyzer::english());
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let serial = CredenceEngine::new(&ranker, EngineConfig::fast());
        let parallel = CredenceEngine::new(
            &ranker,
            EngineConfig {
                parallel_threshold: 1,
                ..EngineConfig::fast()
            },
        );
        let a = serial.full_ranking("covid outbreak");
        let b = parallel.full_ranking("covid outbreak");
        assert_eq!(a.entries(), b.entries());
    }

    #[test]
    fn ranking_cache_fills_and_serves() {
        with_engine(|e| {
            assert_eq!(e.cached_queries(), 0);
            let a = e.full_ranking("covid outbreak");
            assert_eq!(e.cached_queries(), 1);
            let b = e.full_ranking("covid outbreak");
            assert_eq!(e.cached_queries(), 1, "second call hits the cache");
            assert_eq!(a.entries(), b.entries());
            e.rank("outbreak drills", 3);
            assert_eq!(e.cached_queries(), 2);
        });
    }

    #[test]
    fn ranking_cache_evicts_least_recently_used() {
        let idx = InvertedIndex::build(corpus(), Analyzer::english());
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let engine = CredenceEngine::new(
            &ranker,
            EngineConfig {
                ranking_cache: 2,
                ..EngineConfig::fast()
            },
        );
        engine.full_ranking("covid");
        engine.full_ranking("outbreak");
        engine.full_ranking("covid"); // touch: covid becomes most recent
        engine.full_ranking("spring"); // evicts "outbreak", not "covid"
        assert_eq!(engine.cached_queries(), 2);
        let before = engine.retrieval_stats();
        engine.full_ranking("covid");
        let after = engine.retrieval_stats();
        assert_eq!(after.cache_hits, before.cache_hits + 1, "covid survived");
        engine.full_ranking("outbreak");
        assert_eq!(
            engine.retrieval_stats().cache_misses,
            after.cache_misses + 1,
            "outbreak was evicted"
        );
    }

    #[test]
    fn retrieval_stats_accumulate() {
        with_engine(|e| {
            assert_eq!(e.retrieval_stats(), RetrievalStats::default());
            e.rank("covid outbreak", 3);
            let s = e.retrieval_stats();
            assert!(s.docs_scored > 0, "ranking scored documents");
            assert_eq!(s.cache_misses, 1);
            assert_eq!(s.cache_hits, 0);
            e.rank("covid outbreak", 3);
            let s = e.retrieval_stats();
            assert_eq!(s.cache_hits, 1, "second rank hits the cache");
            assert_eq!(s.cache_misses, 1, "no recomputation on a hit");
        });
    }

    #[test]
    fn rank_with_options_matches_default_rank() {
        use credence_index::SearchStrategy;
        with_engine(|e| {
            let base = e.rank("covid outbreak", 4);
            for strategy in [
                SearchStrategy::Exhaustive,
                SearchStrategy::Pruned,
                SearchStrategy::Sharded,
            ] {
                let opts = TopKOptions {
                    strategy,
                    ..TopKOptions::default()
                };
                // Fresh engine per strategy so the cache cannot mask the path.
                let idx = InvertedIndex::build(corpus(), Analyzer::english());
                let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
                let engine = CredenceEngine::new(&ranker, EngineConfig::fast());
                let rows = engine.rank_with_options("covid outbreak", 4, &opts);
                assert_eq!(rows.len(), base.len(), "{strategy:?}");
                for (a, b) in rows.iter().zip(&base) {
                    assert_eq!(a.doc, b.doc, "{strategy:?}");
                    assert_eq!(a.score.to_bits(), b.score.to_bits(), "{strategy:?}");
                }
            }
        });
    }

    #[test]
    fn engine_is_deterministic() {
        let a = with_engine(|e| e.doc2vec_nearest("covid outbreak", 3, DocId(2), 2).unwrap());
        let b = with_engine(|e| e.doc2vec_nearest("covid outbreak", 3, DocId(2), 2).unwrap());
        assert_eq!(a, b);
    }
}
