//! Named-corpus registry with generation-snapshot engines.
//!
//! Multi-tenant serving: one process, many corpora. Each [`Corpus`] wraps a
//! [`GenerationIndex`] (immutable segments + delta log, `credence_index`)
//! and publishes a [`CorpusSnapshot`] per generation — the segment, a ranker
//! over it, and a fully built [`CredenceEngine`] (Doc2Vec space, ranking
//! cache). Requests resolve a snapshot once and then run entirely against
//! immutable state, so every ranking and explanation is bit-reproducible
//! against the generation it names, even while writes advance the corpus.
//!
//! Locking discipline, from the outside in:
//!
//! - [`CorpusRegistry`] holds one governor lock over the name → corpus map.
//!   Register, hot-swap, and remove are serialized there; lookups clone an
//!   `Arc` and leave.
//! - Each corpus holds its live snapshot behind a `RwLock<Arc<_>>`; readers
//!   take the read lock just long enough to clone the `Arc`.
//! - Retired generations live in a `Weak` history map: a generation stays
//!   resolvable exactly as long as someone (an in-flight budget, a queued
//!   job) still pins its `Arc`. When the last pin drops, the segment, the
//!   engine, and its Doc2Vec space are reclaimed and the generation answers
//!   `GenerationGone`.
//!
//! The snapshot cell is self-referential (engine borrows ranker borrows
//! segment) and uses two documented `unsafe` lifetime extensions; see
//! [`CorpusSnapshot::build`] for the invariants.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, Weak};
use std::time::Duration;

use credence_index::{DeltaOp, DocExists, Document, GenerationIndex, InvertedIndex};
use credence_rank::Ranker;
use credence_text::Analyzer;

use crate::engine::{CredenceEngine, EngineConfig, RetrievalStats};

/// Builds a ranker over a (generation's) segment.
///
/// The `'static` on the argument is the snapshot cell's internal lifetime
/// claim: the reference is only valid as long as the snapshot that invoked
/// the factory, and the returned ranker must not stash it anywhere that
/// outlives the returned box.
pub type RankerFactory = Arc<dyn Fn(&'static InvertedIndex) -> Box<dyn Ranker> + Send + Sync>;

/// A BM25 factory with default parameters — the registry's default model.
pub fn bm25_factory() -> RankerFactory {
    Arc::new(|index| {
        Box::new(credence_rank::Bm25Ranker::new(
            index,
            credence_index::Bm25Params::default(),
        ))
    })
}

/// Why a snapshot could not be resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// No corpus registered under that name.
    CorpusNotFound,
    /// The requested generation is not live and no reader pins it (or it
    /// never existed).
    GenerationGone,
}

/// One immutable generation of one corpus: segment + ranker + engine.
///
/// Everything a request needs, resolved once; holding the `Arc` pins the
/// generation alive (and resolvable) until the holder drops it.
pub struct CorpusSnapshot {
    // Field order is drop order: the engine borrows the ranker, the ranker
    // borrows the segment. Do not reorder.
    engine: CredenceEngine<'static>,
    #[allow(dead_code)] // owned for the engine's borrow, never read directly
    ranker: Box<dyn Ranker>,
    index: Arc<InvertedIndex>,
    generation: u64,
    corpus: String,
    /// Retired-counter sink shared with the owning corpus: on drop, this
    /// snapshot's retrieval counters fold in here so corpus-level totals
    /// stay monotone across generation swaps.
    stats_sink: Arc<Mutex<RetrievalStats>>,
}

impl CorpusSnapshot {
    /// Assemble the self-referential cell.
    ///
    /// SAFETY invariants making the two lifetime extensions sound:
    /// - `index` is an `Arc`: the `InvertedIndex` is heap-allocated and its
    ///   address is stable for the life of this struct (the struct owns one
    ///   strong count, dropped last by field order).
    /// - `ranker` is a `Box`: the ranker is heap-allocated with a stable
    ///   address; moving the `CorpusSnapshot` moves only the pointers.
    /// - Field order guarantees the engine drops before the ranker, and the
    ///   ranker before the segment, so no borrow dangles during drop.
    /// - Accessors only hand out the engine at the struct's own lifetime;
    ///   the fabricated `'static` never escapes except through
    ///   [`Self::engine`], whose contract is documented there.
    fn build(
        corpus: String,
        generation: u64,
        index: Arc<InvertedIndex>,
        factory: &RankerFactory,
        config: EngineConfig,
        stats_sink: Arc<Mutex<RetrievalStats>>,
    ) -> Arc<Self> {
        let index_ref: &'static InvertedIndex = unsafe { &*Arc::as_ptr(&index) };
        let ranker: Box<dyn Ranker> = factory(index_ref);
        let ranker_ref: &'static dyn Ranker = unsafe { &*(ranker.as_ref() as *const dyn Ranker) };
        let engine = CredenceEngine::new(ranker_ref, config);
        Arc::new(Self {
            engine,
            ranker,
            index,
            generation,
            corpus,
            stats_sink,
        })
    }

    /// The engine for this generation.
    ///
    /// The `'static` parameter is internal; treat the result as borrowed
    /// from `self` and do not copy references out of it beyond the life of
    /// the snapshot `Arc`.
    pub fn engine(&self) -> &CredenceEngine<'static> {
        &self.engine
    }

    /// The generation's immutable segment.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The generation number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The owning corpus name.
    pub fn corpus(&self) -> &str {
        &self.corpus
    }

    /// Number of documents in this generation.
    pub fn num_docs(&self) -> usize {
        self.index.num_docs()
    }
}

impl Drop for CorpusSnapshot {
    fn drop(&mut self) {
        let mut stats = self.engine.retrieval_stats();
        // `cache_size` is a gauge over *live* caches; a dead snapshot holds
        // no cache, so its resident-entry count must not linger in the sink.
        stats.cache_size = 0;
        add_stats(&mut self.stats_sink.lock().unwrap(), stats);
    }
}

impl std::fmt::Debug for CorpusSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CorpusSnapshot")
            .field("corpus", &self.corpus)
            .field("generation", &self.generation)
            .field("num_docs", &self.num_docs())
            .finish()
    }
}

fn add_stats(total: &mut RetrievalStats, part: RetrievalStats) {
    total.docs_scored += part.docs_scored;
    total.docs_pruned += part.docs_pruned;
    total.shards_used += part.shards_used;
    total.blocks_decoded += part.blocks_decoded;
    total.blocks_skipped += part.blocks_skipped;
    total.cache_hits += part.cache_hits;
    total.cache_misses += part.cache_misses;
    total.cache_size += part.cache_size;
    total.cache_evictions += part.cache_evictions;
}

/// Summary row for listings and metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusInfo {
    /// Registered name.
    pub name: String,
    /// Live generation number.
    pub generation: u64,
    /// Documents in the live generation.
    pub num_docs: usize,
    /// Staged ops not yet folded.
    pub pending_ops: usize,
    /// Generations published by merges (excludes generation 0).
    pub merges: u64,
}

/// Seq tickets published at the snapshot level.
#[derive(Debug)]
struct PublishState {
    last_published_seq: u64,
}

/// A live, mutable corpus: generation index + snapshot publication.
pub struct Corpus {
    name: String,
    gen_index: GenerationIndex,
    factory: RankerFactory,
    config: EngineConfig,
    current: RwLock<Arc<CorpusSnapshot>>,
    /// Retired generations, resolvable while externally pinned.
    history: Mutex<HashMap<u64, Weak<CorpusSnapshot>>>,
    stats_sink: Arc<Mutex<RetrievalStats>>,
    publish: Mutex<PublishState>,
    published: Condvar,
    /// Wakes the merge thread when ops are staged or shutdown is requested.
    work: Mutex<()>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    merger: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Corpus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Corpus")
            .field("name", &self.name)
            .field("generation", &self.generation())
            .finish()
    }
}

impl Corpus {
    /// Build generation 0 and start the corpus's merge thread.
    pub fn spawn(
        name: impl Into<String>,
        docs: Vec<Document>,
        analyzer: Analyzer,
        factory: RankerFactory,
        config: EngineConfig,
    ) -> Arc<Self> {
        let name = name.into();
        let gen_index = GenerationIndex::new(docs, analyzer);
        let (generation, index) = gen_index.snapshot();
        let stats_sink = Arc::new(Mutex::new(RetrievalStats::default()));
        let snapshot = CorpusSnapshot::build(
            name.clone(),
            generation,
            index,
            &factory,
            config.clone(),
            Arc::clone(&stats_sink),
        );
        let corpus = Arc::new(Self {
            name,
            gen_index,
            factory,
            config,
            current: RwLock::new(snapshot),
            history: Mutex::new(HashMap::new()),
            stats_sink,
            publish: Mutex::new(PublishState {
                last_published_seq: 0,
            }),
            published: Condvar::new(),
            work: Mutex::new(()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            merger: Mutex::new(None),
        });
        let thread_corpus = Arc::clone(&corpus);
        let handle = std::thread::Builder::new()
            .name(format!("credence-merge-{}", corpus.name))
            .spawn(move || thread_corpus.merge_loop())
            .expect("spawn corpus merge thread");
        *corpus.merger.lock().unwrap() = Some(handle);
        corpus
    }

    fn merge_loop(&self) {
        loop {
            {
                let mut guard = self.work.lock().unwrap();
                while self.gen_index.pending_ops() == 0 && !self.shutdown.load(Ordering::SeqCst) {
                    let (g, _) = self
                        .work_cv
                        .wait_timeout(guard, Duration::from_millis(200))
                        .unwrap();
                    guard = g;
                }
            }
            if self.gen_index.pending_ops() == 0 && self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            self.merge_and_publish();
        }
    }

    /// Fold the delta and publish a new snapshot (no-op on an empty delta).
    /// The merge thread calls this; tests may call it directly for
    /// deterministic sequencing.
    pub fn merge_and_publish(&self) {
        let Some(outcome) = self.gen_index.merge_once() else {
            return;
        };
        let snapshot = CorpusSnapshot::build(
            self.name.clone(),
            outcome.generation,
            outcome.index,
            &self.factory,
            self.config.clone(),
            Arc::clone(&self.stats_sink),
        );
        let retired = {
            let mut current = self.current.write().unwrap();
            std::mem::replace(&mut *current, snapshot)
        };
        {
            let mut history = self.history.lock().unwrap();
            history.retain(|_, weak| weak.strong_count() > 0);
            history.insert(retired.generation(), Arc::downgrade(&retired));
        }
        drop(retired); // release our pin before announcing the publish
        {
            let mut publish = self.publish.lock().unwrap();
            publish.last_published_seq = outcome.folded_seq;
            self.published.notify_all();
        }
    }

    /// Registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Live generation number.
    pub fn generation(&self) -> u64 {
        self.current.read().unwrap().generation()
    }

    /// Pin the live snapshot.
    pub fn snapshot(&self) -> Arc<CorpusSnapshot> {
        Arc::clone(&self.current.read().unwrap())
    }

    /// Pin a snapshot: the live one, or a retired generation still pinned
    /// elsewhere.
    pub fn snapshot_at(
        &self,
        generation: Option<u64>,
    ) -> Result<Arc<CorpusSnapshot>, SnapshotError> {
        let current = self.snapshot();
        let Some(generation) = generation else {
            return Ok(current);
        };
        if generation == current.generation() {
            return Ok(current);
        }
        self.history
            .lock()
            .unwrap()
            .get(&generation)
            .and_then(Weak::upgrade)
            .ok_or(SnapshotError::GenerationGone)
    }

    /// Stage a mutation; returns its sequence ticket for
    /// [`Self::wait_for_seq`].
    pub fn stage(&self, op: DeltaOp) -> u64 {
        let seq = self.gen_index.stage(op);
        self.kick_merger();
        seq
    }

    /// Stage an insert that 409s (at the API layer) when the name exists.
    pub fn stage_insert(&self, doc: Document) -> Result<u64, DocExists> {
        let seq = self.gen_index.stage_insert(doc)?;
        self.kick_merger();
        Ok(seq)
    }

    /// Whether a document name exists in the effective corpus (live
    /// snapshot overridden by staged ops).
    pub fn doc_exists(&self, name: &str) -> bool {
        self.gen_index.doc_exists(name)
    }

    fn kick_merger(&self) {
        let _guard = self.work.lock().unwrap();
        self.work_cv.notify_all();
    }

    /// Block until the snapshot containing ticket `seq` is published.
    pub fn wait_for_seq(&self, seq: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut publish = self.publish.lock().unwrap();
        while publish.last_published_seq < seq {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return false;
            }
            let (guard, wait) = self.published.wait_timeout(publish, left).unwrap();
            publish = guard;
            if wait.timed_out() && publish.last_published_seq < seq {
                return false;
            }
        }
        true
    }

    /// Summary for listings and metrics.
    pub fn info(&self) -> CorpusInfo {
        let snapshot = self.snapshot();
        CorpusInfo {
            name: self.name.clone(),
            generation: snapshot.generation(),
            num_docs: snapshot.num_docs(),
            pending_ops: self.gen_index.pending_ops(),
            merges: self.gen_index.merges(),
        }
    }

    /// Corpus-total retrieval counters: retired generations (the sink) plus
    /// every still-live snapshot. Monotone across generation swaps.
    pub fn retrieval_stats(&self) -> RetrievalStats {
        let mut total = *self.stats_sink.lock().unwrap();
        let current = self.snapshot();
        add_stats(&mut total, current.engine().retrieval_stats());
        let history = self.history.lock().unwrap();
        for weak in history.values() {
            if let Some(snapshot) = weak.upgrade() {
                add_stats(&mut total, snapshot.engine().retrieval_stats());
            }
        }
        total
    }

    /// Stop and join the merge thread, folding any remaining staged ops
    /// first. Idempotent.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.kick_merger();
        let handle = self.merger.lock().unwrap().take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

/// The governor-locked name → corpus map.
pub struct CorpusRegistry {
    corpora: Mutex<BTreeMap<String, Arc<Corpus>>>,
}

impl Default for CorpusRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CorpusRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self.corpora.lock().unwrap().keys().cloned().collect();
        f.debug_struct("CorpusRegistry")
            .field("corpora", &names)
            .finish()
    }
}

impl CorpusRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            corpora: Mutex::new(BTreeMap::new()),
        }
    }

    /// Register (or hot-swap) a corpus under `name`. The replaced corpus,
    /// if any, is shut down; generations pinned from it stay readable
    /// until their holders drop.
    pub fn register(
        &self,
        name: impl Into<String>,
        docs: Vec<Document>,
        analyzer: Analyzer,
        factory: RankerFactory,
        config: EngineConfig,
    ) -> Arc<Corpus> {
        let name = name.into();
        let corpus = Corpus::spawn(name.clone(), docs, analyzer, factory, config);
        let replaced = {
            let mut corpora = self.corpora.lock().unwrap();
            corpora.insert(name, Arc::clone(&corpus))
        };
        if let Some(old) = replaced {
            old.shutdown();
        }
        corpus
    }

    /// Look up a corpus by name.
    pub fn get(&self, name: &str) -> Option<Arc<Corpus>> {
        self.corpora.lock().unwrap().get(name).cloned()
    }

    /// Resolve a pinned snapshot in one step.
    pub fn snapshot(
        &self,
        name: &str,
        generation: Option<u64>,
    ) -> Result<Arc<CorpusSnapshot>, SnapshotError> {
        self.get(name)
            .ok_or(SnapshotError::CorpusNotFound)?
            .snapshot_at(generation)
    }

    /// Remove a corpus; returns whether it existed. The merge thread is
    /// joined; pinned snapshots stay readable until dropped.
    pub fn remove(&self, name: &str) -> bool {
        let removed = self.corpora.lock().unwrap().remove(name);
        match removed {
            Some(corpus) => {
                corpus.shutdown();
                true
            }
            None => false,
        }
    }

    /// Registered names in sorted order.
    pub fn names(&self) -> Vec<String> {
        self.corpora.lock().unwrap().keys().cloned().collect()
    }

    /// Summaries for every corpus, sorted by name.
    pub fn list(&self) -> Vec<CorpusInfo> {
        let corpora: Vec<Arc<Corpus>> = self.corpora.lock().unwrap().values().cloned().collect();
        corpora.iter().map(|c| c.info()).collect()
    }

    /// Number of registered corpora.
    pub fn len(&self) -> usize {
        self.corpora.lock().unwrap().len()
    }

    /// Whether no corpora are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Process-total retrieval counters across every corpus.
    pub fn total_retrieval_stats(&self) -> RetrievalStats {
        let corpora: Vec<Arc<Corpus>> = self.corpora.lock().unwrap().values().cloned().collect();
        let mut total = RetrievalStats::default();
        for corpus in &corpora {
            add_stats(&mut total, corpus.retrieval_stats());
        }
        total
    }

    /// Shut down every corpus's merge thread (used by tests and orderly
    /// process exit; the server normally leaks its state).
    pub fn shutdown_all(&self) {
        let corpora: Vec<Arc<Corpus>> = self.corpora.lock().unwrap().values().cloned().collect();
        for corpus in &corpora {
            corpus.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(name: &str, body: &str) -> Document {
        Document::new(name, name.to_uppercase(), body)
    }

    fn docs() -> Vec<Document> {
        vec![
            doc("n1", "vaccines are safe and effective against covid"),
            doc("n2", "masks reduce transmission of the virus"),
            doc("n3", "vitamins do not cure covid infections"),
        ]
    }

    fn registry() -> CorpusRegistry {
        let registry = CorpusRegistry::new();
        registry.register(
            "default",
            docs(),
            Analyzer::english(),
            bm25_factory(),
            EngineConfig::fast(),
        );
        registry
    }

    #[test]
    fn register_get_list_remove() {
        let registry = registry();
        assert_eq!(registry.len(), 1);
        registry.register(
            "tenant-b",
            vec![doc("x", "a second tenant corpus")],
            Analyzer::english(),
            bm25_factory(),
            EngineConfig::fast(),
        );
        assert_eq!(registry.names(), ["default", "tenant-b"]);
        let infos = registry.list();
        assert_eq!(infos[1].name, "tenant-b");
        assert_eq!(infos[1].generation, 0);
        assert_eq!(infos[1].num_docs, 1);
        assert!(registry.remove("tenant-b"));
        assert!(!registry.remove("tenant-b"));
        assert!(registry.get("tenant-b").is_none());
        registry.shutdown_all();
    }

    #[test]
    fn snapshot_resolution_errors() {
        let registry = registry();
        assert_eq!(
            registry.snapshot("missing", None).unwrap_err(),
            SnapshotError::CorpusNotFound
        );
        assert_eq!(
            registry.snapshot("default", Some(7)).unwrap_err(),
            SnapshotError::GenerationGone
        );
        assert!(registry.snapshot("default", Some(0)).is_ok());
        registry.shutdown_all();
    }

    #[test]
    fn mutation_advances_generation_and_pins_hold() {
        let registry = registry();
        let corpus = registry.get("default").unwrap();
        let pinned = corpus.snapshot();
        assert_eq!(pinned.generation(), 0);
        let pinned_ranking = pinned.engine().rank("covid vaccines", 3);

        let ticket = corpus.stage(DeltaOp::Upsert(doc(
            "n4",
            "covid vaccines covid vaccines strongly relevant new doc",
        )));
        assert!(corpus.wait_for_seq(ticket, Duration::from_secs(10)));
        assert_eq!(corpus.generation(), 1);
        assert_eq!(corpus.snapshot().num_docs(), 4);

        // The pinned snapshot still resolves by number and still ranks the
        // old corpus bit-identically.
        let again = corpus.snapshot_at(Some(0)).unwrap();
        assert_eq!(again.generation(), 0);
        let replay = again.engine().rank("covid vaccines", 3);
        assert_eq!(replay.len(), pinned_ranking.len());
        for (a, b) in replay.iter().zip(pinned_ranking.iter()) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        registry.shutdown_all();
    }

    #[test]
    fn unpinned_generation_is_gone_after_swap() {
        let registry = registry();
        let corpus = registry.get("default").unwrap();
        let ticket = corpus.stage(DeltaOp::Delete("n3".into()));
        assert!(corpus.wait_for_seq(ticket, Duration::from_secs(10)));
        // Nothing pinned generation 0, so it has been reclaimed.
        assert_eq!(
            corpus.snapshot_at(Some(0)).unwrap_err(),
            SnapshotError::GenerationGone
        );
        registry.shutdown_all();
    }

    #[test]
    fn stage_insert_conflicts() {
        let registry = registry();
        let corpus = registry.get("default").unwrap();
        assert!(corpus.stage_insert(doc("n1", "dup")).is_err());
        assert!(corpus.stage_insert(doc("n9", "fresh")).is_ok());
        registry.shutdown_all();
    }

    #[test]
    fn retrieval_stats_survive_generation_swaps() {
        let registry = registry();
        let corpus = registry.get("default").unwrap();
        let snapshot = corpus.snapshot();
        snapshot.engine().rank("covid", 3);
        let before = corpus.retrieval_stats();
        assert!(before.cache_misses >= 1);
        drop(snapshot);

        let ticket = corpus.stage(DeltaOp::Delete("n2".into()));
        assert!(corpus.wait_for_seq(ticket, Duration::from_secs(10)));
        let after = corpus.retrieval_stats();
        assert!(
            after.cache_misses >= before.cache_misses,
            "counters must not reset on swap ({before:?} -> {after:?})"
        );
        registry.shutdown_all();
    }

    #[test]
    fn hot_swap_replaces_the_corpus() {
        let registry = registry();
        registry.register(
            "default",
            vec![doc("only", "a replacement corpus")],
            Analyzer::english(),
            bm25_factory(),
            EngineConfig::fast(),
        );
        let snapshot = registry.snapshot("default", None).unwrap();
        assert_eq!(snapshot.generation(), 0);
        assert_eq!(snapshot.num_docs(), 1);
        registry.shutdown_all();
    }
}
