//! Uniform sampling over standard range types, backing
//! [`crate::Rng::gen_range`].
//!
//! Integer ranges use Lemire's unbiased bounded draw; float ranges use the
//! `lo + u·(hi−lo)` affine map of a 53-bit (f64) / 24-bit (f32) uniform in
//! `[0, 1)`, matching what the former `rand` dependency did in practice.

use std::ops::{Range, RangeInclusive};

use crate::{Rng, RngCore};

/// A range that a uniform value of type `T` can be drawn from.
///
/// Implemented for `Range` and `RangeInclusive` over the integer types the
/// codebase uses, and `Range` over `f32`/`f64`. Empty ranges panic, like
/// `rand::Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draw one uniform value from `self`.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $as_u64:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Width as u64 of the unsigned distance; fits because the
                // widest supported type is 64-bit.
                let width = (self.end as $as_u64).wrapping_sub(self.start as $as_u64) as u64;
                let off = rng.gen_below(width);
                ((self.start as $as_u64).wrapping_add(off as $as_u64)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let width = (end as $as_u64).wrapping_sub(start as $as_u64) as u64;
                if width == u64::MAX {
                    // Full-domain inclusive range: every bit pattern valid.
                    return rng.next_u64() as $t;
                }
                let off = rng.gen_below(width + 1);
                ((start as $as_u64).wrapping_add(off as $as_u64)) as $t
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64,
    u16 => u64,
    u32 => u64,
    u64 => u64,
    usize => u64,
    i8 => i64,
    i16 => i64,
    i32 => i64,
    i64 => i64,
    isize => i64,
);

macro_rules! impl_float_range {
    ($($t:ty => $unit:ident),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                assert!(
                    self.start.is_finite() && self.end.is_finite(),
                    "gen_range: non-finite bound"
                );
                let u = rng.$unit();
                let x = self.start + u * (self.end - self.start);
                // Guard the open upper bound against rounding in the affine
                // map (can only trigger for extreme ranges).
                if x >= self.end {
                    <$t>::midpoint(self.start, self.end)
                } else {
                    x
                }
            }
        }
    )*};
}

impl_float_range!(f32 => gen_f32, f64 => gen_f64);

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn int_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0u32..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn inclusive_range_reaches_both_ends() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..=3 should appear");
    }

    #[test]
    fn float_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
            let y = rng.gen_range(-0.125f32..0.125);
            assert!((-0.125..0.125).contains(&y));
        }
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..1000 {
            let x = rng.gen_range(-100i32..-50);
            assert!((-100..-50).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(15);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(16);
        let mut hits = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            hits[rng.gen_range(0usize..10)] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            let dev = (h as f64 - (n / 10) as f64).abs() / (n / 10) as f64;
            assert!(dev < 0.05, "bucket {i}: {h}");
        }
    }
}
