//! The xoshiro256++ generator and its SplitMix64 seeder.
//!
//! xoshiro256++ (Blackman & Vigna, "Scrambled linear pseudorandom number
//! generators", 2019) is a 256-bit all-purpose generator: period 2^256 − 1,
//! passes BigCrush, a handful of shifts/rotates/xors per draw. It is not
//! cryptographic — fine here, where randomness only drives embedding
//! initialisation, Gibbs sampling, shuffling, and synthetic corpora.

use crate::{RngCore, SeedableRng};

/// SplitMix64 (Steele, Lea & Flood 2014): a tiny 64-bit generator whose
/// one-word state makes it the standard choice for expanding a small seed
/// into the 256-bit xoshiro state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start the sequence at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

/// xoshiro256++: the workspace's standard generator (`rngs::StdRng`).
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Build directly from a full 256-bit state. The state must not be all
    /// zero; prefer [`SeedableRng::seed_from_u64`], which guarantees that.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        Self { s }
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand through SplitMix64 so similar seeds yield unrelated states.
        // SplitMix64 is a bijection on u64, so at most one of the four words
        // can be zero — the state can never be all-zero.
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the public-domain xoshiro256plusplus.c by
    /// Blackman & Vigna: first outputs from the state {1, 2, 3, 4}.
    #[test]
    fn matches_reference_implementation() {
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // First three outputs for seed 1234567 (from the reference C code).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256PlusPlus::from_state([0; 4]);
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(99);
        let _ = a.next_u64();
        let mut b = a.clone();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
