//! In-repo pseudo-random number generation for the CREDENCE reproduction.
//!
//! The workspace is hermetic: no registry dependencies, so `rand` is not
//! available. This crate provides the small slice of functionality the
//! codebase actually uses — a seedable generator, uniform ints/floats over
//! ranges, Bernoulli draws, Fisher–Yates shuffling, and weighted/categorical
//! sampling (LDA's collapsed Gibbs conditional and word2vec-style negative
//! sampling) — with an API shaped like `rand` 0.8 so call sites read the
//! same way (`Rng`, `SeedableRng`, `rngs::StdRng`, `seq::SliceRandom`).
//!
//! The generator is xoshiro256++ (Blackman & Vigna 2019) seeded through
//! SplitMix64, the conventional pairing: SplitMix64 decorrelates small or
//! similar `u64` seeds before they reach the xoshiro state. Determinism is a
//! contract here, not a convenience — every stochastic substrate (Doc2Vec,
//! PV-DM, LDA, instance-based sampling, the synthetic corpus) must be
//! byte-reproducible under a fixed seed, and a regression test at the
//! workspace root (`tests/determinism.rs`) holds every future refactor to it.
//!
//! Stream stability: the exact value sequences produced by this crate are
//! allowed to change across PRs (tests assert *reproducibility under a
//! seed*, not specific values), but changing them invalidates recorded
//! experiment trajectories, so don't do it casually.

#![warn(missing_docs)]

pub mod range;
pub mod seq;
pub mod weighted;
pub mod xoshiro;

pub use range::SampleRange;
pub use xoshiro::{SplitMix64, Xoshiro256PlusPlus};

/// Convenience aliases matching `rand::rngs`.
pub mod rngs {
    /// The workspace's standard generator: xoshiro256++.
    pub type StdRng = super::Xoshiro256PlusPlus;
}

/// The minimal generator interface: a source of uniformly distributed
/// 64-bit words. Everything else is derived from this in [`Rng`].
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`],
    /// which is the better-mixed half for xoshiro-family generators).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng` for the one
/// constructor the codebase uses.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Two generators built from the
    /// same seed produce identical streams forever.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range, e.g. `rng.gen_range(0..k)`,
    /// `rng.gen_range(1..=6)`, or `rng.gen_range(-1.0..1.0)`.
    ///
    /// Panics when the range is empty, like `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`. `p` outside `[0, 1]` saturates.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    fn gen_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Unbiased uniform draw from `0..bound` (`bound > 0`) via Lemire's
    /// widening-multiply rejection method.
    fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below: bound must be positive");
        // Widening multiply maps next_u64 into [0, bound); reject the small
        // biased sliver at the bottom of each residue class.
        let mut m = (self.next_u64() as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                m = (self.next_u64() as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Draw an index in `0..weights.len()` with probability proportional to
    /// `weights[i]`. Non-finite or negative weights are treated as zero.
    /// Returns `None` when every weight is zero (or the slice is empty).
    ///
    /// This is the categorical draw LDA's collapsed Gibbs step and
    /// negative-sampling tables are built on; for repeated draws from one
    /// distribution prefer [`weighted::CumulativeTable`].
    fn sample_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        weighted::sample_weighted(self, weights)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(0xCAFE);
        let mut b = StdRng::seed_from_u64(0xCAFE);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn adjacent_seeds_are_decorrelated() {
        // SplitMix64 seeding must prevent the classic failure where seeds
        // 0 and 1 share most of their state.
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "adjacent seeds should share no outputs");
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn uniform_mean_and_variance_are_sane() {
        // Coarse statistical sanity: mean ≈ 1/2, variance ≈ 1/12.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_f64()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "variance {var}");
    }

    #[test]
    fn gen_below_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut hits = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            hits[rng.gen_below(7) as usize] += 1;
        }
        let expected = n / 7;
        for (i, &h) in hits.iter().enumerate() {
            let dev = (h as f64 - expected as f64).abs() / expected as f64;
            assert!(dev < 0.05, "bucket {i}: {h} vs {expected}");
        }
    }

    #[test]
    fn sample_weighted_matches_weights() {
        let mut rng = StdRng::seed_from_u64(7);
        let weights = [1.0, 0.0, 3.0];
        let mut hits = [0usize; 3];
        for _ in 0..40_000 {
            hits[rng.sample_weighted(&weights).unwrap()] += 1;
        }
        assert_eq!(hits[1], 0, "zero-weight index drawn");
        let ratio = hits[2] as f64 / hits[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio} should be near 3");
    }

    #[test]
    fn sample_weighted_rejects_degenerate() {
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(rng.sample_weighted(&[]), None);
        assert_eq!(rng.sample_weighted(&[0.0, 0.0]), None);
        assert_eq!(rng.sample_weighted(&[f64::NAN, -1.0]), None);
    }
}
