//! Weighted / categorical sampling.
//!
//! Two entry points:
//!
//! * [`sample_weighted`] — one-shot draw proportional to a weight slice
//!   (linear scan; right for distributions that change every draw, like
//!   LDA's collapsed Gibbs conditional).
//! * [`CumulativeTable`] — precomputed cumulative sums with binary-search
//!   draws (O(log n); right for fixed distributions sampled many times,
//!   like word2vec's unigram^0.75 negative-sampling table).

use crate::{Rng, RngCore};

/// Draw an index with probability proportional to `weights[i]`.
///
/// Negative, NaN, and infinite weights are treated as zero. Returns `None`
/// when the total mass is zero (including the empty slice).
pub fn sample_weighted<G: RngCore + ?Sized>(rng: &mut G, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights
        .iter()
        .copied()
        .filter(|w| w.is_finite() && *w > 0.0)
        .sum();
    if !(total > 0.0) || !total.is_finite() {
        return None;
    }
    let mut x = rng.gen_range(0.0..total);
    let mut last_positive = None;
    for (i, &w) in weights.iter().enumerate() {
        if w.is_finite() && w > 0.0 {
            last_positive = Some(i);
            x -= w;
            if x < 0.0 {
                return Some(i);
            }
        }
    }
    // Floating-point slack can leave a sliver of mass unconsumed; assign it
    // to the last positive-weight index.
    last_positive
}

/// Draw an index from a *cumulative* weight slice (non-decreasing, as built
/// by LDA's conditional accumulation). Returns the first index `i` with
/// `cumulative[i] > x` for a uniform `x` in `[0, total)`.
pub fn sample_cumulative<G: RngCore + ?Sized>(rng: &mut G, cumulative: &[f64]) -> Option<usize> {
    let &total = cumulative.last()?;
    if !(total > 0.0) || !total.is_finite() {
        return None;
    }
    let x = rng.gen_range(0.0..total);
    Some(
        cumulative
            .partition_point(|&c| c <= x)
            .min(cumulative.len() - 1),
    )
}

/// A fixed categorical distribution: cumulative sums + binary search.
#[derive(Debug, Clone)]
pub struct CumulativeTable {
    cumulative: Vec<f64>,
}

impl CumulativeTable {
    /// Build from non-negative weights. Returns `None` when the total mass
    /// is zero or non-finite.
    pub fn new(weights: impl IntoIterator<Item = f64>) -> Option<Self> {
        let mut cumulative = Vec::new();
        let mut acc = 0.0f64;
        for w in weights {
            if w.is_finite() && w > 0.0 {
                acc += w;
            }
            cumulative.push(acc);
        }
        if acc > 0.0 && acc.is_finite() {
            Some(Self { cumulative })
        } else {
            None
        }
    }

    /// Draw one index, in O(log n).
    pub fn sample<G: RngCore + ?Sized>(&self, rng: &mut G) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let x = rng.gen_range(0.0..total);
        // partition_point finds the first strictly-greater cumulative sum,
        // which skips zero-weight entries (their cumulative equals the
        // previous entry's).
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }

    /// Number of categories (including zero-weight ones).
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when the table covers no categories.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn table_rejects_degenerate_weights() {
        assert!(CumulativeTable::new([]).is_none());
        assert!(CumulativeTable::new([0.0, 0.0]).is_none());
        assert!(CumulativeTable::new([f64::NAN]).is_none());
        assert!(CumulativeTable::new([f64::INFINITY]).is_none());
    }

    #[test]
    fn table_never_draws_zero_weight() {
        let table = CumulativeTable::new([2.0, 0.0, 2.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..5000 {
            assert_ne!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn table_matches_proportions() {
        let table = CumulativeTable::new([1.0, 4.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(32);
        let mut hits = [0usize; 2];
        for _ in 0..50_000 {
            hits[table.sample(&mut rng)] += 1;
        }
        let ratio = hits[1] as f64 / hits[0] as f64;
        assert!((ratio - 4.0).abs() < 0.4, "ratio {ratio} should be near 4");
    }

    #[test]
    fn cumulative_draw_agrees_with_table() {
        let weights = [0.5, 1.5, 3.0];
        let cumulative: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, &w| {
                *acc += w;
                Some(*acc)
            })
            .collect();
        let mut a = StdRng::seed_from_u64(33);
        let mut b = StdRng::seed_from_u64(33);
        let table = CumulativeTable::new(weights).unwrap();
        for _ in 0..1000 {
            assert_eq!(
                sample_cumulative(&mut a, &cumulative),
                Some(table.sample(&mut b))
            );
        }
    }

    #[test]
    fn sample_cumulative_handles_empty() {
        let mut rng = StdRng::seed_from_u64(34);
        assert_eq!(sample_cumulative(&mut rng, &[]), None);
        assert_eq!(sample_cumulative(&mut rng, &[0.0]), None);
    }
}
