//! Slice utilities: shuffling and choosing, mirroring `rand::seq`.

use crate::{Rng, RngCore};

/// Random operations on slices, in the shape of `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place: a uniform draw over all `len!`
    /// permutations, deterministic under the generator's seed.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        // Durstenfeld's variant: swap each suffix head with a uniform pick
        // from the remaining prefix (inclusive of itself).
        for i in (1..self.len()).rev() {
            let j = rng.gen_below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_below(self.len() as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut v: Vec<u32> = (0..200).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..200).collect::<Vec<u32>>());
        assert_ne!(v, (0..200).collect::<Vec<u32>>(), "should actually move");
    }

    #[test]
    fn shuffle_deterministic_under_seed() {
        let shuffled = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v: Vec<u32> = (0..50).collect();
            v.shuffle(&mut rng);
            v
        };
        assert_eq!(shuffled(9), shuffled(9));
        assert_ne!(shuffled(9), shuffled(10));
    }

    #[test]
    fn shuffle_visits_all_positions() {
        // Element 0 should land roughly uniformly across indices.
        let mut rng = StdRng::seed_from_u64(22);
        let n = 10usize;
        let trials = 20_000;
        let mut pos_counts = vec![0usize; n];
        for _ in 0..trials {
            let mut v: Vec<usize> = (0..n).collect();
            v.shuffle(&mut rng);
            let p = v.iter().position(|&x| x == 0).unwrap();
            pos_counts[p] += 1;
        }
        let expected = trials / n;
        for (i, &c) in pos_counts.iter().enumerate() {
            let dev = (c as f64 - expected as f64).abs() / expected as f64;
            assert!(dev < 0.1, "position {i}: {c} vs {expected}");
        }
    }

    #[test]
    fn trivial_shuffles_are_noops() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut empty: [u8; 0] = [];
        empty.shuffle(&mut rng);
        let mut one = [7u8];
        one.shuffle(&mut rng);
        assert_eq!(one, [7]);
    }

    #[test]
    fn choose_covers_and_respects_empty() {
        let mut rng = StdRng::seed_from_u64(24);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1u8, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(*items.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
