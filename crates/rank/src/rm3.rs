//! RM3 pseudo-relevance feedback (Lavrenko & Croft relevance models, as
//! shipped in Anserini's `-rm3` flag).
//!
//! RM3 runs the original query, assumes the top `fb_docs` results are
//! relevant, estimates a relevance model over their terms, keeps the
//! `fb_terms` strongest, and re-queries with the expanded term set —
//! interpolating original and expansion weights with `alpha`.
//!
//! In this reproduction RM3 is a fourth black-box ranker family: it is the
//! most *query-dependent* model (perturbing a document in the feedback set
//! changes the expanded query itself), which makes it a stress test for the
//! explainers' black-box assumption — covered in `tests/black_box_rankers`-
//! style integration tests.

use std::collections::HashMap;

use credence_index::score::bm25_term_weight;
use credence_index::{
    search_top_k_with, search_weighted_top_k_with, Bm25Params, DocId, InvertedIndex, SearchHit,
    TopKOptions, TopKStats,
};
use credence_text::TermId;

use crate::ranker::Ranker;

/// RM3 configuration.
#[derive(Debug, Clone, Copy)]
pub struct Rm3Config {
    /// Number of feedback documents (Anserini default 10).
    pub fb_docs: usize,
    /// Number of expansion terms kept (Anserini default 10).
    pub fb_terms: usize,
    /// Weight of the *original* query (Anserini default 0.5).
    pub alpha: f64,
    /// BM25 parameters of the underlying scorer.
    pub bm25: Bm25Params,
}

impl Default for Rm3Config {
    fn default() -> Self {
        Self {
            fb_docs: 10,
            fb_terms: 10,
            alpha: 0.5,
            bm25: Bm25Params::default(),
        }
    }
}

/// A weighted expanded query.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpandedQuery {
    /// `(term, weight)` pairs, weights summing to ~1, sorted by weight
    /// descending (ties by term id).
    pub terms: Vec<(TermId, f64)>,
}

/// BM25 + RM3 ranker.
#[derive(Debug, Clone)]
pub struct Rm3Ranker<'a> {
    index: &'a InvertedIndex,
    config: Rm3Config,
}

impl<'a> Rm3Ranker<'a> {
    /// Create an RM3 ranker over `index`.
    pub fn new(index: &'a InvertedIndex, config: Rm3Config) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.alpha),
            "alpha must be in [0,1]"
        );
        assert!(config.fb_docs > 0 && config.fb_terms > 0);
        Self { index, config }
    }

    /// Build the expanded query for `query` (exposed for inspection and
    /// tests). Returns the original query weights when there is no feedback
    /// signal at all.
    pub fn expand(&self, query: &str) -> ExpandedQuery {
        let q = self.index.analyze_query(query);
        if q.is_empty() {
            return ExpandedQuery { terms: Vec::new() };
        }
        // Original query model: uniform over query occurrences.
        let mut original: HashMap<TermId, f64> = HashMap::new();
        for &t in &q {
            *original.entry(t).or_insert(0.0) += 1.0 / q.len() as f64;
        }

        // First pass: pruned BM25 top-k — bit-identical to scoring the whole
        // corpus, sorting (score desc, doc asc) and truncating to fb_docs.
        let (hits, _) = search_top_k_with(
            self.index,
            self.config.bm25,
            &q,
            self.config.fb_docs,
            &TopKOptions::default(),
        );
        let scored: Vec<(DocId, f64)> = hits.into_iter().map(|h| (h.doc, h.score)).collect();

        // Relevance model: P(t|R) ∝ Σ_d P(t|d) · score(d).
        let mut feedback: HashMap<TermId, f64> = HashMap::new();
        let score_sum: f64 = scored.iter().map(|&(_, s)| s).sum();
        if score_sum > 0.0 {
            for &(d, s) in &scored {
                let len = self.index.doc_len(d).max(1) as f64;
                for &(t, tf) in self.index.doc_terms(d) {
                    *feedback.entry(t).or_insert(0.0) += (tf as f64 / len) * (s / score_sum);
                }
            }
        }
        // Keep the strongest fb_terms.
        let mut fb: Vec<(TermId, f64)> = feedback.into_iter().collect();
        fb.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        fb.truncate(self.config.fb_terms);
        let fb_mass: f64 = fb.iter().map(|&(_, w)| w).sum();

        // Interpolate: alpha·original + (1−alpha)·feedback (normalised).
        let mut combined: HashMap<TermId, f64> = HashMap::new();
        for (&t, &w) in &original {
            *combined.entry(t).or_insert(0.0) += self.config.alpha * w;
        }
        if fb_mass > 0.0 {
            for &(t, w) in &fb {
                *combined.entry(t).or_insert(0.0) += (1.0 - self.config.alpha) * (w / fb_mass);
            }
        }
        let mut terms: Vec<(TermId, f64)> = combined.into_iter().collect();
        terms.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        ExpandedQuery { terms }
    }

    fn score_expanded_counts(
        &self,
        expanded: &ExpandedQuery,
        doc_terms: &[(TermId, u32)],
        doc_len: u32,
    ) -> f64 {
        expanded
            .terms
            .iter()
            .map(|&(t, w)| {
                let tf = doc_terms
                    .binary_search_by_key(&t, |&(x, _)| x)
                    .map(|i| doc_terms[i].1)
                    .unwrap_or(0);
                w * bm25_term_weight(self.config.bm25, self.index.stats(), t, tf, doc_len)
            })
            .sum()
    }
}

impl Ranker for Rm3Ranker<'_> {
    fn name(&self) -> &str {
        "bm25+rm3"
    }

    fn index(&self) -> &InvertedIndex {
        self.index
    }

    fn score_doc(&self, query: &str, doc: DocId) -> f64 {
        let expanded = self.expand(query);
        self.score_expanded_counts(
            &expanded,
            self.index.doc_terms(doc),
            self.index.doc_len(doc),
        )
    }

    fn score_text(&self, query: &str, body: &str) -> f64 {
        let expanded = self.expand(query);
        let (terms, len) = self.index.analyze_adhoc(body);
        self.score_expanded_counts(&expanded, &terms, len)
    }

    fn retrieve_top_k(
        &self,
        query: &str,
        k: usize,
        opts: &TopKOptions,
    ) -> Option<(Vec<SearchHit>, TopKStats)> {
        // Expand once (score_doc re-expands per document — the dominant cost
        // of ranking a corpus under RM3) and hand the weighted query to the
        // pruned engine, whose exact scorer folds `w * bm25_term_weight` in
        // the same slice order as `score_expanded_counts`: bit-identical.
        let expanded = self.expand(query);
        Some(search_weighted_top_k_with(
            self.index,
            self.config.bm25,
            &expanded.terms,
            k,
            opts,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rerank::rank_corpus;
    use credence_index::Document;
    use credence_text::Analyzer;

    fn index() -> InvertedIndex {
        InvertedIndex::build(
            vec![
                Document::from_body(
                    "covid outbreak hospital quarantine ventilator hospital quarantine",
                ),
                Document::from_body("covid outbreak quarantine hospital beds fill quickly"),
                Document::from_body(
                    "hospital quarantine ventilator shortages continue this winter",
                ),
                Document::from_body("garden flowers bloom in the spring sunshine"),
                Document::from_body("the rowing club wins the spring regatta"),
            ],
            Analyzer::english(),
        )
    }

    #[test]
    fn expansion_includes_feedback_terms() {
        let idx = index();
        let r = Rm3Ranker::new(&idx, Rm3Config::default());
        let expanded = r.expand("covid outbreak");
        let vocab = idx.vocabulary();
        let names: Vec<&str> = expanded
            .terms
            .iter()
            .map(|&(t, _)| vocab.term(t).unwrap())
            .collect();
        assert!(names.contains(&"covid"));
        assert!(names.contains(&"outbreak"));
        // Co-occurring terms from the feedback docs enter the query.
        assert!(
            names.contains(&"hospit") || names.contains(&"quarantin"),
            "{names:?}"
        );
        // Weights are normalised-ish and descending.
        let total: f64 = expanded.terms.iter().map(|&(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        assert!(expanded.terms.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn feedback_surfaces_related_unqueried_documents() {
        // Doc 2 shares no query term but matches the feedback terms.
        let idx = index();
        let rm3 = Rm3Ranker::new(&idx, Rm3Config::default());
        let ranking = rank_corpus(&rm3, "covid outbreak");
        assert!(
            ranking.rank_of(DocId(2)).is_some(),
            "feedback expansion must retrieve doc 2"
        );
        // The garden doc stays unretrieved.
        assert!(ranking.rank_of(DocId(3)).is_none());
    }

    #[test]
    fn doc_and_text_scores_agree() {
        let idx = index();
        let r = Rm3Ranker::new(&idx, Rm3Config::default());
        for d in idx.doc_ids() {
            let body = idx.document(d).unwrap().body.clone();
            let a = r.score_doc("covid outbreak", d);
            let b = r.score_text("covid outbreak", &body);
            assert!((a - b).abs() < 1e-12, "doc {d}");
        }
    }

    #[test]
    fn alpha_one_reduces_to_plain_bm25_ordering() {
        let idx = index();
        let rm3 = Rm3Ranker::new(
            &idx,
            Rm3Config {
                alpha: 1.0,
                ..Default::default()
            },
        );
        let bm25 = crate::bm25::Bm25Ranker::new(&idx, Bm25Params::default());
        let a = rank_corpus(&rm3, "covid outbreak");
        let b = rank_corpus(&bm25, "covid outbreak");
        // Same order over the docs both retrieve (RM3 keeps original terms
        // only, so the matched sets coincide).
        let order_a: Vec<DocId> = a.entries().iter().map(|&(d, _)| d).collect();
        let order_b: Vec<DocId> = b.entries().iter().map(|&(d, _)| d).collect();
        assert_eq!(order_a, order_b);
    }

    #[test]
    fn empty_query_expands_to_nothing() {
        let idx = index();
        let r = Rm3Ranker::new(&idx, Rm3Config::default());
        assert!(r.expand("zzz qqq").terms.is_empty());
        assert_eq!(r.score_doc("zzz qqq", DocId(0)), 0.0);
    }

    #[test]
    fn fb_terms_caps_expansion_size() {
        let idx = index();
        let r = Rm3Ranker::new(
            &idx,
            Rm3Config {
                fb_terms: 2,
                ..Default::default()
            },
        );
        let expanded = r.expand("covid outbreak");
        // At most 2 feedback terms + 2 original terms.
        assert!(expanded.terms.len() <= 4, "{}", expanded.terms.len());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let idx = index();
        let _ = Rm3Ranker::new(
            &idx,
            Rm3Config {
                alpha: 1.5,
                ..Default::default()
            },
        );
    }
}
