//! Ranking-effectiveness evaluation: graded relevance judgements (qrels)
//! and the standard IR metrics — precision@k, average precision, nDCG@k,
//! and reciprocal rank — plus TREC-format run/qrels interchange.
//!
//! The reproduction uses these to sanity-check its rankers against the
//! synthetic corpora's ground-truth topic labels (a ranker that cannot
//! retrieve on-topic documents would make every explanation meaningless),
//! and to let external collections with real judgements plug in.

use std::collections::HashMap;

use credence_index::DocId;

use crate::rerank::RankedList;

/// Graded relevance judgements for one query: `doc -> grade` (0 = not
/// relevant; higher = more relevant).
#[derive(Debug, Clone, Default)]
pub struct Qrels {
    grades: HashMap<DocId, u32>,
}

impl Qrels {
    /// Build from `(doc, grade)` pairs; later duplicates overwrite.
    pub fn from_pairs<I: IntoIterator<Item = (DocId, u32)>>(pairs: I) -> Self {
        Self {
            grades: pairs.into_iter().collect(),
        }
    }

    /// The grade of a document (0 when unjudged).
    pub fn grade(&self, doc: DocId) -> u32 {
        self.grades.get(&doc).copied().unwrap_or(0)
    }

    /// True when the document is judged relevant (grade > 0).
    pub fn is_relevant(&self, doc: DocId) -> bool {
        self.grade(doc) > 0
    }

    /// Number of relevant documents.
    pub fn num_relevant(&self) -> usize {
        self.grades.values().filter(|&&g| g > 0).count()
    }

    /// Iterate over judged `(doc, grade)` pairs (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (DocId, u32)> + '_ {
        self.grades.iter().map(|(&d, &g)| (d, g))
    }
}

/// Precision at cutoff `k`.
pub fn precision_at_k(ranking: &RankedList, qrels: &Qrels, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = ranking
        .top_k(k)
        .iter()
        .filter(|&&d| qrels.is_relevant(d))
        .count();
    hits as f64 / k as f64
}

/// Average precision (binary relevance).
pub fn average_precision(ranking: &RankedList, qrels: &Qrels) -> f64 {
    let total_relevant = qrels.num_relevant();
    if total_relevant == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, &(doc, _)) in ranking.entries().iter().enumerate() {
        if qrels.is_relevant(doc) {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / total_relevant as f64
}

/// Normalised discounted cumulative gain at cutoff `k`, with the standard
/// `(2^grade − 1) / log2(rank + 1)` gain.
pub fn ndcg_at_k(ranking: &RankedList, qrels: &Qrels, k: usize) -> f64 {
    let gain = |grade: u32| 2f64.powi(grade as i32) - 1.0;
    let dcg: f64 = ranking
        .top_k(k)
        .iter()
        .enumerate()
        .map(|(i, &d)| gain(qrels.grade(d)) / ((i + 2) as f64).log2())
        .sum();
    // Ideal DCG: grades sorted descending.
    let mut grades: Vec<u32> = qrels.iter().map(|(_, g)| g).filter(|&g| g > 0).collect();
    grades.sort_unstable_by(|a, b| b.cmp(a));
    let idcg: f64 = grades
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, &g)| gain(g) / ((i + 2) as f64).log2())
        .sum();
    if idcg == 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

/// Reciprocal rank of the first relevant document (0 when none retrieved).
pub fn reciprocal_rank(ranking: &RankedList, qrels: &Qrels) -> f64 {
    ranking
        .entries()
        .iter()
        .position(|&(d, _)| qrels.is_relevant(d))
        .map_or(0.0, |i| 1.0 / (i + 1) as f64)
}

/// Serialise a ranking as TREC run lines:
/// `query_id Q0 doc_name rank score tag`.
pub fn to_trec_run(
    ranking: &RankedList,
    query_id: &str,
    tag: &str,
    doc_name: impl Fn(DocId) -> String,
) -> String {
    let mut out = String::new();
    for (i, &(doc, score)) in ranking.entries().iter().enumerate() {
        out.push_str(&format!(
            "{query_id} Q0 {} {} {score:.6} {tag}\n",
            doc_name(doc),
            i + 1
        ));
    }
    out
}

/// Parse TREC qrels lines (`query_id 0 doc_name grade`) for one query,
/// resolving document names through `resolve` (unknown names are skipped).
pub fn parse_trec_qrels(
    input: &str,
    query_id: &str,
    resolve: impl Fn(&str) -> Option<DocId>,
) -> Qrels {
    let mut pairs = Vec::new();
    for line in input.lines() {
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 || fields[0] != query_id {
            continue;
        }
        let Ok(grade) = fields[3].parse::<u32>() else {
            continue;
        };
        if let Some(doc) = resolve(fields[2]) {
            pairs.push((doc, grade));
        }
    }
    Qrels::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranking(docs: &[u32]) -> RankedList {
        RankedList::from_scores(
            docs.iter()
                .enumerate()
                .map(|(i, &d)| (DocId(d), (docs.len() - i) as f64))
                .collect(),
        )
    }

    fn qrels(pairs: &[(u32, u32)]) -> Qrels {
        Qrels::from_pairs(pairs.iter().map(|&(d, g)| (DocId(d), g)))
    }

    #[test]
    fn precision_cases() {
        let r = ranking(&[1, 2, 3, 4]);
        let q = qrels(&[(1, 1), (3, 1)]);
        assert_eq!(precision_at_k(&r, &q, 1), 1.0);
        assert_eq!(precision_at_k(&r, &q, 2), 0.5);
        assert_eq!(precision_at_k(&r, &q, 4), 0.5);
        assert_eq!(precision_at_k(&r, &q, 0), 0.0);
    }

    #[test]
    fn average_precision_hand_computed() {
        // Relevant at positions 1 and 3 of [1,2,3], 2 relevant total:
        // AP = (1/1 + 2/3) / 2 = 5/6.
        let r = ranking(&[1, 2, 3]);
        let q = qrels(&[(1, 1), (3, 1)]);
        assert!((average_precision(&r, &q) - 5.0 / 6.0).abs() < 1e-12);
        // No relevant docs at all.
        assert_eq!(average_precision(&r, &qrels(&[])), 0.0);
        // Relevant doc never retrieved.
        let q2 = qrels(&[(99, 1)]);
        assert_eq!(average_precision(&r, &q2), 0.0);
    }

    #[test]
    fn ndcg_perfect_ranking_is_one() {
        let r = ranking(&[1, 2, 3]);
        let q = qrels(&[(1, 3), (2, 2), (3, 1)]);
        assert!((ndcg_at_k(&r, &q, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_penalises_misordering() {
        let good = ranking(&[1, 2]);
        let bad = ranking(&[2, 1]);
        let q = qrels(&[(1, 3), (2, 1)]);
        assert!(ndcg_at_k(&good, &q, 2) > ndcg_at_k(&bad, &q, 2));
        assert!(ndcg_at_k(&bad, &q, 2) > 0.0);
    }

    #[test]
    fn ndcg_empty_qrels_is_zero() {
        let r = ranking(&[1, 2]);
        assert_eq!(ndcg_at_k(&r, &qrels(&[]), 2), 0.0);
    }

    #[test]
    fn reciprocal_rank_cases() {
        let r = ranking(&[5, 6, 7]);
        assert_eq!(reciprocal_rank(&r, &qrels(&[(5, 1)])), 1.0);
        assert_eq!(reciprocal_rank(&r, &qrels(&[(7, 1)])), 1.0 / 3.0);
        assert_eq!(reciprocal_rank(&r, &qrels(&[(9, 1)])), 0.0);
    }

    #[test]
    fn trec_run_format() {
        let r = ranking(&[4, 2]);
        let run = to_trec_run(&r, "q1", "credence", |d| format!("doc{}", d.0));
        let lines: Vec<&str> = run.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("q1 Q0 doc4 1 "));
        assert!(lines[0].ends_with(" credence"));
        assert!(lines[1].starts_with("q1 Q0 doc2 2 "));
    }

    #[test]
    fn trec_qrels_round_trip() {
        let input = "\
q1 0 doc1 2
q1 0 doc2 0
q2 0 doc1 1
q1 0 doc3 bad
q1 0 unknown 1
malformed line
";
        let q = parse_trec_qrels(input, "q1", |name| {
            name.strip_prefix("doc")
                .and_then(|n| n.parse().ok())
                .filter(|&n: &u32| n < 10)
                .map(DocId)
        });
        assert_eq!(q.grade(DocId(1)), 2);
        assert_eq!(q.grade(DocId(2)), 0);
        assert!(!q.is_relevant(DocId(2)));
        assert_eq!(q.num_relevant(), 1);
    }
}
