//! Incremental candidate scoring for the counterfactual search loops.
//!
//! Every CREDENCE explainer evaluates thousands of candidate perturbations,
//! and the naive evaluation re-does full-document or full-corpus work per
//! candidate. This module provides the incremental equivalents:
//!
//! * [`PoolScorer`] — precomputes the top-(k+1) pool scores once, so each
//!   candidate's pool rank costs one perturbed-document score plus an O(k)
//!   comparison scan instead of k+1 model calls and a sort.
//! * [`DeltaScorer`] — pre-analyses each document segment (sentence) once
//!   into per-query-term frequency vectors; a perturbed document's score is
//!   then reconstructed from `base_tf − Σ removed_segment_tf` in O(removed ×
//!   |query|) instead of re-joining and re-tokenising the whole body.
//! * [`AugmentedScorer`] — scores an augmented query as `base_score + Σ
//!   appended_term_weight`, touching only the documents in the appended
//!   terms' posting lists instead of re-ranking the whole corpus.
//! * [`SubsetScorer`] — ranks a subset of the query's terms over the union
//!   of their posting lists (the query-reduction dual of the above).
//! * [`TermRemovalScorer`] — scores a document with every occurrence of
//!   chosen surface terms deleted, from per-candidate tf/length deltas
//!   instead of string surgery plus full re-analysis per candidate.
//! * [`par_map`] — an ordered scoped-thread map (the `rank_corpus_parallel`
//!   pattern) used to evaluate candidate batches in parallel.
//!
//! # Determinism
//!
//! All fast paths reproduce the exact scorer bit-for-bit, not approximately.
//! The argument: when [`Ranker::supports_term_weights`] holds, the full
//! scorers compute an `f64` left fold of [`Ranker::term_weight`] over the
//! analysed query, starting from `0.0`. The incremental paths perform *the
//! same fold in the same order over the same integer inputs* (term
//! frequencies and document lengths are integers, and per-segment analysis
//! sums to whole-body analysis exactly because tokenisation never merges
//! tokens across a `" "` join). Appending terms to a query extends the fold
//! on the right, so `base + Σ appended_weights` (added in query order) *is*
//! the full fold; a term absent from a document contributes a weight of
//! exactly `0.0` and `x + 0.0 == x` for every positive `x`. Rank positions
//! are derived from comparisons of these bit-identical scores with the same
//! doc-id tie-break [`rank_corpus`](crate::rerank::rank_corpus) uses, so
//! they match exactly. Whenever a
//! precondition fails (non-decomposable model, a candidate surface that
//! re-analyses to something other than its term), constructors return
//! `None` and callers fall back to the exact path.

use credence_index::{DocId, InvertedIndex};
use credence_text::{tokenize, TermId};

use crate::ranker::Ranker;
use crate::rerank::RankedList;

/// Map `f` over `items` across `threads` scoped threads, preserving order.
///
/// Contiguous chunks keep results in input order; `threads <= 1` (or a tiny
/// input) runs inline. The closure must be pure with respect to ordering —
/// results are identical to a serial map regardless of thread count.
pub fn par_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("evaluation thread panicked"));
        }
    });
    out
}

/// [`par_map`] with a cooperative stop: workers poll `should_stop` between
/// items and yield `None` for everything after it first reads `true`.
///
/// This is the budget hook for the replay loops — a deadline or cancel
/// flag raised mid-batch stops every worker within one candidate instead
/// of waiting for the whole speculative batch to drain. Results keep input
/// order, and every `Some` verdict is identical to what the serial map
/// would have produced; only the *suffix* of a chunk can be dropped, so a
/// caller committing in order still sees a clean prefix.
pub fn par_map_until<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
    should_stop: impl Fn() -> bool + Sync,
) -> Vec<Option<R>> {
    let n = items.len();
    if threads <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        let mut stopped = false;
        for item in items {
            stopped = stopped || should_stop();
            out.push(if stopped { None } else { Some(f(item)) });
        }
        return out;
    }
    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let f = &f;
        let should_stop = &should_stop;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    let mut results = Vec::with_capacity(part.len());
                    let mut stopped = false;
                    for item in part {
                        stopped = stopped || should_stop();
                        results.push(if stopped { None } else { Some(f(item)) });
                    }
                    results
                })
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("evaluation thread panicked"));
        }
    });
    out
}

/// Precomputed scores of a top-(k+1) pool with one substitutable target.
///
/// [`rerank_pool`](crate::rerank::rerank_pool) re-scores every pool document
/// for every candidate even though only the target's score changes. This
/// scorer computes the k fixed scores once; [`PoolScorer::rank_for`] then
/// reproduces the substituted document's `new_rank` from a single perturbed
/// score using the same score-desc / doc-asc comparison.
pub struct PoolScorer {
    /// `(doc, score)` of every pool member except the target.
    others: Vec<(DocId, f64)>,
    target: DocId,
}

impl PoolScorer {
    /// Score the non-target pool members once.
    pub fn new(ranker: &dyn Ranker, query: &str, pool: &[DocId], target: DocId) -> Self {
        let others = pool
            .iter()
            .filter(|&&d| d != target)
            .map(|&d| (d, ranker.score_doc(query, d)))
            .collect();
        Self { others, target }
    }

    /// The 1-based rank the target takes within the pool when its score is
    /// `score` — identical to the `new_rank` of the substituted row in
    /// `rerank_pool`.
    pub fn rank_for(&self, score: f64) -> usize {
        1 + self
            .others
            .iter()
            .filter(|&&(d, s)| s > score || (s == score && d < self.target))
            .count()
    }
}

/// Per-query-term frequency profile of one document segment.
#[derive(Debug, Clone)]
struct SegmentProfile {
    /// tf of each query-term *position* (aligned with the analysed query).
    query_tf: Vec<u32>,
    /// Analysed length of the segment (including unknown-vocabulary terms).
    len: u32,
}

/// The fully-owned analysis state behind a [`DeltaScorer`]: the analysed
/// query, every segment's per-query-term tf profile, and the whole-body
/// base fold. Valid for exactly one (ranker, query, segment list) triple —
/// callers memoising profiles across requests must key them accordingly
/// (the engine keys by `(query, doc)` within one immutable generation).
#[derive(Debug, Clone)]
pub struct DeltaProfile {
    query_ids: Vec<TermId>,
    segments: Vec<SegmentProfile>,
    base_tf: Vec<u32>,
    base_len: u32,
}

impl DeltaProfile {
    /// Pre-analyse `segments` (e.g. the sentences of a document) against
    /// `query`. Returns `None` when the model is not term-decomposable.
    pub fn new(ranker: &dyn Ranker, query: &str, segments: &[&str]) -> Option<Self> {
        if !ranker.supports_term_weights() {
            return None;
        }
        let index = ranker.index();
        let query_ids = index.analyze_query(query);
        let profiles: Vec<SegmentProfile> = segments
            .iter()
            .map(|text| {
                let (terms, len) = index.analyze_adhoc(text);
                let query_tf = query_ids
                    .iter()
                    .map(|&q| {
                        terms
                            .binary_search_by_key(&q, |&(t, _)| t)
                            .map(|i| terms[i].1)
                            .unwrap_or(0)
                    })
                    .collect();
                SegmentProfile { query_tf, len }
            })
            .collect();
        let base_tf = (0..query_ids.len())
            .map(|qi| profiles.iter().map(|p| p.query_tf[qi]).sum())
            .collect();
        let base_len = profiles.iter().map(|p| p.len).sum();
        Some(Self {
            query_ids,
            segments: profiles,
            base_tf,
            base_len,
        })
    }
}

/// Incremental scorer for documents perturbed by removing whole segments.
///
/// Built once per explanation request; each candidate (a set of removed
/// segment indices) is then scored in O(removed × |query|) without touching
/// the text again. The owned analysis lives in a shareable
/// [`DeltaProfile`], so repeated requests for the same (query, doc) can
/// reuse it via [`DeltaScorer::from_profile`].
pub struct DeltaScorer<'a> {
    ranker: &'a dyn Ranker,
    profile: std::sync::Arc<DeltaProfile>,
}

impl<'a> DeltaScorer<'a> {
    /// Pre-analyse `segments` (e.g. the sentences of a document) against
    /// `query`. Returns `None` when the model is not term-decomposable, in
    /// which case the caller must score perturbed text exactly.
    pub fn new(ranker: &'a dyn Ranker, query: &str, segments: &[&str]) -> Option<Self> {
        DeltaProfile::new(ranker, query, segments)
            .map(|p| Self::from_profile(ranker, std::sync::Arc::new(p)))
    }

    /// Rehydrate a scorer from a previously built profile. The profile must
    /// have been built by [`DeltaProfile::new`] against the same ranker,
    /// query, and segment list — the scorer trusts it blindly.
    pub fn from_profile(ranker: &'a dyn Ranker, profile: std::sync::Arc<DeltaProfile>) -> Self {
        Self { ranker, profile }
    }

    /// The shareable analysis state (for cross-request memoisation).
    pub fn profile(&self) -> &std::sync::Arc<DeltaProfile> {
        &self.profile
    }

    /// Score of the document with the given segments removed — bit-identical
    /// to `score_text(query, join(kept_segments, " "))`.
    pub fn score_without(&self, removed: &[usize]) -> f64 {
        let p = &*self.profile;
        let mut len = p.base_len;
        for &seg in removed {
            len -= p.segments[seg].len;
        }
        let mut score = 0.0;
        for (qi, &term) in p.query_ids.iter().enumerate() {
            let mut tf = p.base_tf[qi];
            for &seg in removed {
                tf -= p.segments[seg].query_tf[qi];
            }
            score += self
                .ranker
                .term_weight(term, tf, len)
                .expect("supports_term_weights checked at construction");
        }
        score
    }
}

/// Per-candidate removal profile: what one surface term takes with it.
#[derive(Debug, Clone)]
struct RemovalProfile {
    /// tf removed per query-term *position* (aligned with the analysed
    /// query) when every occurrence of this surface is deleted.
    query_tf: Vec<u32>,
    /// Analysed length removed (occurrences × per-occurrence length).
    len: u32,
}

/// Incremental scorer for documents perturbed by removing every occurrence
/// of whole surface terms — the term-removal explainer's fast path.
///
/// The exact path rewrites the body by string surgery and re-analyses the
/// result for every candidate set. This scorer observes that analysis is
/// per-token independent (tokens are maximal word-character runs, so
/// deleting one token never merges its neighbours, and the stopword filter
/// and stemmer see one token at a time): removing all occurrences of a
/// surface term subtracts `occurrences × its analysed profile` from the
/// body's term frequencies and analysed length. Scores are then the same
/// [`Ranker::term_weight`] fold over the analysed query, bit-identical to
/// `score_text(query, remove_terms(body, removed))`.
pub struct TermRemovalScorer<'a> {
    ranker: &'a dyn Ranker,
    profile: std::sync::Arc<TermRemovalProfile>,
}

/// The fully-owned analysis state behind a [`TermRemovalScorer`]: analysed
/// query, base tf/length fold, and each candidate surface's removal
/// profile. Valid for one (ranker, query, body, candidate list) tuple;
/// memoise across requests keyed by `(query, doc)` within an immutable
/// generation (the candidate list is derived from the body
/// deterministically).
#[derive(Debug, Clone)]
pub struct TermRemovalProfile {
    query_ids: Vec<TermId>,
    /// Profile of each candidate (indexed by candidate position).
    profiles: Vec<RemovalProfile>,
    base_tf: Vec<u32>,
    base_len: u32,
}

impl TermRemovalProfile {
    /// Pre-analyse `body` and each candidate surface term. Returns `None`
    /// when the model is not term-decomposable or a candidate analyses to
    /// more than one term.
    pub fn new(ranker: &dyn Ranker, query: &str, body: &str, candidates: &[&str]) -> Option<Self> {
        if !ranker.supports_term_weights() {
            return None;
        }
        let index = ranker.index();
        let analyzer = index.analyzer();
        let query_ids = index.analyze_query(query);
        let (base_terms, base_len) = index.analyze_adhoc(body);
        let base_tf: Vec<u32> = query_ids
            .iter()
            .map(|&q| {
                base_terms
                    .binary_search_by_key(&q, |&(t, _)| t)
                    .map(|i| base_terms[i].1)
                    .unwrap_or(0)
            })
            .collect();
        let mut counts: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
        for tok in tokenize(body) {
            *counts.entry(tok.term).or_insert(0) += 1;
        }
        let profiles = candidates
            .iter()
            .map(|surface| {
                let occ = counts.get(*surface).copied().unwrap_or(0);
                let analyzed = analyzer.analyze(surface);
                let id = match analyzed.as_slice() {
                    // Stopword: removal shortens nothing analysed.
                    [] => None,
                    [term] => index.vocabulary().id(term),
                    // A surface that re-analyses to several terms breaks the
                    // per-token independence argument.
                    _ => return None,
                };
                let query_tf = query_ids
                    .iter()
                    .map(|&q| if id == Some(q) { occ } else { 0 })
                    .collect();
                Some(RemovalProfile {
                    query_tf,
                    len: occ * analyzed.len() as u32,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Self {
            query_ids,
            profiles,
            base_tf,
            base_len,
        })
    }
}

impl<'a> TermRemovalScorer<'a> {
    /// Pre-analyse `body` and each candidate surface term (the document's
    /// distinct normalised tokens, as produced by `tokenize`). Returns
    /// `None` when the model is not term-decomposable or a candidate
    /// analyses to more than one term.
    pub fn new(
        ranker: &'a dyn Ranker,
        query: &str,
        body: &str,
        candidates: &[&str],
    ) -> Option<Self> {
        TermRemovalProfile::new(ranker, query, body, candidates)
            .map(|p| Self::from_profile(ranker, std::sync::Arc::new(p)))
    }

    /// Rehydrate a scorer from a previously built profile. The profile must
    /// have been built by [`TermRemovalProfile::new`] against the same
    /// ranker, query, body, and candidate list.
    pub fn from_profile(
        ranker: &'a dyn Ranker,
        profile: std::sync::Arc<TermRemovalProfile>,
    ) -> Self {
        Self { ranker, profile }
    }

    /// The shareable analysis state (for cross-request memoisation).
    pub fn profile(&self) -> &std::sync::Arc<TermRemovalProfile> {
        &self.profile
    }

    /// Score of the document with every occurrence of the given candidates
    /// (by candidate index) removed — bit-identical to
    /// `score_text(query, remove_terms(body, those_surfaces))`.
    pub fn score_without(&self, removed: &[usize]) -> f64 {
        let p = &*self.profile;
        let mut len = p.base_len;
        for &c in removed {
            len -= p.profiles[c].len;
        }
        let mut score = 0.0;
        for (qi, &term) in p.query_ids.iter().enumerate() {
            let mut tf = p.base_tf[qi];
            for &c in removed {
                tf -= p.profiles[c].query_tf[qi];
            }
            score += self
                .ranker
                .term_weight(term, tf, len)
                .expect("supports_term_weights checked at construction");
        }
        score
    }
}

/// Union of the terms' posting lists as `(doc, per-position tf)` rows,
/// sorted by doc id — the term-at-a-time merge the pruned retrieval engine
/// uses, with no hashing on the hot path. Duplicate terms fill every one of
/// their positions.
fn posting_union(index: &InvertedIndex, terms: &[TermId]) -> Vec<(DocId, Vec<u32>)> {
    let total: usize = terms.iter().map(|&t| index.postings(t).len()).sum();
    let mut triples: Vec<(DocId, u32, u32)> = Vec::with_capacity(total);
    for (j, &term) in terms.iter().enumerate() {
        for p in index.postings(term) {
            triples.push((p.doc, j as u32, p.tf));
        }
    }
    triples.sort_unstable_by_key(|&(d, j, _)| (d, j));
    let mut rows: Vec<(DocId, Vec<u32>)> = Vec::new();
    for (d, j, tf) in triples {
        match rows.last_mut() {
            Some(last) if last.0 == d => last.1[j as usize] = tf,
            _ => {
                let mut tfs = vec![0u32; terms.len()];
                tfs[j as usize] = tf;
                rows.push((d, tfs));
            }
        }
    }
    rows
}

/// Incremental ranker for queries augmented with document terms.
///
/// Precondition (checked at construction): every candidate surface analyses
/// to exactly its single in-vocabulary term, so appending surfaces to the
/// query appends exactly those term ids to the analysed query. Each
/// candidate combination is then ranked by touching only the documents in
/// the appended terms' posting lists; everything else keeps its base score
/// exactly (absent terms contribute `+0.0`).
pub struct AugmentedScorer<'a> {
    ranker: &'a dyn Ranker,
    base: &'a RankedList,
    /// Analysed term id of each candidate (indexed by candidate position).
    candidate_ids: Vec<TermId>,
    drop_zeros: bool,
}

impl<'a> AugmentedScorer<'a> {
    /// Validate the fast-path preconditions for `candidates` (surface
    /// forms, in candidate order) against the base ranking for the
    /// unaugmented query.
    pub fn new(ranker: &'a dyn Ranker, base: &'a RankedList, candidates: &[&str]) -> Option<Self> {
        if !ranker.supports_term_weights() {
            return None;
        }
        let index = ranker.index();
        let analyzer = index.analyzer();
        let candidate_ids = candidates
            .iter()
            .map(|surface| {
                let analyzed = analyzer.analyze(surface);
                match analyzed.as_slice() {
                    [term] => index.vocabulary().id(term),
                    _ => None,
                }
            })
            .collect::<Option<Vec<TermId>>>()?;
        Some(Self {
            ranker,
            base,
            candidate_ids,
            drop_zeros: ranker.zero_means_unmatched(),
        })
    }

    /// Rank of `target` under the query augmented with the given candidates
    /// (by candidate index, in append order) — identical to
    /// `rank_corpus(ranker, augmented_query).rank_of(target)`.
    pub fn rank_with(&self, appended: &[usize], target: DocId) -> Option<usize> {
        let index = self.ranker.index();
        let terms: Vec<TermId> = appended.iter().map(|&i| self.candidate_ids[i]).collect();

        // Documents whose score changes: the union of the appended terms'
        // posting lists, with tf aligned per appended position so the score
        // fold visits terms in query order.
        let touched = posting_union(index, &terms);
        let touched_row = |doc: DocId| {
            touched
                .binary_search_by_key(&doc, |r| r.0)
                .ok()
                .map(|i| touched[i].1.as_slice())
        };
        let augmented_score = |doc: DocId, tfs: &[u32]| {
            let mut score = self.base.score_of(doc).unwrap_or(0.0);
            let doc_len = index.doc_len(doc);
            for (j, &term) in terms.iter().enumerate() {
                score += self
                    .ranker
                    .term_weight(term, tfs[j], doc_len)
                    .expect("supports_term_weights checked at construction");
            }
            score
        };

        let target_score = match touched_row(target) {
            Some(tfs) => augmented_score(target, tfs),
            // Untouched: every appended weight is exactly 0.0.
            None => match self.base.score_of(target) {
                Some(s) => s,
                None if self.drop_zeros => return None,
                None => 0.0,
            },
        };
        if self.drop_zeros && target_score <= 0.0 {
            return None;
        }

        let beats = |d: DocId, s: f64| s > target_score || (s == target_score && d < target);

        // Count base-ranked documents that beat the target, then correct for
        // the touched ones (their scores changed) and add touched documents
        // that newly qualify.
        let mut better = self
            .base
            .entries()
            .iter()
            .filter(|&&(d, s)| d != target && touched_row(d).is_none() && beats(d, s))
            .count();
        for &(d, ref tfs) in &touched {
            if d == target {
                continue;
            }
            let s = augmented_score(d, tfs);
            if (!self.drop_zeros || s > 0.0) && beats(d, s) {
                better += 1;
            }
        }
        Some(1 + better)
    }
}

/// Ranker for queries made of a subset of the original query's terms —
/// the query-reduction fast path.
///
/// Scores are computed over the union of the kept terms' posting lists
/// only, which is sound exactly when a zero score means "not retrieved"
/// ([`Ranker::zero_means_unmatched`]); other models fall back.
pub struct SubsetScorer<'a> {
    ranker: &'a dyn Ranker,
    /// Analysed term id of each query surface (indexed by surface position).
    surface_ids: Vec<TermId>,
}

impl<'a> SubsetScorer<'a> {
    /// Validate the preconditions for `surfaces` (the query's distinct
    /// surface terms, in query order): term decomposability, drop-zero
    /// semantics, and each surface re-analysing to exactly its term.
    pub fn new(ranker: &'a dyn Ranker, surfaces: &[&str]) -> Option<Self> {
        if !ranker.supports_term_weights() || !ranker.zero_means_unmatched() {
            return None;
        }
        let index = ranker.index();
        let analyzer = index.analyzer();
        let surface_ids = surfaces
            .iter()
            .map(|surface| {
                let analyzed = analyzer.analyze(surface);
                match analyzed.as_slice() {
                    [term] => index.vocabulary().id(term),
                    _ => None,
                }
            })
            .collect::<Option<Vec<TermId>>>()?;
        Some(Self {
            ranker,
            surface_ids,
        })
    }

    /// Rank of `target` under the query reduced to the given surface
    /// positions (in query order) — identical to
    /// `rank_corpus(ranker, kept_surfaces.join(" ")).rank_of(target)`.
    pub fn rank_with(&self, kept: &[usize], target: DocId) -> Option<usize> {
        let index = self.ranker.index();
        let terms: Vec<TermId> = kept.iter().map(|&i| self.surface_ids[i]).collect();

        let touched = posting_union(index, &terms);
        let score_of = |doc: DocId, tfs: &[u32]| {
            let doc_len = index.doc_len(doc);
            let mut score = 0.0;
            for (j, &term) in terms.iter().enumerate() {
                score += self
                    .ranker
                    .term_weight(term, tfs[j], doc_len)
                    .expect("supports_term_weights checked at construction");
            }
            score
        };

        let target_score = match touched.binary_search_by_key(&target, |r| r.0) {
            Ok(i) => score_of(target, &touched[i].1),
            Err(_) => return None,
        };
        if target_score <= 0.0 {
            return None;
        }
        let better = touched
            .iter()
            .filter(|&&(d, ref tfs)| {
                if d == target {
                    return false;
                }
                let s = score_of(d, tfs);
                s > 0.0 && (s > target_score || (s == target_score && d < target))
            })
            .count();
        Some(1 + better)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bm25::Bm25Ranker;
    use crate::ql::{QlSmoothing, QueryLikelihoodRanker};
    use crate::rerank::{rank_corpus, rerank_pool};
    use credence_index::{Bm25Params, Document, InvertedIndex};
    use credence_text::{split_sentences, Analyzer};

    fn index() -> InvertedIndex {
        InvertedIndex::build(
            vec![
                Document::from_body(
                    "The covid outbreak worries everyone. Gardens are quiet this week. \
                     Officials tracked the covid outbreak closely.",
                ),
                Document::from_body(
                    "covid outbreak updates arrive hourly. Readers follow the regional news.",
                ),
                Document::from_body(
                    "The covid outbreak is a hoax. A secret microchip hides in every dose. \
                     The microchip tracks your location.",
                ),
                Document::from_body("The annual garden show opened downtown."),
                Document::from_body("Microchip factories expand in the region."),
            ],
            Analyzer::english(),
        )
    }

    fn rankers(idx: &InvertedIndex) -> Vec<Box<dyn Ranker + '_>> {
        vec![
            Box::new(Bm25Ranker::new(idx, Bm25Params::default())),
            Box::new(QueryLikelihoodRanker::new(idx, QlSmoothing::default())),
            Box::new(QueryLikelihoodRanker::new(
                idx,
                QlSmoothing::JelinekMercer { lambda: 0.5 },
            )),
        ]
    }

    #[test]
    fn term_weights_reconstruct_doc_scores() {
        let idx = index();
        for ranker in rankers(&idx) {
            assert!(ranker.supports_term_weights());
            let q = idx.analyze_query("covid outbreak microchip");
            for d in idx.doc_ids() {
                let len = idx.doc_len(d);
                let folded: f64 = q
                    .iter()
                    .map(|&t| ranker.term_weight(t, idx.term_freq(d, t), len).unwrap())
                    .sum();
                let full = ranker.score_doc("covid outbreak microchip", d);
                assert_eq!(
                    folded.to_bits(),
                    full.to_bits(),
                    "{} doc {d}",
                    ranker.name()
                );
            }
        }
    }

    #[test]
    fn par_map_matches_serial_for_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [0, 1, 2, 3, 8, 64] {
            assert_eq!(par_map(&items, threads, |x| x * x), serial, "t={threads}");
        }
        assert!(par_map(&[] as &[u64], 4, |x| *x).is_empty());
    }

    #[test]
    fn pool_scorer_matches_rerank_pool() {
        let idx = index();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let ranking = rank_corpus(&r, "covid outbreak");
        let pool = ranking.top_k(3);
        let target = pool[0];
        let scorer = PoolScorer::new(&r, "covid outbreak", &pool, target);
        for body in [
            "nothing relevant",
            "covid",
            "covid outbreak covid outbreak covid outbreak",
            "Gardens are quiet this week.",
        ] {
            let rows = rerank_pool(&r, "covid outbreak", &pool, Some((target, body)));
            let expected = rows.iter().find(|row| row.substituted).unwrap().new_rank;
            let got = scorer.rank_for(r.score_text("covid outbreak", body));
            assert_eq!(got, expected, "body: {body}");
        }
    }

    #[test]
    fn delta_scorer_is_bit_identical_to_score_text() {
        let idx = index();
        let body = &idx.document(DocId(0)).unwrap().body.clone();
        let sentences = split_sentences(body);
        let texts: Vec<&str> = sentences.iter().map(|s| s.text.as_str()).collect();
        for ranker in rankers(&idx) {
            let delta = DeltaScorer::new(ranker.as_ref(), "covid outbreak", &texts).unwrap();
            // Every subset of removals, including none and all.
            for mask in 0u32..(1 << texts.len()) {
                let removed: Vec<usize> =
                    (0..texts.len()).filter(|i| mask & (1 << i) != 0).collect();
                let kept: Vec<&str> = (0..texts.len())
                    .filter(|i| mask & (1 << i) == 0)
                    .map(|i| texts[i])
                    .collect();
                let exact = ranker.score_text("covid outbreak", &kept.join(" "));
                let fast = delta.score_without(&removed);
                assert_eq!(
                    fast.to_bits(),
                    exact.to_bits(),
                    "{} removed {removed:?}",
                    ranker.name()
                );
            }
        }
    }

    #[test]
    fn delta_scorer_matches_within_tolerance() {
        // The ISSUE-level statement of the same invariant: |delta − exact|
        // must stay within 1e-9 (it is in fact exactly 0).
        let idx = index();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let body = &idx.document(DocId(2)).unwrap().body.clone();
        let sentences = split_sentences(body);
        let texts: Vec<&str> = sentences.iter().map(|s| s.text.as_str()).collect();
        let delta = DeltaScorer::new(&r, "covid microchip", &texts).unwrap();
        for removed in [vec![], vec![0], vec![1], vec![0, 2]] {
            let kept: Vec<&str> = (0..texts.len())
                .filter(|i| !removed.contains(i))
                .map(|i| texts[i])
                .collect();
            let exact = r.score_text("covid microchip", &kept.join(" "));
            assert!((delta.score_without(&removed) - exact).abs() < 1e-9);
        }
    }

    #[test]
    fn augmented_scorer_matches_rank_corpus() {
        let idx = index();
        for ranker in rankers(&idx) {
            let base = rank_corpus(ranker.as_ref(), "covid outbreak");
            let candidates = ["microchip", "hoax", "location", "garden"];
            let scorer = AugmentedScorer::new(ranker.as_ref(), &base, &candidates).unwrap();
            let combos: Vec<Vec<usize>> = vec![
                vec![0],
                vec![1],
                vec![3],
                vec![0, 1],
                vec![1, 2],
                vec![0, 1, 2],
            ];
            for combo in combos {
                let appended: Vec<&str> = combo.iter().map(|&i| candidates[i]).collect();
                let augmented = format!("covid outbreak {}", appended.join(" "));
                let full = rank_corpus(ranker.as_ref(), &augmented);
                for target in idx.doc_ids() {
                    assert_eq!(
                        scorer.rank_with(&combo, target),
                        full.rank_of(target),
                        "{} combo {combo:?} target {target}",
                        ranker.name()
                    );
                }
            }
        }
    }

    #[test]
    fn par_map_until_never_stopped_matches_par_map() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 8] {
            let full = par_map(&items, threads, |&x| x * 3);
            let until = par_map_until(&items, threads, |&x| x * 3, || false);
            assert_eq!(until.len(), full.len());
            for (a, b) in until.iter().zip(&full) {
                assert_eq!(a.as_ref(), Some(b), "threads={threads}");
            }
        }
    }

    #[test]
    fn par_map_until_stop_drops_suffixes_only() {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 3, 8] {
            let seen = AtomicUsize::new(0);
            let stop = AtomicBool::new(false);
            let out = par_map_until(
                &items,
                threads,
                |&x| {
                    if seen.fetch_add(1, Ordering::Relaxed) >= 5 {
                        stop.store(true, Ordering::Relaxed);
                    }
                    x + 1
                },
                || stop.load(Ordering::Relaxed),
            );
            assert_eq!(out.len(), items.len());
            // Within each worker's contiguous chunk, Nones form a suffix,
            // and every Some verdict matches the serial map.
            let chunk = items.len().div_ceil(threads.min(items.len()));
            for (c, part) in out.chunks(chunk).enumerate() {
                let first_none = part.iter().position(Option::is_none);
                if let Some(cut) = first_none {
                    assert!(
                        part[cut..].iter().all(Option::is_none),
                        "threads={threads} chunk={c}"
                    );
                }
            }
            for (i, verdict) in out.iter().enumerate() {
                if let Some(v) = verdict {
                    assert_eq!(*v, items[i] + 1);
                }
            }
            // The stop flag was raised, so at least one evaluation was skipped
            // on every thread count (5 < 64 and the flag latches).
            assert!(out.iter().any(Option::is_none), "threads={threads}");
        }
    }

    #[test]
    fn term_removal_scorer_is_bit_identical_to_score_text() {
        let idx = index();
        let body = idx.document(DocId(0)).unwrap().body.clone();
        let toks = tokenize(&body);
        let mut seen = std::collections::HashSet::new();
        let surfaces: Vec<String> = toks
            .iter()
            .filter(|t| seen.insert(t.term.clone()))
            .map(|t| t.term.clone())
            .collect();
        let refs: Vec<&str> = surfaces.iter().map(|s| s.as_str()).collect();
        for ranker in rankers(&idx) {
            let scorer =
                TermRemovalScorer::new(ranker.as_ref(), "covid outbreak", &body, &refs).unwrap();
            // Every subset of the first 8 candidates (stopwords included),
            // plus the remove-everything set.
            let m = refs.len().min(8);
            let mut masks: Vec<u32> = (0..(1u32 << m)).collect();
            masks.push((1u32 << refs.len()) - 1);
            for mask in masks {
                let removed: Vec<usize> =
                    (0..refs.len()).filter(|i| mask & (1 << i) != 0).collect();
                let removed_set: std::collections::HashSet<&str> =
                    removed.iter().map(|&i| refs[i]).collect();
                // Keeping the surviving raw tokens reproduces the analysed
                // sequence of the string-surgery removal exactly.
                let kept: Vec<&str> = toks
                    .iter()
                    .filter(|t| !removed_set.contains(t.term.as_str()))
                    .map(|t| t.raw.as_str())
                    .collect();
                let exact = ranker.score_text("covid outbreak", &kept.join(" "));
                let fast = scorer.score_without(&removed);
                assert_eq!(
                    fast.to_bits(),
                    exact.to_bits(),
                    "{} mask {mask:#b}",
                    ranker.name()
                );
            }
        }
    }

    #[test]
    fn augmented_scorer_rejects_multi_token_surfaces() {
        let idx = index();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let base = rank_corpus(&r, "covid outbreak");
        assert!(AugmentedScorer::new(&r, &base, &["secret microchip"]).is_none());
        assert!(AugmentedScorer::new(&r, &base, &["zzzunknown"]).is_none());
    }

    #[test]
    fn subset_scorer_matches_rank_corpus() {
        let idx = index();
        for ranker in rankers(&idx) {
            let surfaces = ["covid", "outbreak", "microchip"];
            let scorer = SubsetScorer::new(ranker.as_ref(), &surfaces).unwrap();
            let subsets: Vec<Vec<usize>> = vec![
                vec![0],
                vec![1],
                vec![2],
                vec![0, 1],
                vec![0, 2],
                vec![0, 1, 2],
            ];
            for kept in subsets {
                let reduced: Vec<&str> = kept.iter().map(|&i| surfaces[i]).collect();
                let full = rank_corpus(ranker.as_ref(), &reduced.join(" "));
                for target in idx.doc_ids() {
                    assert_eq!(
                        scorer.rank_with(&kept, target),
                        full.rank_of(target),
                        "{} kept {kept:?} target {target}",
                        ranker.name()
                    );
                }
            }
        }
    }
}
