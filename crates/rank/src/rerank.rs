//! Corpus ranking and pool re-ranking — the two operations every CREDENCE
//! explainer is built from.
//!
//! * [`rank_corpus`] produces the ranking `D^M` of §II-A: the whole corpus
//!   ordered by the black-box model, from which the UI shows the top-k.
//! * [`rerank_pool`] implements the §III-C mechanic reused by the
//!   sentence-removal explainer: take the top-(k+1) pool, substitute one
//!   document's body with a perturbed version, re-rank the pool, and report
//!   each document's movement.

use std::cmp::Ordering;

use credence_index::{DocId, PartitionSpec, TopKOptions, TopKStats};

use crate::ranker::Ranker;

/// A full corpus ranking for one query under one model.
///
/// Rank and score lookups are O(1): construction builds a doc-id→position
/// map alongside the sorted entries, because the counterfactual search
/// loops call [`RankedList::rank_of`] once per evaluated candidate.
#[derive(Debug, Clone)]
pub struct RankedList {
    entries: Vec<(DocId, f64)>,
    positions: std::collections::HashMap<DocId, usize>,
}

impl RankedList {
    /// Construct from `(doc, score)` pairs (any order).
    pub fn from_scores(mut entries: Vec<(DocId, f64)>) -> Self {
        entries.sort_unstable_by(compare_hits);
        let positions = entries
            .iter()
            .enumerate()
            .map(|(i, &(d, _))| (d, i))
            .collect();
        Self { entries, positions }
    }

    /// The ranked entries, best first.
    pub fn entries(&self) -> &[(DocId, f64)] {
        &self.entries
    }

    /// 1-based rank of `doc`, or `None` when it is not in the ranking.
    pub fn rank_of(&self, doc: DocId) -> Option<usize> {
        self.positions.get(&doc).map(|&p| p + 1)
    }

    /// Score of `doc`, if ranked.
    pub fn score_of(&self, doc: DocId) -> Option<f64> {
        self.positions.get(&doc).map(|&p| self.entries[p].1)
    }

    /// The ids of the top `k` documents (fewer when the ranking is shorter).
    pub fn top_k(&self, k: usize) -> Vec<DocId> {
        self.entries.iter().take(k).map(|&(d, _)| d).collect()
    }

    /// Number of ranked documents.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was ranked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn compare_hits(a: &(DocId, f64), b: &(DocId, f64)) -> Ordering {
    b.1.partial_cmp(&a.1)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.0.cmp(&b.0))
}

/// Rank the whole corpus for `query` under `ranker`.
///
/// Lexical models (where [`Ranker::zero_means_unmatched`] is true) omit
/// zero-scored documents, matching retrieval semantics; dense/hybrid models
/// rank every document.
pub fn rank_corpus(ranker: &dyn Ranker, query: &str) -> RankedList {
    let index = ranker.index();
    let drop_zeros = ranker.zero_means_unmatched();
    let entries: Vec<(DocId, f64)> = index
        .doc_ids()
        .map(|d| (d, ranker.score_doc(query, d)))
        .filter(|&(_, s)| !drop_zeros || s > 0.0)
        .collect();
    RankedList::from_scores(entries)
}

/// Rank the whole corpus for `query`, routing through the pruned top-k
/// engine when the model supports index-driven retrieval
/// ([`Ranker::retrieve_top_k`] with `k = num_docs`) and reporting execution
/// counters. Models without the hook fall back to the exhaustive
/// per-document scan — parallel over `fallback_threads` scoped threads when
/// `> 1`. Entries are bit-identical to [`rank_corpus`] either way.
pub fn rank_corpus_with(
    ranker: &dyn Ranker,
    query: &str,
    opts: &TopKOptions,
    fallback_threads: usize,
) -> (RankedList, TopKStats) {
    let n = ranker.index().num_docs();
    if let Some((hits, stats)) = ranker.retrieve_top_k(query, n, opts) {
        let entries: Vec<(DocId, f64)> = hits.into_iter().map(|h| (h.doc, h.score)).collect();
        return (RankedList::from_scores(entries), stats);
    }
    let list = rank_corpus_partitioned(ranker, query, fallback_threads, opts.partition);
    let scored = match opts.partition {
        Some(p) => ranker.index().doc_ids().filter(|&d| p.owns(d)).count(),
        None => n,
    };
    let mut stats = TopKStats::new("fallback");
    stats.docs_scored = scored as u64;
    stats.shards_used = if fallback_threads > 1 {
        fallback_threads.min(n.max(1)) as u64
    } else {
        0
    };
    (list, stats)
}

/// Parallel variant of [`rank_corpus`]: shards the corpus across scoped
/// threads. Produces byte-identical results to the serial path (scores are
/// computed per document, so summation order never changes), and is worth
/// using from roughly 10k documents upward — below that, thread setup
/// dominates. `threads = 0` or `1` falls back to the serial path.
pub fn rank_corpus_parallel(ranker: &dyn Ranker, query: &str, threads: usize) -> RankedList {
    rank_corpus_partitioned(ranker, query, threads, None)
}

/// Partition-filtered corpus ranking for cluster fanout: scores only the
/// documents owned by `part` (all of them when `None`). Each surviving
/// document's score is computed exactly as in [`rank_corpus`] — the filter
/// removes whole documents, never perturbs arithmetic — so per-partition
/// rankings merge bit-identically into the unpartitioned one.
pub fn rank_corpus_partitioned(
    ranker: &dyn Ranker,
    query: &str,
    threads: usize,
    part: Option<PartitionSpec>,
) -> RankedList {
    let index = ranker.index();
    let n = index.num_docs();
    if n == 0 {
        return RankedList::from_scores(Vec::new());
    }
    let drop_zeros = ranker.zero_means_unmatched();
    let owns = |d: DocId| part.map_or(true, |p| p.owns(d));
    if threads <= 1 {
        let entries: Vec<(DocId, f64)> = index
            .doc_ids()
            .filter(|&d| owns(d))
            .map(|d| (d, ranker.score_doc(query, d)))
            .filter(|&(_, s)| !drop_zeros || s > 0.0)
            .collect();
        return RankedList::from_scores(entries);
    }
    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);
    let mut entries: Vec<(DocId, f64)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                scope.spawn(move || {
                    (lo..hi)
                        .map(|i| DocId(i as u32))
                        .filter(|&d| owns(d))
                        .map(|d| (d, ranker.score_doc(query, d)))
                        .filter(|&(_, s)| !drop_zeros || s > 0.0)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            entries.extend(handle.join().expect("scoring thread panicked"));
        }
    });
    RankedList::from_scores(entries)
}

/// One row of a pool re-ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolEntry {
    /// The document.
    pub doc: DocId,
    /// Its score in the re-ranked pool.
    pub score: f64,
    /// Its 1-based rank in the re-ranked pool.
    pub new_rank: usize,
    /// Its 1-based rank in the pool *before* substitution (position in the
    /// input slice + 1).
    pub old_rank: usize,
    /// Whether this is the substituted (perturbed) document.
    pub substituted: bool,
}

impl PoolEntry {
    /// Rank movement: negative = raised (toward rank 1), positive = lowered.
    pub fn movement(&self) -> i64 {
        self.new_rank as i64 - self.old_rank as i64
    }
}

/// Re-rank `pool` (given in its current rank order) after substituting
/// `substitute = (doc, new_body)` for that document's original body.
///
/// This is exactly the builder's RE-RANK operation (§III-C): "the edited
/// document is substituted for the original, then re-ranked alongside the
/// other top k+1 documents". With `substitute = None` it recomputes the
/// pool ranking unchanged (useful for verifying stability).
///
/// The returned entries are sorted by `new_rank`. A perturbed document whose
/// score drops to zero stays in the pool (it *is* one of the k+1 documents
/// being compared) and simply sinks to the bottom — this is how a rank of
/// k+1 = 11 arises in Figures 2 and 5.
pub fn rerank_pool(
    ranker: &dyn Ranker,
    query: &str,
    pool: &[DocId],
    substitute: Option<(DocId, &str)>,
) -> Vec<PoolEntry> {
    let mut rows: Vec<PoolEntry> = pool
        .iter()
        .enumerate()
        .map(|(i, &doc)| {
            let (score, substituted) = match substitute {
                Some((target, body)) if target == doc => (ranker.score_text(query, body), true),
                _ => (ranker.score_doc(query, doc), false),
            };
            PoolEntry {
                doc,
                score,
                new_rank: 0,
                old_rank: i + 1,
                substituted,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.doc.cmp(&b.doc))
    });
    for (i, row) in rows.iter_mut().enumerate() {
        row.new_rank = i + 1;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bm25::Bm25Ranker;
    use credence_index::{Bm25Params, Document, InvertedIndex};
    use credence_text::Analyzer;

    fn index() -> InvertedIndex {
        InvertedIndex::build(
            vec![
                Document::from_body("covid outbreak covid outbreak emergency"), // 0
                Document::from_body("covid outbreak in the city today"),        // 1
                Document::from_body("covid numbers fall in the region"),        // 2
                Document::from_body("garden flowers bloom brightly"),           // 3
                Document::from_body("outbreak of joy at the festival"),         // 4
            ],
            Analyzer::english(),
        )
    }

    #[test]
    fn rank_corpus_orders_and_filters() {
        let idx = index();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let list = rank_corpus(&r, "covid outbreak");
        assert_eq!(list.entries()[0].0, DocId(0));
        assert!(list.rank_of(DocId(3)).is_none(), "garden doc unmatched");
        assert_eq!(list.rank_of(DocId(0)), Some(1));
        assert!(list.len() == 4);
        let scores: Vec<f64> = list.entries().iter().map(|e| e.1).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn top_k_truncates() {
        let idx = index();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let list = rank_corpus(&r, "covid outbreak");
        assert_eq!(list.top_k(2).len(), 2);
        assert_eq!(list.top_k(100).len(), list.len());
    }

    #[test]
    fn empty_query_ranks_nothing() {
        let idx = index();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let list = rank_corpus(&r, "");
        assert!(list.is_empty());
        assert_eq!(list.rank_of(DocId(0)), None);
    }

    #[test]
    fn rerank_without_substitution_is_stable() {
        let idx = index();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let list = rank_corpus(&r, "covid outbreak");
        let pool = list.top_k(3);
        let rows = rerank_pool(&r, "covid outbreak", &pool, None);
        for row in &rows {
            assert_eq!(row.new_rank, row.old_rank, "{row:?}");
            assert_eq!(row.movement(), 0);
            assert!(!row.substituted);
        }
    }

    #[test]
    fn substituting_gutted_body_sinks_to_bottom() {
        let idx = index();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let list = rank_corpus(&r, "covid outbreak");
        let pool = list.top_k(3);
        let top = pool[0];
        let rows = rerank_pool(
            &r,
            "covid outbreak",
            &pool,
            Some((top, "nothing relevant here")),
        );
        let sub = rows.iter().find(|r| r.substituted).unwrap();
        assert_eq!(sub.doc, top);
        assert_eq!(sub.new_rank, pool.len());
        assert_eq!(sub.score, 0.0);
        assert!(sub.movement() > 0, "lowered");
        // Everyone else moved up or stayed.
        for row in rows.iter().filter(|r| !r.substituted) {
            assert!(row.movement() <= 0);
        }
    }

    #[test]
    fn rerank_is_a_permutation_of_the_pool() {
        let idx = index();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let list = rank_corpus(&r, "covid outbreak");
        let pool = list.top_k(4);
        let rows = rerank_pool(&r, "covid outbreak", &pool, Some((pool[1], "covid")));
        let mut docs: Vec<DocId> = rows.iter().map(|r| r.doc).collect();
        docs.sort_unstable();
        let mut expected = pool.clone();
        expected.sort_unstable();
        assert_eq!(docs, expected);
        let ranks: Vec<usize> = rows.iter().map(|r| r.new_rank).collect();
        assert_eq!(ranks, (1..=pool.len()).collect::<Vec<_>>());
    }

    #[test]
    fn boosting_substitution_raises_rank() {
        let idx = index();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        let list = rank_corpus(&r, "covid outbreak");
        let pool = list.top_k(3);
        let last = *pool.last().unwrap();
        let rows = rerank_pool(
            &r,
            "covid outbreak",
            &pool,
            Some((last, "covid outbreak covid outbreak covid outbreak")),
        );
        let sub = rows.iter().find(|r| r.substituted).unwrap();
        assert!(sub.movement() < 0, "raised: {sub:?}");
        assert_eq!(sub.new_rank, 1);
    }

    #[test]
    fn parallel_ranking_matches_serial() {
        let idx = index();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        for threads in [0usize, 1, 2, 3, 8, 64] {
            let serial = rank_corpus(&r, "covid outbreak");
            let parallel = rank_corpus_parallel(&r, "covid outbreak", threads);
            assert_eq!(serial.entries(), parallel.entries(), "threads={threads}");
        }
        // Empty corpus.
        let empty = InvertedIndex::build(vec![], Analyzer::english());
        let re = Bm25Ranker::new(&empty, Bm25Params::default());
        assert!(rank_corpus_parallel(&re, "covid", 4).is_empty());
    }

    #[test]
    fn rank_corpus_with_is_bit_identical_for_every_strategy() {
        use crate::ql::{QlSmoothing, QueryLikelihoodRanker};
        use crate::rm3::{Rm3Config, Rm3Ranker};
        use credence_index::SearchStrategy;

        let idx = index();
        let bm25 = Bm25Ranker::new(&idx, Bm25Params::default());
        let rm3 = Rm3Ranker::new(&idx, Rm3Config::default());
        let ql = QueryLikelihoodRanker::new(&idx, QlSmoothing::default());
        let rankers: [&dyn Ranker; 3] = [&bm25, &rm3, &ql];
        for ranker in rankers {
            let reference = rank_corpus(ranker, "covid outbreak");
            for strategy in [
                SearchStrategy::Auto,
                SearchStrategy::Exhaustive,
                SearchStrategy::Pruned,
                SearchStrategy::BlockMax,
                SearchStrategy::Sharded,
            ] {
                let opts = TopKOptions {
                    strategy,
                    shards: 2,
                    ..TopKOptions::default()
                };
                let (list, stats) = rank_corpus_with(ranker, "covid outbreak", &opts, 2);
                assert_eq!(list.entries().len(), reference.entries().len());
                for (a, b) in list.entries().iter().zip(reference.entries()) {
                    assert_eq!(a.0, b.0, "{} {strategy:?}", ranker.name());
                    assert_eq!(a.1.to_bits(), b.1.to_bits(), "{}", ranker.name());
                }
                // QL has no index-driven retrieval hook and must fall back.
                if ranker.name().starts_with("ql") {
                    assert_eq!(stats.strategy, "fallback");
                }
            }
        }
    }

    #[test]
    fn empty_pool_is_fine() {
        let idx = index();
        let r = Bm25Ranker::new(&idx, Bm25Params::default());
        assert!(rerank_pool(&r, "covid", &[], None).is_empty());
    }
}
