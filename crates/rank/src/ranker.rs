//! The black-box ranker contract.

use credence_index::{DocId, InvertedIndex, SearchHit, TopKOptions, TopKStats};
use credence_text::TermId;

/// A black-box ranking model `M` over a fixed corpus.
///
/// The contract the CREDENCE algorithms rely on:
///
/// 1. `score_doc(q, d)` and `score_text(q, body(d))` agree for indexed
///    documents — perturbing a document and scoring the perturbed text is
///    meaningful (property-tested per implementation).
/// 2. Scores are comparable across documents for one query; higher is more
///    relevant. Nothing about score *scale* is assumed.
/// 3. Collection statistics are frozen at index time, so scoring a perturbed
///    document never changes any other document's score.
///
/// Rankers are `Send + Sync` so the REST server can share one engine across
/// connection threads.
pub trait Ranker: Send + Sync {
    /// A short human-readable model name (shown in experiment tables).
    fn name(&self) -> &str;

    /// The corpus this model ranks.
    fn index(&self) -> &InvertedIndex;

    /// Relevance score of an indexed document for a raw query string.
    fn score_doc(&self, query: &str, doc: DocId) -> f64;

    /// Relevance score of arbitrary text (e.g. a perturbed document body)
    /// for a raw query string, under the frozen corpus statistics.
    fn score_text(&self, query: &str, body: &str) -> f64;

    /// Whether a zero score means "no relevance signal at all" (lexical
    /// models), in which case corpus ranking omits zero-scored documents.
    /// Dense/hybrid models return `false` and rank every document.
    fn zero_means_unmatched(&self) -> bool {
        true
    }

    /// Whether this model's score decomposes into a left-fold sum of
    /// per-query-term weights, exposed through [`Ranker::term_weight`].
    ///
    /// When `true`, the incremental candidate evaluators
    /// ([`crate::incremental`]) may reconstruct `score_text` / `score_doc`
    /// as `analyze_query(q).iter().map(|t| term_weight(t, tf, len)).sum()`
    /// — the same `f64` left fold from `0.0` the full scorer performs, over
    /// the same integer inputs, so the reconstruction is bit-identical.
    /// Models whose score is not term-decomposable (dense, feedback-expanded)
    /// keep the default `false` and the evaluators fall back to exact
    /// re-scoring.
    fn supports_term_weights(&self) -> bool {
        false
    }

    /// Weight one query-term occurrence count contributes to the score of a
    /// document with `tf` occurrences of `term` and analysed length
    /// `doc_len`, under the frozen collection statistics.
    ///
    /// Must satisfy, whenever [`Ranker::supports_term_weights`] is `true`:
    /// summing `term_weight` over `analyze_query(q)` in query order (with
    /// tf/len taken from the same analysis the full scorer uses) reproduces
    /// `score_doc` / `score_text` exactly. Returns `None` when the model is
    /// not term-decomposable.
    fn term_weight(&self, term: TermId, tf: u32, doc_len: u32) -> Option<f64> {
        let _ = (term, tf, doc_len);
        None
    }

    /// Retrieve the top `k` documents for `query` straight from the index
    /// via the pruned top-k engine, when the model supports it.
    ///
    /// Contract: when `Some`, the hit list must be bit-identical — as
    /// `(doc, score)` pairs under the (descending score, ascending doc)
    /// total order — to scoring every document with [`Ranker::score_doc`]
    /// and keeping the `k` best with positive score. With `k >= num_docs`
    /// the hits therefore reproduce the model's full corpus ranking.
    /// Models without an index-driven scorer keep the default `None` and
    /// callers fall back to the exhaustive per-document scan.
    fn retrieve_top_k(
        &self,
        query: &str,
        k: usize,
        opts: &TopKOptions,
    ) -> Option<(Vec<SearchHit>, TopKStats)> {
        let _ = (query, k, opts);
        None
    }
}

#[cfg(test)]
mod tests {
    // The trait itself is exercised through its implementations; shared
    // conformance checks live in `rerank::tests` and each impl's tests.
}
