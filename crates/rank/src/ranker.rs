//! The black-box ranker contract.

use credence_index::{DocId, InvertedIndex};

/// A black-box ranking model `M` over a fixed corpus.
///
/// The contract the CREDENCE algorithms rely on:
///
/// 1. `score_doc(q, d)` and `score_text(q, body(d))` agree for indexed
///    documents — perturbing a document and scoring the perturbed text is
///    meaningful (property-tested per implementation).
/// 2. Scores are comparable across documents for one query; higher is more
///    relevant. Nothing about score *scale* is assumed.
/// 3. Collection statistics are frozen at index time, so scoring a perturbed
///    document never changes any other document's score.
///
/// Rankers are `Send + Sync` so the REST server can share one engine across
/// connection threads.
pub trait Ranker: Send + Sync {
    /// A short human-readable model name (shown in experiment tables).
    fn name(&self) -> &str;

    /// The corpus this model ranks.
    fn index(&self) -> &InvertedIndex;

    /// Relevance score of an indexed document for a raw query string.
    fn score_doc(&self, query: &str, doc: DocId) -> f64;

    /// Relevance score of arbitrary text (e.g. a perturbed document body)
    /// for a raw query string, under the frozen corpus statistics.
    fn score_text(&self, query: &str, body: &str) -> f64;

    /// Whether a zero score means "no relevance signal at all" (lexical
    /// models), in which case corpus ranking omits zero-scored documents.
    /// Dense/hybrid models return `false` and rank every document.
    fn zero_means_unmatched(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    // The trait itself is exercised through its implementations; shared
    // conformance checks live in `rerank::tests` and each impl's tests.
}
