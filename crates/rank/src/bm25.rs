//! The BM25 ranker — Anserini's first-stage retrieval model.

use credence_index::score::{bm25_score_adhoc, bm25_score_indexed, bm25_term_weight};
use credence_index::{
    search_top_k_with, Bm25Params, DocId, InvertedIndex, SearchHit, TopKOptions, TopKStats,
};
use credence_text::TermId;

use crate::ranker::Ranker;

/// BM25 over an [`InvertedIndex`].
///
/// ```
/// use credence_index::{Document, InvertedIndex, Bm25Params};
/// use credence_rank::{Bm25Ranker, Ranker};
/// use credence_text::Analyzer;
/// let idx = InvertedIndex::build(
///     vec![Document::from_body("covid outbreak news")],
///     Analyzer::english(),
/// );
/// let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
/// assert!(ranker.score_doc("covid", credence_index::DocId(0)) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Bm25Ranker<'a> {
    index: &'a InvertedIndex,
    params: Bm25Params,
}

impl<'a> Bm25Ranker<'a> {
    /// Create a BM25 ranker over `index`.
    pub fn new(index: &'a InvertedIndex, params: Bm25Params) -> Self {
        Self { index, params }
    }

    /// The BM25 parameters in use.
    pub fn params(&self) -> Bm25Params {
        self.params
    }
}

impl Ranker for Bm25Ranker<'_> {
    fn name(&self) -> &str {
        "bm25"
    }

    fn index(&self) -> &InvertedIndex {
        self.index
    }

    fn score_doc(&self, query: &str, doc: DocId) -> f64 {
        let q = self.index.analyze_query(query);
        bm25_score_indexed(self.params, self.index, &q, doc)
    }

    fn score_text(&self, query: &str, body: &str) -> f64 {
        let q = self.index.analyze_query(query);
        let (terms, len) = self.index.analyze_adhoc(body);
        bm25_score_adhoc(self.params, self.index.stats(), &q, &terms, len)
    }

    fn supports_term_weights(&self) -> bool {
        true
    }

    fn term_weight(&self, term: TermId, tf: u32, doc_len: u32) -> Option<f64> {
        // The same weight function both full scorers fold over.
        Some(bm25_term_weight(
            self.params,
            self.index.stats(),
            term,
            tf,
            doc_len,
        ))
    }

    fn retrieve_top_k(
        &self,
        query: &str,
        k: usize,
        opts: &TopKOptions,
    ) -> Option<(Vec<SearchHit>, TopKStats)> {
        // The engine's exact scorer is `bm25_score_indexed` over the analysed
        // query — the same fold `score_doc` performs — so the hits are
        // bit-identical to the exhaustive per-document scan.
        let q = self.index.analyze_query(query);
        Some(search_top_k_with(self.index, self.params, &q, k, opts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_index::Document;
    use credence_text::Analyzer;

    fn index() -> InvertedIndex {
        InvertedIndex::build(
            vec![
                Document::from_body("covid outbreak spreads across the region"),
                Document::from_body("garden flowers bloom in spring"),
                Document::from_body("covid cases fall as outbreak slows down"),
            ],
            Analyzer::english(),
        )
    }

    #[test]
    fn doc_and_text_scores_agree() {
        let idx = index();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        for d in idx.doc_ids() {
            let body = &idx.document(d).unwrap().body;
            let a = ranker.score_doc("covid outbreak", d);
            let b = ranker.score_text("covid outbreak", body);
            assert!((a - b).abs() < 1e-12, "doc {d}: {a} vs {b}");
        }
    }

    #[test]
    fn unrelated_doc_scores_zero() {
        let idx = index();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        assert_eq!(ranker.score_doc("covid", DocId(1)), 0.0);
        assert!(ranker.zero_means_unmatched());
    }

    #[test]
    fn empty_query_scores_zero() {
        let idx = index();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        assert_eq!(ranker.score_doc("", DocId(0)), 0.0);
        assert_eq!(ranker.score_text("", "covid outbreak"), 0.0);
    }

    #[test]
    fn perturbation_removing_query_terms_lowers_score() {
        let idx = index();
        let ranker = Bm25Ranker::new(&idx, Bm25Params::default());
        let full = ranker.score_text("covid outbreak", "covid outbreak spreads across the region");
        let perturbed = ranker.score_text("covid outbreak", "spreads across the region");
        assert!(perturbed < full);
        assert_eq!(perturbed, 0.0);
    }
}
