//! Feature-aware ranking — the paper's stated future work.
//!
//! §II-A: "we assume that R assesses rank using only the body of each
//! document. In future work, we plan to explain ranking models that support
//! richer sets of features (e.g., user preferences)." This module implements
//! that richer model so the feature-level counterfactual explainer
//! (`credence-core::feature_counterfactual`) has something real to explain:
//!
//! ```text
//! score(q, d) = text_score(q, d) + Σ_i w_i · f_i(d)
//! ```
//!
//! where `f_i(d) ∈ [0, 1]` are per-document features (recency, popularity,
//! user-preference affinity, …) and `w_i ≥ 0` are model weights. The text
//! component is any black-box [`Ranker`]; the feature component is linear so
//! the *simulated* model family is simple, but the explainer still treats
//! the whole thing as a black box — it only asks for scores under
//! hypothetical feature values.

use credence_index::{DocId, InvertedIndex};

use crate::ranker::Ranker;

/// Schema of the feature space: names, in feature-index order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureSchema {
    names: Vec<String>,
}

impl FeatureSchema {
    /// Create a schema from feature names.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(names: I) -> Self {
        Self {
            names: names.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the schema has no features.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The feature names.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// A ranker that can score documents under *hypothetical* feature values —
/// the contract the feature-counterfactual explainer needs.
pub trait FeatureAwareRanker: Ranker {
    /// The feature schema.
    fn schema(&self) -> &FeatureSchema;

    /// The actual feature vector of a document.
    fn features(&self, doc: DocId) -> &[f64];

    /// The model weight of each feature (same order as the schema).
    fn weights(&self) -> &[f64];

    /// Score `doc` as if its features were `features` (text untouched).
    fn score_with_features(&self, query: &str, doc: DocId, features: &[f64]) -> f64;
}

/// The linear feature-augmented ranker.
pub struct FeatureRanker<'a, R: Ranker> {
    base: R,
    schema: FeatureSchema,
    weights: Vec<f64>,
    /// Row-major `num_docs × num_features`.
    features: Vec<f64>,
    index: &'a InvertedIndex,
}

impl<'a, R: Ranker> FeatureRanker<'a, R> {
    /// Build over a base text ranker, a schema, per-feature weights, and one
    /// feature vector per document (in `DocId` order).
    ///
    /// Panics when dimensions disagree or feature values leave `[0, 1]`.
    pub fn new(
        index: &'a InvertedIndex,
        base: R,
        schema: FeatureSchema,
        weights: Vec<f64>,
        features: Vec<Vec<f64>>,
    ) -> Self {
        assert_eq!(weights.len(), schema.len(), "one weight per feature");
        assert_eq!(
            features.len(),
            index.num_docs(),
            "one feature vector per document"
        );
        let mut flat = Vec::with_capacity(features.len() * schema.len());
        for (i, row) in features.iter().enumerate() {
            assert_eq!(row.len(), schema.len(), "doc {i}: wrong feature count");
            for &v in row {
                assert!((0.0..=1.0).contains(&v), "doc {i}: feature out of [0,1]");
                flat.push(v);
            }
        }
        Self {
            base,
            schema,
            weights,
            features: flat,
            index,
        }
    }

    fn feature_score(&self, features: &[f64]) -> f64 {
        self.weights.iter().zip(features).map(|(w, f)| w * f).sum()
    }

    fn doc_features(&self, doc: DocId) -> &[f64] {
        let n = self.schema.len();
        &self.features[doc.index() * n..(doc.index() + 1) * n]
    }
}

impl<R: Ranker> Ranker for FeatureRanker<'_, R> {
    fn name(&self) -> &str {
        "feature-aware"
    }

    fn index(&self) -> &InvertedIndex {
        self.index
    }

    fn score_doc(&self, query: &str, doc: DocId) -> f64 {
        self.base.score_doc(query, doc) + self.feature_score(self.doc_features(doc))
    }

    fn score_text(&self, query: &str, body: &str) -> f64 {
        // Ad-hoc text has no features: the feature component is zero, which
        // matches the builder's semantics (an edited body is evaluated as
        // pure text). Feature hypotheticals go through
        // `score_with_features`.
        self.base.score_text(query, body)
    }

    fn zero_means_unmatched(&self) -> bool {
        // A document can be ranked purely on features.
        false
    }
}

impl<R: Ranker> FeatureAwareRanker for FeatureRanker<'_, R> {
    fn schema(&self) -> &FeatureSchema {
        &self.schema
    }

    fn features(&self, doc: DocId) -> &[f64] {
        self.doc_features(doc)
    }

    fn weights(&self) -> &[f64] {
        &self.weights
    }

    fn score_with_features(&self, query: &str, doc: DocId, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.schema.len());
        self.base.score_doc(query, doc) + self.feature_score(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bm25::Bm25Ranker;
    use crate::rerank::rank_corpus;
    use credence_index::{Bm25Params, Document};
    use credence_text::Analyzer;

    fn index() -> InvertedIndex {
        InvertedIndex::build(
            vec![
                Document::from_body("covid outbreak in the city today"),
                Document::from_body("covid outbreak in the city today"),
                Document::from_body("garden fair opens downtown"),
            ],
            Analyzer::english(),
        )
    }

    fn ranker(idx: &InvertedIndex) -> FeatureRanker<'_, Bm25Ranker<'_>> {
        FeatureRanker::new(
            idx,
            Bm25Ranker::new(idx, Bm25Params::default()),
            FeatureSchema::new(["recency", "popularity"]),
            vec![1.0, 0.5],
            vec![
                vec![0.1, 0.2], // doc 0: old, unpopular
                vec![0.9, 0.8], // doc 1: fresh, popular
                vec![1.0, 1.0], // doc 2: fresh, popular, but off-topic
            ],
        )
    }

    #[test]
    fn features_break_text_ties() {
        let idx = index();
        let r = ranker(&idx);
        // Docs 0 and 1 have identical text; features must rank 1 first.
        let ranking = rank_corpus(&r, "covid outbreak");
        assert!(ranking.rank_of(DocId(1)).unwrap() < ranking.rank_of(DocId(0)).unwrap());
    }

    #[test]
    fn pure_feature_relevance_is_possible() {
        let idx = index();
        let r = ranker(&idx);
        // The garden doc has no query terms but maximal features.
        let score = r.score_doc("covid outbreak", DocId(2));
        assert!((score - 1.5).abs() < 1e-12);
        assert!(!r.zero_means_unmatched());
    }

    #[test]
    fn score_with_features_overrides() {
        let idx = index();
        let r = ranker(&idx);
        let base = r.score_doc("covid outbreak", DocId(1));
        let zeroed = r.score_with_features("covid outbreak", DocId(1), &[0.0, 0.0]);
        let expected_drop = 1.0 * 0.9 + 0.5 * 0.8;
        assert!((base - zeroed - expected_drop).abs() < 1e-12);
        let unchanged = r.score_with_features("covid outbreak", DocId(1), &[0.9, 0.8]);
        assert!((base - unchanged).abs() < 1e-12);
    }

    #[test]
    fn text_scoring_ignores_features() {
        let idx = index();
        let r = ranker(&idx);
        let body = &idx.document(DocId(1)).unwrap().body;
        let text_only = r.score_text("covid outbreak", body);
        let bm25 = Bm25Ranker::new(&idx, Bm25Params::default());
        assert!((text_only - bm25.score_doc("covid outbreak", DocId(1))).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one weight per feature")]
    fn dimension_mismatch_panics() {
        let idx = index();
        let _ = FeatureRanker::new(
            &idx,
            Bm25Ranker::new(&idx, Bm25Params::default()),
            FeatureSchema::new(["recency"]),
            vec![1.0, 2.0],
            vec![vec![0.1]; 3],
        );
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn out_of_range_feature_panics() {
        let idx = index();
        let _ = FeatureRanker::new(
            &idx,
            Bm25Ranker::new(&idx, Bm25Params::default()),
            FeatureSchema::new(["recency"]),
            vec![1.0],
            vec![vec![0.5], vec![1.5], vec![0.5]],
        );
    }

    #[test]
    fn schema_accessors() {
        let schema = FeatureSchema::new(["a", "b"]);
        assert_eq!(schema.len(), 2);
        assert!(!schema.is_empty());
        assert_eq!(schema.names(), &["a".to_string(), "b".to_string()]);
        assert!(FeatureSchema::new(Vec::<String>::new()).is_empty());
    }
}
