//! Black-box rankers for the CREDENCE reproduction.
//!
//! §II-A of the paper defines the ranking function `R(q, d, D, M)` over a
//! *black-box* model `M` — the explanation algorithms only ever ask for
//! ranks, never for gradients or internals. This crate supplies that
//! interface and three interchangeable models:
//!
//! * [`Bm25Ranker`] — the Anserini first-stage ranker,
//! * [`QueryLikelihoodRanker`] — Dirichlet/Jelinek-Mercer smoothed language
//!   model ranking,
//! * [`NeuralSimRanker`] — the monoT5 stand-in: a hybrid of corpus-trained
//!   embedding similarity and lexical BM25 evidence (see DESIGN.md for why
//!   this preserves the behaviour the explainers depend on).
//!
//! [`rerank`] implements the two ranking operations every CREDENCE
//! explainer is built from: ranking the corpus, and re-ranking a top-(k+1)
//! pool with one document substituted for a perturbed version (§III-C).

#![warn(missing_docs)]

pub mod bm25;
pub mod eval;
pub mod features;
pub mod incremental;
pub mod neural;
pub mod ql;
pub mod ranker;
pub mod rerank;
pub mod rm3;

pub use bm25::Bm25Ranker;
pub use eval::{average_precision, ndcg_at_k, precision_at_k, Qrels};
pub use features::{FeatureAwareRanker, FeatureRanker, FeatureSchema};
pub use incremental::{
    par_map, par_map_until, AugmentedScorer, DeltaProfile, DeltaScorer, PoolScorer, SubsetScorer,
    TermRemovalProfile, TermRemovalScorer,
};
pub use neural::{NeuralSimConfig, NeuralSimRanker};
pub use ql::{QlSmoothing, QueryLikelihoodRanker};
pub use ranker::Ranker;
pub use rerank::{
    rank_corpus, rank_corpus_parallel, rank_corpus_partitioned, rank_corpus_with, rerank_pool,
    PoolEntry, RankedList,
};
pub use rm3::{Rm3Config, Rm3Ranker};
