//! The neural-ranker stand-in (monoT5 substitute).
//!
//! The original CREDENCE demo reranked with monoT5, a sequence-to-sequence
//! cross-encoder. Its observable property — the only one the counterfactual
//! algorithms depend on — is that it scores query–document pairs by
//! *semantic* affinity, rewarding documents that discuss the query's topic
//! even beyond exact term overlap, while still being strongly driven by the
//! query terms themselves.
//!
//! [`NeuralSimRanker`] reproduces that behaviour with components trained
//! from scratch on the corpus: an SGNS word-embedding space
//! (`credence-embed`) provides the semantic signal as the cosine similarity
//! between the mean query vector and the mean document vector, and a
//! saturated BM25 component provides the lexical signal:
//!
//! ```text
//! score(q, d) = α · max(0, cos(v̄_q, v̄_d)) + (1 − α) · bm25(q, d) / (1 + bm25(q, d))
//! ```
//!
//! Both components lie in `[0, 1)`, so `α` meaningfully interpolates. The
//! model is a black box to the explainers: they only call
//! [`Ranker::score_doc`] / [`Ranker::score_text`].

use credence_embed::vecmath::cosine;
use credence_embed::{Word2Vec, Word2VecConfig};
use credence_index::score::{bm25_score_adhoc, bm25_score_indexed};
use credence_index::{Bm25Params, DocId, InvertedIndex};
use credence_text::TermId;

use crate::ranker::Ranker;

/// Configuration of the neural-sim ranker.
#[derive(Debug, Clone)]
pub struct NeuralSimConfig {
    /// Weight of the semantic (embedding) component, in `[0, 1]`.
    pub alpha: f64,
    /// BM25 parameters of the lexical component.
    pub bm25: Bm25Params,
    /// Embedding training configuration.
    pub embedding: Word2VecConfig,
}

impl Default for NeuralSimConfig {
    fn default() -> Self {
        Self {
            alpha: 0.4,
            bm25: Bm25Params::default(),
            embedding: Word2VecConfig {
                dim: 48,
                epochs: 5,
                ..Word2VecConfig::default()
            },
        }
    }
}

/// The trained hybrid ranker.
pub struct NeuralSimRanker<'a> {
    index: &'a InvertedIndex,
    config: NeuralSimConfig,
    embeddings: Word2Vec,
    /// Precomputed mean vector per document (row-major `num_docs × dim`).
    doc_vectors: Vec<f32>,
}

impl<'a> NeuralSimRanker<'a> {
    /// Train the embedding space on the corpus and precompute document
    /// vectors. Deterministic under the embedded seed.
    pub fn train(index: &'a InvertedIndex, config: NeuralSimConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.alpha),
            "alpha must lie in [0, 1]"
        );
        let analyzer = index.analyzer();
        let sequences: Vec<Vec<usize>> = index
            .documents()
            .iter()
            .map(|d| {
                analyzer
                    .analyze(&d.body)
                    .iter()
                    .filter_map(|t| index.vocabulary().id(t).map(|id| id as usize))
                    .collect()
            })
            .collect();
        let embeddings = Word2Vec::train(&sequences, index.vocabulary().len(), &config.embedding);
        let dim = embeddings.dim();
        let mut this = Self {
            index,
            config,
            embeddings,
            doc_vectors: Vec::new(),
        };
        // Compute document vectors through the same (term, tf) path that
        // `score_text` uses, so indexed and ad-hoc scoring agree bitwise.
        let mut doc_vectors = vec![0.0f32; index.num_docs() * dim];
        for d in index.doc_ids() {
            let v = this.mean_vector_of_counts(index.doc_terms(d));
            doc_vectors[d.index() * dim..(d.index() + 1) * dim].copy_from_slice(&v);
        }
        this.doc_vectors = doc_vectors;
        this
    }

    /// The trained embedding model (exposed for diagnostics).
    pub fn embeddings(&self) -> &Word2Vec {
        &self.embeddings
    }

    fn mean_vector_of_counts(&self, terms: &[(TermId, u32)]) -> Vec<f32> {
        let dim = self.embeddings.dim();
        let mut v = vec![0.0f32; dim];
        let mut total = 0u32;
        for &(t, tf) in terms {
            let w = self.embeddings.vector(t as usize);
            for (vi, wi) in v.iter_mut().zip(w) {
                *vi += tf as f32 * wi;
            }
            total += tf;
        }
        if total > 0 {
            let inv = 1.0 / total as f32;
            for x in v.iter_mut() {
                *x *= inv;
            }
        }
        v
    }

    fn query_vector(&self, query: &str) -> Vec<f32> {
        let ids: Vec<usize> = self
            .index
            .analyze_query(query)
            .iter()
            .map(|&t| t as usize)
            .collect();
        self.embeddings.mean_vector(&ids)
    }

    fn combine(&self, semantic: f64, bm25: f64) -> f64 {
        let lexical = bm25 / (1.0 + bm25);
        self.config.alpha * semantic.max(0.0) + (1.0 - self.config.alpha) * lexical
    }
}

impl Ranker for NeuralSimRanker<'_> {
    fn name(&self) -> &str {
        "neural-sim"
    }

    fn index(&self) -> &InvertedIndex {
        self.index
    }

    fn score_doc(&self, query: &str, doc: DocId) -> f64 {
        let qv = self.query_vector(query);
        let dim = self.embeddings.dim();
        let dv = &self.doc_vectors[doc.index() * dim..(doc.index() + 1) * dim];
        let semantic = cosine(&qv, dv) as f64;
        let q = self.index.analyze_query(query);
        let lexical = bm25_score_indexed(self.config.bm25, self.index, &q, doc);
        self.combine(semantic, lexical)
    }

    fn score_text(&self, query: &str, body: &str) -> f64 {
        let qv = self.query_vector(query);
        let (terms, len) = self.index.analyze_adhoc(body);
        let dv = self.mean_vector_of_counts(&terms);
        let semantic = cosine(&qv, &dv) as f64;
        let q = self.index.analyze_query(query);
        let lexical = bm25_score_adhoc(self.config.bm25, self.index.stats(), &q, &terms, len);
        self.combine(semantic, lexical)
    }

    fn zero_means_unmatched(&self) -> bool {
        // The semantic component can give positive relevance to documents
        // with no query term; every document participates in the ranking.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_index::Document;
    use credence_text::Analyzer;

    /// A corpus with a clear covid cluster and a clear gardening cluster,
    /// plus a covid-adjacent document that never uses the query terms.
    fn index() -> InvertedIndex {
        let mut docs = Vec::new();
        for i in 0..12 {
            if i % 2 == 0 {
                docs.push(Document::from_body(
                    "covid outbreak infections quarantine hospital vaccine pandemic \
                     covid outbreak infections quarantine hospital vaccine pandemic",
                ));
            } else {
                docs.push(Document::from_body(
                    "garden flowers bloom soil seeds spring compost \
                     garden flowers bloom soil seeds spring compost",
                ));
            }
        }
        // Covid-adjacent, no literal query terms.
        docs.push(Document::from_body(
            "infections quarantine hospital vaccine pandemic wards \
             infections quarantine hospital vaccine pandemic wards",
        ));
        // Garden control of the same shape.
        docs.push(Document::from_body(
            "flowers soil seeds spring compost mulch \
             flowers soil seeds spring compost mulch",
        ));
        InvertedIndex::build(docs, Analyzer::english())
    }

    fn ranker(idx: &InvertedIndex) -> NeuralSimRanker<'_> {
        NeuralSimRanker::train(
            idx,
            NeuralSimConfig {
                embedding: Word2VecConfig {
                    dim: 24,
                    epochs: 20,
                    ..Word2VecConfig::default()
                },
                ..NeuralSimConfig::default()
            },
        )
    }

    #[test]
    fn doc_and_text_scores_agree() {
        let idx = index();
        let r = ranker(&idx);
        for d in idx.doc_ids() {
            let body = &idx.document(d).unwrap().body;
            let a = r.score_doc("covid outbreak", d);
            let b = r.score_text("covid outbreak", body);
            assert!((a - b).abs() < 1e-9, "doc {d}: {a} vs {b}");
        }
    }

    #[test]
    fn rewards_semantic_match_beyond_term_overlap() {
        // The defining monoT5-like property: the covid-adjacent document
        // (no query terms) must outscore the garden document (no query
        // terms either) for a covid query.
        let idx = index();
        let r = ranker(&idx);
        let adjacent = r.score_doc("covid outbreak", DocId(12));
        let garden = r.score_doc("covid outbreak", DocId(13));
        assert!(
            adjacent > garden,
            "semantically related {adjacent} must beat unrelated {garden}"
        );
        assert!(adjacent > 0.0);
    }

    #[test]
    fn lexical_match_still_dominates() {
        let idx = index();
        let r = ranker(&idx);
        let on_topic = r.score_doc("covid outbreak", DocId(0));
        let adjacent = r.score_doc("covid outbreak", DocId(12));
        assert!(on_topic > adjacent);
    }

    #[test]
    fn scores_bounded() {
        let idx = index();
        let r = ranker(&idx);
        for d in idx.doc_ids() {
            let s = r.score_doc("covid outbreak garden", d);
            assert!((0.0..=1.0).contains(&s), "score {s} out of bounds");
        }
    }

    #[test]
    fn alpha_zero_is_pure_lexical_ordering() {
        let idx = index();
        let r = NeuralSimRanker::train(
            &idx,
            NeuralSimConfig {
                alpha: 0.0,
                embedding: Word2VecConfig {
                    dim: 8,
                    epochs: 1,
                    ..Word2VecConfig::default()
                },
                ..NeuralSimConfig::default()
            },
        );
        // No-query-term docs must score exactly 0 when alpha = 0.
        assert_eq!(r.score_doc("covid", DocId(13)), 0.0);
        assert!(r.score_doc("covid", DocId(0)) > 0.0);
    }

    #[test]
    fn ranks_every_document() {
        let idx = index();
        let r = ranker(&idx);
        assert!(!r.zero_means_unmatched());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let idx = index();
        let _ = NeuralSimRanker::train(
            &idx,
            NeuralSimConfig {
                alpha: 1.5,
                ..NeuralSimConfig::default()
            },
        );
    }
}
