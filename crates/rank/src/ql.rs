//! Query-likelihood language-model ranking.
//!
//! The second classical retrieval model in the Anserini toolkit. Documents
//! are scored by the (log) probability of generating the query from the
//! document's smoothed unigram language model. Two standard smoothers are
//! provided: Dirichlet (`mu`) and Jelinek-Mercer (`lambda`).
//!
//! QL assigns every document a finite log-probability, including documents
//! sharing no terms with the query; to keep the "non-relevant = not
//! retrieved" semantics the explainers use, documents with *no* query term
//! are reported as unmatched (score 0 with [`Ranker::zero_means_unmatched`]),
//! and matched documents are scored by their positive log-likelihood *ratio*
//! against the background model, which is zero exactly when the document
//! adds no evidence over the collection.

use credence_index::{CollectionStats, DocId, InvertedIndex};
use credence_text::TermId;

use crate::ranker::Ranker;

/// Smoothing strategy for the document language model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QlSmoothing {
    /// Dirichlet prior smoothing with pseudo-count `mu` (Anserini default
    /// `mu = 1000`).
    Dirichlet {
        /// The prior strength.
        mu: f64,
    },
    /// Jelinek-Mercer interpolation with weight `lambda` on the document
    /// model.
    JelinekMercer {
        /// Weight of the document model, in `(0, 1)`.
        lambda: f64,
    },
}

impl Default for QlSmoothing {
    fn default() -> Self {
        QlSmoothing::Dirichlet { mu: 1000.0 }
    }
}

/// Query-likelihood ranker over an [`InvertedIndex`].
#[derive(Debug, Clone)]
pub struct QueryLikelihoodRanker<'a> {
    index: &'a InvertedIndex,
    smoothing: QlSmoothing,
}

impl<'a> QueryLikelihoodRanker<'a> {
    /// Create a QL ranker with the given smoothing.
    pub fn new(index: &'a InvertedIndex, smoothing: QlSmoothing) -> Self {
        Self { index, smoothing }
    }

    /// The smoothing configuration.
    pub fn smoothing(&self) -> QlSmoothing {
        self.smoothing
    }

    /// Log-likelihood-ratio score of one term occurrence.
    ///
    /// `log(p(t|d) / p(t|C))`, which is positive when the document boosts
    /// the term above the background and 0 when `tf = 0` under Dirichlet
    /// (the standard rank-equivalent "log(1 + ...)" formulation).
    fn term_score(&self, stats: &CollectionStats, term: TermId, tf: u32, doc_len: u32) -> f64 {
        let p_bg = (stats.cf(term) as f64 / (stats.total_terms.max(1)) as f64).max(1e-12);
        match self.smoothing {
            QlSmoothing::Dirichlet { mu } => {
                // log( (tf + mu p_bg) / (|d| + mu) ) - log( mu p_bg / (|d| + mu) )
                //   = log(1 + tf / (mu p_bg))   ... rank-equivalent Dirichlet.
                (1.0 + tf as f64 / (mu * p_bg)).ln()
            }
            QlSmoothing::JelinekMercer { lambda } => {
                let p_doc = if doc_len == 0 {
                    0.0
                } else {
                    tf as f64 / doc_len as f64
                };
                (1.0 + lambda * p_doc / ((1.0 - lambda) * p_bg)).ln()
            }
        }
    }

    fn score_terms(&self, query: &[TermId], doc_terms: &[(TermId, u32)], doc_len: u32) -> f64 {
        let stats = self.index.stats();
        query
            .iter()
            .map(|&t| {
                let tf = doc_terms
                    .binary_search_by_key(&t, |&(x, _)| x)
                    .map(|i| doc_terms[i].1)
                    .unwrap_or(0);
                self.term_score(stats, t, tf, doc_len)
            })
            .sum()
    }
}

impl Ranker for QueryLikelihoodRanker<'_> {
    fn name(&self) -> &str {
        match self.smoothing {
            QlSmoothing::Dirichlet { .. } => "ql-dirichlet",
            QlSmoothing::JelinekMercer { .. } => "ql-jm",
        }
    }

    fn index(&self) -> &InvertedIndex {
        self.index
    }

    fn score_doc(&self, query: &str, doc: DocId) -> f64 {
        let q = self.index.analyze_query(query);
        self.score_terms(&q, self.index.doc_terms(doc), self.index.doc_len(doc))
    }

    fn score_text(&self, query: &str, body: &str) -> f64 {
        let q = self.index.analyze_query(query);
        let (terms, len) = self.index.analyze_adhoc(body);
        self.score_terms(&q, &terms, len)
    }

    fn supports_term_weights(&self) -> bool {
        true
    }

    fn term_weight(&self, term: TermId, tf: u32, doc_len: u32) -> Option<f64> {
        Some(self.term_score(self.index.stats(), term, tf, doc_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_index::Document;
    use credence_text::Analyzer;

    fn index() -> InvertedIndex {
        InvertedIndex::build(
            vec![
                Document::from_body("covid outbreak covid response plan"),
                Document::from_body("garden flowers bloom in quiet spring air"),
                Document::from_body("covid statistics updated for the region today"),
            ],
            Analyzer::english(),
        )
    }

    #[test]
    fn doc_and_text_scores_agree_dirichlet() {
        let idx = index();
        let r = QueryLikelihoodRanker::new(&idx, QlSmoothing::default());
        for d in idx.doc_ids() {
            let body = &idx.document(d).unwrap().body;
            let a = r.score_doc("covid outbreak", d);
            let b = r.score_text("covid outbreak", body);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn doc_and_text_scores_agree_jm() {
        let idx = index();
        let r = QueryLikelihoodRanker::new(&idx, QlSmoothing::JelinekMercer { lambda: 0.5 });
        for d in idx.doc_ids() {
            let body = &idx.document(d).unwrap().body;
            let a = r.score_doc("covid outbreak", d);
            let b = r.score_text("covid outbreak", body);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn unmatched_doc_scores_zero() {
        let idx = index();
        for smoothing in [
            QlSmoothing::default(),
            QlSmoothing::JelinekMercer { lambda: 0.5 },
        ] {
            let r = QueryLikelihoodRanker::new(&idx, smoothing);
            assert_eq!(r.score_doc("covid", DocId(1)), 0.0, "{:?}", smoothing);
        }
    }

    #[test]
    fn more_evidence_scores_higher() {
        let idx = index();
        let r = QueryLikelihoodRanker::new(&idx, QlSmoothing::default());
        let both = r.score_doc("covid outbreak", DocId(0));
        let one = r.score_doc("covid outbreak", DocId(2));
        assert!(both > one);
    }

    #[test]
    fn score_monotone_in_tf() {
        let idx = index();
        let r = QueryLikelihoodRanker::new(&idx, QlSmoothing::default());
        let s1 = r.score_text("covid", "covid filler words here");
        let s2 = r.score_text("covid", "covid covid filler words");
        assert!(s2 > s1);
    }

    #[test]
    fn names_reflect_smoothing() {
        let idx = index();
        assert_eq!(
            QueryLikelihoodRanker::new(&idx, QlSmoothing::default()).name(),
            "ql-dirichlet"
        );
        assert_eq!(
            QueryLikelihoodRanker::new(&idx, QlSmoothing::JelinekMercer { lambda: 0.3 }).name(),
            "ql-jm"
        );
    }
}
