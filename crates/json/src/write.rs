//! Compact JSON serialisation.

use crate::value::Value;

/// Serialise a value to a compact JSON string.
///
/// Object keys appear in `BTreeMap` order, so output is deterministic.
/// Non-finite numbers serialise as `null` (matching JavaScript's
/// `JSON.stringify`).
///
/// ```
/// use credence_json::{to_string, parse};
/// let v = parse(r#"{"b":1,"a":[true,null]}"#).unwrap();
/// assert_eq!(to_string(&v), r#"{"a":[true,null],"b":1}"#);
/// ```
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        // Integral values print without a trailing ".0".
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::value::obj;

    #[test]
    fn scalars() {
        assert_eq!(to_string(&Value::Null), "null");
        assert_eq!(to_string(&Value::Bool(true)), "true");
        assert_eq!(to_string(&Value::from(3i64)), "3");
        assert_eq!(to_string(&Value::from(3.25)), "3.25");
        assert_eq!(to_string(&Value::from("x")), r#""x""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Number(f64::INFINITY)), "null");
    }

    #[test]
    fn escapes() {
        assert_eq!(
            to_string(&Value::from("a\"b\\c\nd\u{0001}")),
            r#""a\"b\\c\nd\u0001""#
        );
    }

    #[test]
    fn unicode_is_emitted_raw() {
        assert_eq!(to_string(&Value::from("café 😀")), "\"café 😀\"");
    }

    #[test]
    fn object_key_order_deterministic() {
        let v = obj([("zebra", Value::from(1i64)), ("apple", Value::from(2i64))]);
        assert_eq!(to_string(&v), r#"{"apple":2,"zebra":1}"#);
    }

    #[test]
    fn round_trip() {
        let cases = [
            "null",
            "true",
            "[1,2.5,-3]",
            r#"{"a":[{"b":"c"},null],"d":false}"#,
            r#""escaped \" and \\ and \n""#,
            "[]",
            "{}",
        ];
        for case in cases {
            let v = parse(case).unwrap();
            let s = to_string(&v);
            let v2 = parse(&s).unwrap();
            assert_eq!(v, v2, "round trip failed for {case}");
        }
    }
}
