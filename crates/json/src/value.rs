//! The JSON value tree.

use std::collections::BTreeMap;

/// A JSON value.
///
/// Objects use a `BTreeMap` so serialisation order is deterministic — the
/// REST tests compare whole payloads byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (the JavaScript `f64` model).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with deterministic key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Borrow as `&str` when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as `f64` when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Convert to `u64` when this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Borrow as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as object map.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object field access: `value.get("key")`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// True when this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Number(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Self {
        Value::Array(a)
    }
}

/// Build a JSON object from `(key, value)` pairs.
///
/// ```
/// use credence_json::{obj, Value};
/// let v = obj([("a", Value::from(1i64)), ("b", Value::from("x"))]);
/// assert_eq!(v.get("a").unwrap().as_f64(), Some(1.0));
/// ```
pub fn obj<I, K>(pairs: I) -> Value
where
    I: IntoIterator<Item = (K, Value)>,
    K: Into<String>,
{
    Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(3.5).as_f64(), Some(3.5));
        assert_eq!(Value::from(7i64).as_u64(), Some(7));
        assert_eq!(Value::from(-1i64).as_u64(), None);
        assert_eq!(Value::from(3.5).as_u64(), None);
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::from("x").as_array(), None);
    }

    #[test]
    fn object_get() {
        let v = obj([("k", Value::from(1i64))]);
        assert!(v.get("k").is_some());
        assert!(v.get("missing").is_none());
        assert!(Value::Null.get("k").is_none());
    }
}
