//! A recursive-descent JSON parser (RFC 8259).

use std::collections::BTreeMap;
use std::fmt;

use crate::value::Value;

/// A parse failure with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
///
/// ```
/// use credence_json::parse;
/// let v = parse(r#"{"k": [1, 2.5, "x", null, true]}"#).unwrap();
/// assert_eq!(v.get("k").unwrap().as_array().unwrap().len(), 5);
/// ```
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal, expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a following \uXXXX low surrogate.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(self.err("expected low surrogate"));
                                    }
                                    self.pos += 1;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                    );
                                    continue;
                                }
                                return Err(self.err("lone high surrogate"));
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid code point"))?,
                                );
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar.
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty by peek");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        // Fraction.
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // Exponent.
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        let n: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::obj;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Value::Number(-350.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Value::from("hi"));
    }

    #[test]
    fn nested_structure() {
        let v = parse(r#"{"a": [1, {"b": "c"}], "d": null}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("c"));
        assert!(v.get("d").unwrap().is_null());
    }

    #[test]
    fn whitespace_everywhere() {
        let v = parse(" \n\t{ \"a\" :\r[ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), obj::<_, String>([]));
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\c\/d\n\tA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c/d\n\tA"));
    }

    #[test]
    fn surrogate_pairs() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn lone_surrogate_rejected() {
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("\"naïve café\"").unwrap();
        assert_eq!(v.as_str(), Some("naïve café"));
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("01").is_err(), "leading zeros invalid");
        assert!(parse("1.").is_err());
        assert!(parse("1e").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("true false").is_err(), "trailing tokens");
        assert!(parse("\"\u{0001}\"").is_err(), "raw control char");
    }

    #[test]
    fn error_offsets_reported() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn deep_nesting_guard() {
        let mut s = String::new();
        for _ in 0..300 {
            s.push('[');
        }
        assert!(parse(&s).is_err());
    }
}
