//! A minimal JSON value model, parser, and serialiser.
//!
//! The original CREDENCE backend is a FastAPI REST service; its system
//! boundary is JSON over HTTP. Rather than pulling a serde stack into an
//! offline build, this crate implements the small slice of JSON the server
//! and the corpus loaders need: full RFC 8259 parsing into a [`Value`] tree,
//! and compact serialisation back out. Numbers are kept as `f64` (the
//! JavaScript model, which is also what the original React front end saw).

#![warn(missing_docs)]

pub mod parse;
pub mod value;
pub mod write;

pub use parse::{parse, ParseError};
pub use value::{obj, Value};
pub use write::to_string;
