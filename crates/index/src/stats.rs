//! Collection statistics, decoupled from the physical index.
//!
//! The counterfactual algorithms repeatedly score *perturbed* documents that
//! are not in the index (sentence-removed variants, user edits from the
//! builder). Scoring them consistently requires the corpus-level statistics —
//! document frequency, average document length, collection size — to stay
//! fixed at their original values, exactly as Lucene does when monoT5 rescored
//! Anserini candidates in the original system. [`CollectionStats`] is that
//! frozen snapshot.

use credence_text::TermId;

/// Frozen corpus-level statistics.
#[derive(Debug, Clone, Default)]
pub struct CollectionStats {
    /// Number of documents in the corpus.
    pub num_docs: usize,
    /// Total number of term occurrences across the corpus.
    pub total_terms: u64,
    /// Document frequency per term id (index = `TermId`).
    pub doc_freq: Vec<u32>,
    /// Collection frequency per term id.
    pub coll_freq: Vec<u64>,
}

impl CollectionStats {
    /// Average document length in terms; 1.0 for an empty collection so
    /// length normalisation never divides by zero.
    pub fn avg_doc_len(&self) -> f64 {
        if self.num_docs == 0 {
            1.0
        } else {
            (self.total_terms as f64 / self.num_docs as f64).max(1.0)
        }
    }

    /// Document frequency of a term (0 when out of range).
    #[inline]
    pub fn df(&self, term: TermId) -> u32 {
        self.doc_freq.get(term as usize).copied().unwrap_or(0)
    }

    /// Collection frequency of a term (0 when out of range).
    #[inline]
    pub fn cf(&self, term: TermId) -> u64 {
        self.coll_freq.get(term as usize).copied().unwrap_or(0)
    }

    /// Number of distinct terms tracked.
    pub fn num_terms(&self) -> usize {
        self.doc_freq.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_safe() {
        let s = CollectionStats::default();
        assert_eq!(s.avg_doc_len(), 1.0);
        assert_eq!(s.df(0), 0);
        assert_eq!(s.cf(7), 0);
    }

    #[test]
    fn avg_doc_len() {
        let s = CollectionStats {
            num_docs: 4,
            total_terms: 40,
            doc_freq: vec![2, 4],
            coll_freq: vec![5, 9],
        };
        assert_eq!(s.avg_doc_len(), 10.0);
        assert_eq!(s.df(1), 4);
        assert_eq!(s.cf(0), 5);
        assert_eq!(s.num_terms(), 2);
    }
}
