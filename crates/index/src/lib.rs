//! Indexing and retrieval substrate for the CREDENCE reproduction.
//!
//! CREDENCE's original backend created a Lucene index through
//! Pyserini/Anserini and used it for (a) first-stage retrieval, (b) collection
//! statistics feeding TF-IDF candidate-term scores, and (c) BM25 score vectors
//! for the cosine-sampled instance-based explainer. This crate rebuilds that
//! surface from scratch:
//!
//! * [`doc`] — the document model ([`Document`], [`DocId`]),
//! * [`blocks`] — block-compressed posting lists (delta-encoded, bit-packed
//!   doc ids with per-block max-score metadata),
//! * [`generation`] — generation-snapshot wrapper over [`index`]: a delta
//!   segment of staged mutations folded into fresh immutable segments by a
//!   background merge thread, with `Arc`-snapshot lock-free readers,
//! * [`index`] — an in-memory inverted index with postings, document lengths,
//!   and frequency statistics,
//! * [`stats`] — collection statistics decoupled from the index so ad-hoc
//!   (perturbed) documents can be scored against corpus-level statistics,
//! * [`score`] — BM25 (Lucene variant) and TF-IDF weighting,
//! * [`search`] — exact top-k retrieval,
//! * [`topk`] — the pruned (MaxScore-style) / Block-Max-WAND / sharded top-k
//!   engine behind [`search`], bit-identical to the exhaustive scan,
//! * [`vector`] — sparse per-term score vectors + cosine similarity, the
//!   representation behind the *Cosine Sampled* explainer (§II-E).

#![warn(missing_docs)]

pub mod blocks;
pub mod doc;
pub mod generation;
pub mod highlight;
pub mod index;
pub mod partition;
pub mod persist;
pub mod phrase;
pub mod score;
pub mod search;
pub mod stats;
pub mod topk;
pub mod vector;

pub use blocks::{BlockMeta, CompressedPostings, DEFAULT_BLOCK_SIZE};
pub use doc::{DocId, Document};
pub use generation::{
    spawn_merger, DeltaOp, DocExists, GenerationIndex, MergeOutcome, MergerHandle,
};
pub use highlight::{best_snippet, highlight_terms, Highlight, Snippet};
pub use index::{InvertedIndex, Posting, TermBound};
pub use partition::{doc_partition, PartitionSpec};
pub use persist::{load_index, read_index, save_index, write_index, PersistError};
pub use phrase::{analyze_phrase, phrase_freq, search_phrase};
pub use score::{bm25_idf, bm25_term_upper_bound, Bm25Params};
pub use search::{search_top_k, sort_hits, SearchHit};
pub use stats::CollectionStats;
pub use topk::{
    search_top_k_exhaustive, search_top_k_with, search_weighted_top_k_with, SearchStrategy,
    TopKOptions, TopKStats,
};
pub use vector::{cosine_similarity, SparseVector};
