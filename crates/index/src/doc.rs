//! The document model.
//!
//! The paper assumes rankers assess relevance "using only the body of each
//! document" (§II-A); titles are carried for display purposes only, matching
//! the CREDENCE UI, and never participate in scoring.

use std::fmt;

/// Dense identifier of a document within a corpus.
///
/// Ids are assigned by insertion order when a corpus is indexed. The demo UI
/// displays them ("Document ID = 644529"); ours are dense rather than
/// Lucene-internal, which changes nothing observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

impl DocId {
    /// The id as a usize, for indexing into per-document arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A corpus document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// External name/identifier (e.g. a filename or collection docno).
    pub name: String,
    /// Display title. Not scored.
    pub title: String,
    /// The body text — the only field rankers see.
    pub body: String,
}

impl Document {
    /// Construct a document.
    pub fn new(name: impl Into<String>, title: impl Into<String>, body: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            title: title.into(),
            body: body.into(),
        }
    }

    /// A document with only a body, for tests and ad-hoc perturbations.
    pub fn from_body(body: impl Into<String>) -> Self {
        let body = body.into();
        Self {
            name: String::new(),
            title: String::new(),
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_id_display_and_index() {
        let id = DocId(42);
        assert_eq!(id.to_string(), "42");
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn doc_id_ordering_is_numeric() {
        assert!(DocId(2) < DocId(10));
    }

    #[test]
    fn document_constructors() {
        let d = Document::new("d1", "Title", "Body text.");
        assert_eq!(d.name, "d1");
        let b = Document::from_body("Just a body.");
        assert!(b.name.is_empty());
        assert_eq!(b.body, "Just a body.");
    }
}
