//! The in-memory inverted index.
//!
//! Functionally equivalent to the slice of Lucene that CREDENCE used: term
//! dictionary, per-term postings (document id + term frequency), per-document
//! lengths, and the frozen [`CollectionStats`] snapshot.

use std::collections::HashMap;
use std::sync::OnceLock;

use credence_text::{Analyzer, TermId, Vocabulary};

use crate::blocks::{CompressedPostings, DEFAULT_BLOCK_SIZE};
use crate::doc::{DocId, Document};
use crate::stats::CollectionStats;

/// One posting: a document containing the term, with its term frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// The containing document.
    pub doc: DocId,
    /// Number of occurrences of the term in the document (post-analysis).
    pub tf: u32,
}

/// Per-term pruning statistics, frozen alongside the postings list.
///
/// BM25's term weight is weakly monotone increasing in `tf` and weakly
/// monotone decreasing in document length, so the weight any posting of the
/// term can contribute is bounded by evaluating the weight at
/// (`max_tf`, `min_doc_len`). The statistics are parameter-free: the actual
/// `f64` upper bound is formed at query time for whatever [`Bm25Params`] the
/// caller uses (see [`crate::score::bm25_term_upper_bound`]).
///
/// [`Bm25Params`]: crate::score::Bm25Params
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TermBound {
    /// Largest term frequency across the postings list.
    pub max_tf: u32,
    /// Smallest analysed document length across the postings list.
    pub min_doc_len: u32,
    /// Smallest length norm (`doc_len / avgdl`) across the postings list.
    pub min_norm_len: f64,
}

impl TermBound {
    /// The bound of an empty postings list (upper bound is zero).
    pub const EMPTY: TermBound = TermBound {
        max_tf: 0,
        min_doc_len: 0,
        min_norm_len: 0.0,
    };
}

/// Derive per-term [`TermBound`]s and per-document length norms from the
/// postings and length tables. Shared by [`InvertedIndex::build`] and the
/// persistence reload path so both construct identical pruning metadata.
fn derive_bounds(
    postings: &[Vec<Posting>],
    doc_len: &[u32],
    stats: &CollectionStats,
) -> (Vec<TermBound>, Vec<f64>) {
    let avgdl = stats.avg_doc_len();
    let norm_len: Vec<f64> = doc_len.iter().map(|&l| l as f64 / avgdl).collect();
    let bounds = postings
        .iter()
        .map(|list| {
            let mut bound = TermBound::EMPTY;
            for (i, p) in list.iter().enumerate() {
                let dl = doc_len.get(p.doc.index()).copied().unwrap_or(0);
                let nl = norm_len.get(p.doc.index()).copied().unwrap_or(0.0);
                if i == 0 {
                    bound = TermBound {
                        max_tf: p.tf,
                        min_doc_len: dl,
                        min_norm_len: nl,
                    };
                } else {
                    bound.max_tf = bound.max_tf.max(p.tf);
                    bound.min_doc_len = bound.min_doc_len.min(dl);
                    bound.min_norm_len = bound.min_norm_len.min(nl);
                }
            }
            bound
        })
        .collect();
    (bounds, norm_len)
}

/// An immutable inverted index over a corpus.
///
/// Build one with [`InvertedIndex::build`]; the index owns its documents.
///
/// ```
/// use credence_index::{Document, InvertedIndex};
/// use credence_text::Analyzer;
/// let docs = vec![
///     Document::from_body("covid outbreak in the city"),
///     Document::from_body("the city builds a new park"),
/// ];
/// let idx = InvertedIndex::build(docs, Analyzer::english());
/// assert_eq!(idx.num_docs(), 2);
/// assert_eq!(idx.doc_freq_str("citi"), 2); // "city" stems to "citi"
/// assert_eq!(idx.doc_freq_str("covid"), 1);
/// ```
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    docs: Vec<Document>,
    vocab: Vocabulary,
    postings: Vec<PostingList>,
    doc_len: Vec<u32>,
    doc_terms: Vec<Vec<(TermId, u32)>>,
    stats: CollectionStats,
    bounds: Vec<TermBound>,
    norm_len: Vec<f64>,
    analyzer: Analyzer,
}

/// One term's postings: the block-compressed list (the storage of record,
/// what the retrieval engines traverse) plus a lazily materialised
/// uncompressed view for the replay/persistence/phrase paths that want a
/// plain `&[Posting]` slice. The cache fills at most once per term.
#[derive(Debug, Clone, Default)]
struct PostingList {
    compressed: CompressedPostings,
    cache: OnceLock<Vec<Posting>>,
}

impl PostingList {
    fn materialized(&self) -> &[Posting] {
        self.cache.get_or_init(|| self.compressed.decode_all())
    }
}

/// Compress every term's raw postings into [`CompressedPostings`].
fn compress_lists(
    postings: Vec<Vec<Posting>>,
    block_size: usize,
    doc_len: &[u32],
    norm_len: &[f64],
) -> Vec<PostingList> {
    postings
        .into_iter()
        .map(|list| PostingList {
            compressed: CompressedPostings::compress(&list, block_size, doc_len, norm_len),
            cache: OnceLock::new(),
        })
        .collect()
}

impl InvertedIndex {
    /// Analyse and index `docs` (bodies only, per §II-A of the paper), with
    /// the default posting-block size.
    pub fn build(docs: Vec<Document>, analyzer: Analyzer) -> Self {
        Self::build_with_block_size(docs, analyzer, DEFAULT_BLOCK_SIZE)
    }

    /// [`InvertedIndex::build`] with an explicit postings-per-block size
    /// (clamped to at least 1). Smaller blocks give Block-Max-WAND tighter
    /// bounds and finer skips at the cost of more per-block metadata.
    pub fn build_with_block_size(
        docs: Vec<Document>,
        analyzer: Analyzer,
        block_size: usize,
    ) -> Self {
        let mut vocab = Vocabulary::new();
        let mut postings: Vec<Vec<Posting>> = Vec::new();
        let mut doc_len = Vec::with_capacity(docs.len());
        let mut doc_terms = Vec::with_capacity(docs.len());
        let mut total_terms = 0u64;

        for (i, doc) in docs.iter().enumerate() {
            let doc_id = DocId(i as u32);
            let terms = analyzer.analyze(&doc.body);
            total_terms += terms.len() as u64;
            doc_len.push(terms.len() as u32);

            let mut counts: HashMap<TermId, u32> = HashMap::new();
            for term in &terms {
                let tid = vocab.intern(term);
                *counts.entry(tid).or_insert(0) += 1;
            }
            let mut term_vec: Vec<(TermId, u32)> = counts.into_iter().collect();
            term_vec.sort_unstable_by_key(|&(t, _)| t);
            for &(tid, tf) in &term_vec {
                if postings.len() <= tid as usize {
                    postings.resize_with(tid as usize + 1, Vec::new);
                }
                postings[tid as usize].push(Posting { doc: doc_id, tf });
            }
            doc_terms.push(term_vec);
        }
        postings.resize_with(vocab.len(), Vec::new);

        let doc_freq: Vec<u32> = postings.iter().map(|p| p.len() as u32).collect();
        let coll_freq: Vec<u64> = postings
            .iter()
            .map(|p| p.iter().map(|x| x.tf as u64).sum())
            .collect();
        let stats = CollectionStats {
            num_docs: docs.len(),
            total_terms,
            doc_freq,
            coll_freq,
        };
        let (bounds, norm_len) = derive_bounds(&postings, &doc_len, &stats);
        let postings = compress_lists(postings, block_size, &doc_len, &norm_len);

        Self {
            docs,
            vocab,
            postings,
            doc_len,
            doc_terms,
            stats,
            bounds,
            norm_len,
            analyzer,
        }
    }

    /// Reassemble an index from persisted parts (see `persist`): documents,
    /// dictionary, per-term postings, and per-document lengths. Derived
    /// structures (per-document term lists, collection statistics) are
    /// rebuilt; structural inconsistencies are reported as errors.
    pub(crate) fn from_parts(
        docs: Vec<Document>,
        vocab: Vocabulary,
        postings: Vec<Vec<Posting>>,
        doc_len: Vec<u32>,
        analyzer: Analyzer,
    ) -> Result<Self, &'static str> {
        if postings.len() != vocab.len() {
            return Err("postings table size disagrees with dictionary");
        }
        if doc_len.len() != docs.len() {
            return Err("doc length table size disagrees with documents");
        }
        // Invert postings into per-document term lists.
        let mut doc_terms: Vec<Vec<(TermId, u32)>> = vec![Vec::new(); docs.len()];
        for (tid, list) in postings.iter().enumerate() {
            for p in list {
                let Some(slot) = doc_terms.get_mut(p.doc.index()) else {
                    return Err("posting references unknown document");
                };
                slot.push((tid as TermId, p.tf));
            }
        }
        // Term ids were visited in ascending order, so each list is sorted.
        let total_terms: u64 = doc_len.iter().map(|&l| l as u64).sum();
        let doc_freq: Vec<u32> = postings.iter().map(|p| p.len() as u32).collect();
        let coll_freq: Vec<u64> = postings
            .iter()
            .map(|p| p.iter().map(|x| x.tf as u64).sum())
            .collect();
        let stats = CollectionStats {
            num_docs: docs.len(),
            total_terms,
            doc_freq,
            coll_freq,
        };
        let (bounds, norm_len) = derive_bounds(&postings, &doc_len, &stats);
        let postings = compress_lists(postings, DEFAULT_BLOCK_SIZE, &doc_len, &norm_len);
        Ok(Self {
            docs,
            vocab,
            postings,
            doc_len,
            doc_terms,
            stats,
            bounds,
            norm_len,
            analyzer,
        })
    }

    /// The analyzer documents (and queries) are processed with.
    pub fn analyzer(&self) -> Analyzer {
        self.analyzer
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// All documents, in `DocId` order.
    pub fn documents(&self) -> &[Document] {
        &self.docs
    }

    /// Fetch a document by id.
    pub fn document(&self, id: DocId) -> Option<&Document> {
        self.docs.get(id.index())
    }

    /// Iterate over all document ids.
    pub fn doc_ids(&self) -> impl Iterator<Item = DocId> {
        (0..self.docs.len() as u32).map(DocId)
    }

    /// The frozen collection statistics snapshot.
    pub fn stats(&self) -> &CollectionStats {
        &self.stats
    }

    /// The term dictionary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Postings list for a term id (empty slice when unknown), as an
    /// uncompressed view. The first call per term decodes and caches the
    /// whole list; hot retrieval paths that only need lengths or block
    /// traversal use [`InvertedIndex::postings_len`] /
    /// [`InvertedIndex::compressed_postings`] instead so they never force
    /// the materialisation.
    pub fn postings(&self, term: TermId) -> &[Posting] {
        self.postings
            .get(term as usize)
            .map(PostingList::materialized)
            .unwrap_or(&[])
    }

    /// Number of postings for a term id (0 when unknown), without decoding.
    pub fn postings_len(&self, term: TermId) -> usize {
        self.postings
            .get(term as usize)
            .map(|l| l.compressed.len())
            .unwrap_or(0)
    }

    /// The block-compressed postings of a term id (`None` when unknown) —
    /// the storage the Block-Max-WAND cursors traverse.
    pub fn compressed_postings(&self, term: TermId) -> Option<&CompressedPostings> {
        self.postings.get(term as usize).map(|l| &l.compressed)
    }

    /// Document frequency of an analysed term string.
    pub fn doc_freq_str(&self, term: &str) -> u32 {
        self.vocab.id(term).map_or(0, |t| self.stats.df(t))
    }

    /// Pruning statistics for a term's postings list ([`TermBound::EMPTY`]
    /// when the term is unknown or unindexed).
    pub fn term_bound(&self, term: TermId) -> TermBound {
        self.bounds
            .get(term as usize)
            .copied()
            .unwrap_or(TermBound::EMPTY)
    }

    /// Precomputed length norm (`doc_len / avg_doc_len`) of a document.
    pub fn norm_len(&self, id: DocId) -> f64 {
        self.norm_len.get(id.index()).copied().unwrap_or(0.0)
    }

    /// Post-analysis length (term count) of a document.
    pub fn doc_len(&self, id: DocId) -> u32 {
        self.doc_len.get(id.index()).copied().unwrap_or(0)
    }

    /// The `(term, tf)` pairs of a document, sorted by term id.
    pub fn doc_terms(&self, id: DocId) -> &[(TermId, u32)] {
        self.doc_terms
            .get(id.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Term frequency of `term` in document `id`.
    pub fn term_freq(&self, id: DocId, term: TermId) -> u32 {
        let terms = self.doc_terms(id);
        terms
            .binary_search_by_key(&term, |&(t, _)| t)
            .map(|i| terms[i].1)
            .unwrap_or(0)
    }

    /// Analyse a raw query string into term ids, dropping terms absent from
    /// the corpus vocabulary (they cannot contribute to any lexical score).
    pub fn analyze_query(&self, query: &str) -> Vec<TermId> {
        self.analyzer
            .analyze(query)
            .iter()
            .filter_map(|t| self.vocab.id(t))
            .collect()
    }

    /// Analyse arbitrary text into `(term_id, tf)` pairs against this index's
    /// vocabulary (unknown terms are dropped) plus the total analysed length
    /// *including* unknown terms — the length normalisation a real ranker
    /// would apply.
    pub fn analyze_adhoc(&self, text: &str) -> (Vec<(TermId, u32)>, u32) {
        let terms = self.analyzer.analyze(text);
        let len = terms.len() as u32;
        let mut counts: HashMap<TermId, u32> = HashMap::new();
        for term in &terms {
            if let Some(tid) = self.vocab.id(term) {
                *counts.entry(tid).or_insert(0) += 1;
            }
        }
        let mut vec: Vec<(TermId, u32)> = counts.into_iter().collect();
        vec.sort_unstable_by_key(|&(t, _)| t);
        (vec, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_index() -> InvertedIndex {
        InvertedIndex::build(
            vec![
                Document::from_body("covid outbreak spreads in the city"),
                Document::from_body("the city council meets today"),
                Document::from_body("covid vaccines arrive in the city"),
            ],
            Analyzer::english(),
        )
    }

    #[test]
    fn builds_and_counts() {
        let idx = small_index();
        assert_eq!(idx.num_docs(), 3);
        assert_eq!(idx.doc_freq_str("covid"), 2);
        assert_eq!(idx.doc_freq_str("citi"), 3);
        assert_eq!(idx.doc_freq_str("nonexistent"), 0);
    }

    #[test]
    fn postings_are_ordered_by_doc() {
        let idx = small_index();
        let covid = idx.vocabulary().id("covid").unwrap();
        let p = idx.postings(covid);
        assert_eq!(p.len(), 2);
        assert!(p[0].doc < p[1].doc);
        assert!(p.iter().all(|x| x.tf == 1));
    }

    #[test]
    fn doc_lengths_exclude_stopwords() {
        let idx = small_index();
        // "covid outbreak spreads in the city" -> covid outbreak spread citi
        assert_eq!(idx.doc_len(DocId(0)), 4);
    }

    #[test]
    fn term_freq_lookup() {
        let idx = InvertedIndex::build(
            vec![Document::from_body("covid covid covid outbreak")],
            Analyzer::english(),
        );
        let covid = idx.vocabulary().id("covid").unwrap();
        assert_eq!(idx.term_freq(DocId(0), covid), 3);
        let outbreak = idx.vocabulary().id("outbreak").unwrap();
        assert_eq!(idx.term_freq(DocId(0), outbreak), 1);
    }

    #[test]
    fn stats_snapshot_consistent() {
        let idx = small_index();
        let stats = idx.stats();
        assert_eq!(stats.num_docs, 3);
        let sum_lens: u64 = (0..3).map(|i| idx.doc_len(DocId(i)) as u64).sum();
        assert_eq!(stats.total_terms, sum_lens);
        // df of every term equals its postings length.
        for (tid, _) in idx.vocabulary().iter() {
            assert_eq!(stats.df(tid) as usize, idx.postings(tid).len());
        }
    }

    #[test]
    fn analyze_query_drops_unknown_terms() {
        let idx = small_index();
        let q = idx.analyze_query("covid zebra outbreak");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn analyze_adhoc_reports_full_length() {
        let idx = small_index();
        let (terms, len) = idx.analyze_adhoc("covid zebra zebra outbreak");
        assert_eq!(len, 4);
        let known: u32 = terms.iter().map(|&(_, tf)| tf).sum();
        assert_eq!(known, 2);
    }

    #[test]
    fn term_bounds_track_postings_extremes() {
        let idx = InvertedIndex::build(
            vec![
                Document::from_body("covid covid covid outbreak response teams"),
                Document::from_body("covid outbreak"),
            ],
            Analyzer::english(),
        );
        let covid = idx.vocabulary().id("covid").unwrap();
        let b = idx.term_bound(covid);
        assert_eq!(b.max_tf, 3);
        assert_eq!(b.min_doc_len, 2);
        assert!((b.min_norm_len - 2.0 / idx.stats().avg_doc_len()).abs() < 1e-15);
        assert_eq!(idx.term_bound(9999), TermBound::EMPTY);
    }

    #[test]
    fn norm_len_matches_stats() {
        let idx = small_index();
        for d in idx.doc_ids() {
            let expected = idx.doc_len(d) as f64 / idx.stats().avg_doc_len();
            assert_eq!(idx.norm_len(d), expected);
        }
        assert_eq!(idx.norm_len(DocId(99)), 0.0);
    }

    #[test]
    fn block_size_never_changes_the_postings_view() {
        let docs = || {
            (0..50)
                .map(|i| {
                    Document::from_body(match i % 3 {
                        0 => "covid outbreak covid city",
                        1 => "city council meets",
                        _ => "covid vaccines arrive",
                    })
                })
                .collect::<Vec<_>>()
        };
        let reference = InvertedIndex::build(docs(), Analyzer::english());
        for bs in [1usize, 2, 3, 7, 64, 4096] {
            let idx = InvertedIndex::build_with_block_size(docs(), Analyzer::english(), bs);
            for (tid, _) in reference.vocabulary().iter() {
                assert_eq!(idx.postings(tid), reference.postings(tid), "bs={bs}");
                assert_eq!(idx.postings_len(tid), reference.postings(tid).len());
                assert_eq!(idx.term_bound(tid), reference.term_bound(tid));
            }
        }
    }

    #[test]
    fn compressed_postings_expose_block_metadata() {
        let idx = InvertedIndex::build_with_block_size(
            (0..10)
                .map(|_| Document::from_body("covid outbreak"))
                .collect(),
            Analyzer::english(),
            4,
        );
        let covid = idx.vocabulary().id("covid").unwrap();
        let c = idx.compressed_postings(covid).unwrap();
        assert_eq!(c.len(), 10);
        assert_eq!(c.blocks().len(), 3);
        assert_eq!(c.blocks()[2].first_doc, 8);
        assert_eq!(c.blocks()[2].last_doc, 9);
        assert!(idx.compressed_postings(9999).is_none());
    }

    #[test]
    fn empty_corpus() {
        let idx = InvertedIndex::build(vec![], Analyzer::english());
        assert_eq!(idx.num_docs(), 0);
        assert_eq!(idx.stats().avg_doc_len(), 1.0);
        assert!(idx.analyze_query("anything").is_empty());
    }

    #[test]
    fn document_lookup() {
        let idx = small_index();
        assert!(idx.document(DocId(0)).is_some());
        assert!(idx.document(DocId(99)).is_none());
    }
}
