//! Exact top-k retrieval over the inverted index.
//!
//! Ties broken by ascending `DocId` so results are fully deterministic (the
//! counterfactual algorithms compare ranks before/after perturbation and
//! need stable tie-breaks). The traversal itself lives in [`crate::topk`]:
//! [`search_top_k`] routes through the pruned term-at-a-time engine, whose
//! results are bit-identical to the historical exhaustive scan.

use std::cmp::Ordering;

use credence_text::TermId;

use crate::doc::DocId;
use crate::index::InvertedIndex;
use crate::score::Bm25Params;
use crate::topk::{search_top_k_with, TopKOptions};

/// One search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// The matching document.
    pub doc: DocId,
    /// Its score under the retrieval model.
    pub score: f64,
}

/// Rank the corpus for `query` (a bag of analysed term ids) under BM25 and
/// return the top `k` hits, best first. Documents scoring zero (no query
/// term) are never returned.
pub fn search_top_k(
    index: &InvertedIndex,
    params: Bm25Params,
    query: &[TermId],
    k: usize,
) -> Vec<SearchHit> {
    search_top_k_with(index, params, query, k, &TopKOptions::default()).0
}

/// Sort hits best-first: descending score, ascending doc id on ties.
pub fn sort_hits(hits: &mut [SearchHit]) {
    hits.sort_unstable_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.doc.cmp(&b.doc))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::Document;
    use credence_text::Analyzer;

    fn index() -> InvertedIndex {
        InvertedIndex::build(
            vec![
                Document::from_body("covid outbreak covid emergency"), // 0: strong
                Document::from_body("covid numbers rising"),           // 1: weaker
                Document::from_body("garden flowers bloom"),           // 2: no match
                Document::from_body("outbreak of joy in the city"),    // 3: partial
            ],
            Analyzer::english(),
        )
    }

    #[test]
    fn returns_best_first() {
        let idx = index();
        let q = idx.analyze_query("covid outbreak");
        let hits = search_top_k(&idx, Bm25Params::default(), &q, 10);
        assert_eq!(hits[0].doc, DocId(0));
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn non_matching_docs_excluded() {
        let idx = index();
        let q = idx.analyze_query("covid outbreak");
        let hits = search_top_k(&idx, Bm25Params::default(), &q, 10);
        assert!(hits.iter().all(|h| h.doc != DocId(2)));
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn k_truncates() {
        let idx = index();
        let q = idx.analyze_query("covid outbreak");
        let hits = search_top_k(&idx, Bm25Params::default(), &q, 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].doc, DocId(0));
    }

    #[test]
    fn k_zero_and_empty_query() {
        let idx = index();
        let q = idx.analyze_query("covid");
        assert!(search_top_k(&idx, Bm25Params::default(), &q, 0).is_empty());
        assert!(search_top_k(&idx, Bm25Params::default(), &[], 5).is_empty());
    }

    #[test]
    fn tie_break_is_by_doc_id() {
        let idx = InvertedIndex::build(
            vec![
                Document::from_body("alpha beta"),
                Document::from_body("alpha beta"),
                Document::from_body("alpha beta"),
            ],
            Analyzer::english(),
        );
        let q = idx.analyze_query("alpha");
        let hits = search_top_k(&idx, Bm25Params::default(), &q, 3);
        let ids: Vec<u32> = hits.iter().map(|h| h.doc.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn heap_truncation_keeps_best_under_ties() {
        let idx = InvertedIndex::build(
            (0..10).map(|_| Document::from_body("alpha beta")).collect(),
            Analyzer::english(),
        );
        let q = idx.analyze_query("alpha");
        let hits = search_top_k(&idx, Bm25Params::default(), &q, 4);
        let ids: Vec<u32> = hits.iter().map(|h| h.doc.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "lowest doc ids win ties");
    }

    #[test]
    fn matches_full_sort_reference() {
        let idx = index();
        let q = idx.analyze_query("covid outbreak city");
        let k = 3;
        let fast = search_top_k(&idx, Bm25Params::default(), &q, k);
        // Reference: score everything, sort, truncate.
        let mut all: Vec<SearchHit> = idx
            .doc_ids()
            .map(|d| SearchHit {
                doc: d,
                score: crate::score::bm25_score_indexed(Bm25Params::default(), &idx, &q, d),
            })
            .filter(|h| h.score > 0.0)
            .collect();
        sort_hits(&mut all);
        all.truncate(k);
        assert_eq!(fast.len(), all.len());
        for (a, b) in fast.iter().zip(all.iter()) {
            assert_eq!(a.doc, b.doc);
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }
}
