//! Exact-phrase matching and retrieval.
//!
//! Lucene supports phrase queries; the demo's multi-word cues (*bill
//! gates*) make them relevant here. The corpus is memory-resident, so
//! instead of storing positional postings we intersect the per-term
//! postings to find candidate documents and verify adjacency against the
//! analysed token sequence on demand — exact, simple, and fast at the
//! corpus scales this reproduction targets.

use credence_text::TermId;

use crate::doc::DocId;
use crate::index::InvertedIndex;
use crate::score::{bm25_idf, Bm25Params};
use crate::search::{sort_hits, SearchHit};

/// Analyse a raw phrase into term ids; `None` when any word of the phrase
/// is unknown to the corpus (the phrase cannot match anywhere).
pub fn analyze_phrase(index: &InvertedIndex, phrase: &str) -> Option<Vec<TermId>> {
    let analyzer = index.analyzer();
    let terms = analyzer.analyze(phrase);
    if terms.is_empty() {
        return None;
    }
    terms
        .iter()
        .map(|t| index.vocabulary().id(t))
        .collect::<Option<Vec<_>>>()
}

/// Number of exact (adjacent, analysed) occurrences of `phrase_terms` in a
/// document.
pub fn phrase_freq(index: &InvertedIndex, doc: DocId, phrase_terms: &[TermId]) -> u32 {
    if phrase_terms.is_empty() {
        return 0;
    }
    let Some(document) = index.document(doc) else {
        return 0;
    };
    let analyzer = index.analyzer();
    let sequence: Vec<Option<TermId>> = analyzer
        .analyze(&document.body)
        .iter()
        .map(|t| index.vocabulary().id(t))
        .collect();
    if sequence.len() < phrase_terms.len() {
        return 0;
    }
    sequence
        .windows(phrase_terms.len())
        .filter(|w| {
            w.iter()
                .zip(phrase_terms)
                .all(|(seq, want)| *seq == Some(*want))
        })
        .count() as u32
}

/// Retrieve documents containing the exact phrase, scored by
/// `phrase_freq × Σ idf(term)` (a simple BM25-flavoured phrase weight),
/// best first, ties by `DocId`.
pub fn search_phrase(
    index: &InvertedIndex,
    params: Bm25Params,
    phrase: &str,
    k: usize,
) -> Vec<SearchHit> {
    let _ = params; // reserved: length normalisation variants
    let Some(terms) = analyze_phrase(index, phrase) else {
        return Vec::new();
    };
    if k == 0 {
        return Vec::new();
    }
    // Candidates: documents containing the rarest term.
    let rarest = terms
        .iter()
        .copied()
        .min_by_key(|&t| index.postings(t).len())
        .expect("non-empty phrase");
    let idf_sum: f64 = terms
        .iter()
        .map(|&t| bm25_idf(index.stats().num_docs, index.stats().df(t)))
        .sum();
    let mut hits: Vec<SearchHit> = index
        .postings(rarest)
        .iter()
        .filter_map(|p| {
            let tf = phrase_freq(index, p.doc, &terms);
            (tf > 0).then_some(SearchHit {
                doc: p.doc,
                score: tf as f64 * idf_sum,
            })
        })
        .collect();
    sort_hits(&mut hits);
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::Document;
    use credence_text::Analyzer;

    fn index() -> InvertedIndex {
        InvertedIndex::build(
            vec![
                Document::from_body("Bill Gates spoke about Bill Gates conspiracies."), // 0
                Document::from_body("Gates opened and Bill paid the bill."),            // 1
                Document::from_body("The garden gates need a new coat of paint."),      // 2
                Document::from_body("bill gates appears once here."),                   // 3
            ],
            Analyzer::english(),
        )
    }

    #[test]
    fn phrase_freq_counts_adjacent_occurrences() {
        let idx = index();
        let terms = analyze_phrase(&idx, "bill gates").unwrap();
        assert_eq!(phrase_freq(&idx, DocId(0), &terms), 2);
        assert_eq!(phrase_freq(&idx, DocId(1), &terms), 0, "non-adjacent");
        assert_eq!(phrase_freq(&idx, DocId(2), &terms), 0);
        assert_eq!(phrase_freq(&idx, DocId(3), &terms), 1);
    }

    #[test]
    fn search_phrase_ranks_by_frequency() {
        let idx = index();
        let hits = search_phrase(&idx, Bm25Params::default(), "bill gates", 10);
        let ids: Vec<u32> = hits.iter().map(|h| h.doc.0).collect();
        assert_eq!(ids, vec![0, 3]);
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn stopwords_inside_phrases_are_dropped_by_analysis() {
        // "coat of paint" analyses to [coat, paint]; adjacency is over the
        // analysed sequence, matching how the index saw the document.
        let idx = index();
        let terms = analyze_phrase(&idx, "coat of paint").unwrap();
        assert_eq!(phrase_freq(&idx, DocId(2), &terms), 1);
    }

    #[test]
    fn unknown_words_mean_no_match() {
        let idx = index();
        assert!(analyze_phrase(&idx, "zebra gates").is_none());
        assert!(search_phrase(&idx, Bm25Params::default(), "zebra gates", 5).is_empty());
        assert!(analyze_phrase(&idx, "").is_none());
    }

    #[test]
    fn single_word_phrase_degenerates_to_term_match() {
        let idx = index();
        let hits = search_phrase(&idx, Bm25Params::default(), "gates", 10);
        // gate stems: "Gates"->"gate", "gates"->"gate"; docs 0,1,2,3 all
        // contain it.
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn k_truncates_and_zero_is_empty() {
        let idx = index();
        assert_eq!(
            search_phrase(&idx, Bm25Params::default(), "bill gates", 1).len(),
            1
        );
        assert!(search_phrase(&idx, Bm25Params::default(), "bill gates", 0).is_empty());
    }

    #[test]
    fn phrase_longer_than_document() {
        let idx =
            InvertedIndex::build(vec![Document::from_body("short text")], Analyzer::english());
        let terms = analyze_phrase(&idx, "short text").unwrap();
        assert_eq!(phrase_freq(&idx, DocId(0), &terms), 1);
        let long = analyze_phrase(&idx, "short text short text");
        if let Some(long) = long {
            assert_eq!(phrase_freq(&idx, DocId(0), &long), 0);
        }
    }
}
