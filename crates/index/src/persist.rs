//! Index persistence: a compact binary on-disk format.
//!
//! Lucene persists its indexes; the CREDENCE backend loaded one at startup.
//! This module gives the reproduction the same capability so
//! `credence-serve` (and long-lived experiments) can skip re-analysing the
//! corpus: [`save_index`] writes documents, dictionary, postings, and
//! lengths; [`load_index`] restores an [`InvertedIndex`] that is
//! indistinguishable from a freshly built one (round-trip tested).
//!
//! Format `CRIDX1` (little-endian):
//!
//! ```text
//! magic "CRIDX1\n" · analyzer flags (2 bytes)
//! u32 num_docs · per doc: name, title, body   (strings = u32 len + UTF-8)
//! u32 num_terms · per term: string
//! per term: u32 postings_len · (u32 doc, u32 tf)*
//! u32 num_docs · u32 doc_len per doc
//! ```

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use credence_text::{AnalyzeOptions, Analyzer, Vocabulary};

use crate::doc::{DocId, Document};
use crate::index::{InvertedIndex, Posting};

const MAGIC: &[u8; 7] = b"CRIDX1\n";
/// Guard against corrupted length prefixes allocating absurd buffers.
const MAX_STRING: u32 = 64 * 1024 * 1024;

/// Errors raised while saving or loading an index.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a CRIDX1 index or is structurally corrupt.
    Corrupt(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Corrupt(what) => write!(f, "corrupt index file: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, PersistError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)
        .map_err(|_| PersistError::Corrupt("truncated u32"))?;
    Ok(u32::from_le_bytes(buf))
}

fn read_str<R: Read>(r: &mut R) -> Result<String, PersistError> {
    let len = read_u32(r)?;
    if len > MAX_STRING {
        return Err(PersistError::Corrupt("string length exceeds limit"));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)
        .map_err(|_| PersistError::Corrupt("truncated string"))?;
    String::from_utf8(buf).map_err(|_| PersistError::Corrupt("invalid UTF-8"))
}

/// Serialise an index to a writer.
pub fn write_index<W: Write>(index: &InvertedIndex, w: W) -> Result<(), PersistError> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    let opts = index.analyzer().options();
    w.write_all(&[opts.remove_stopwords as u8, opts.stem as u8])?;

    write_u32(&mut w, index.num_docs() as u32)?;
    for doc in index.documents() {
        write_str(&mut w, &doc.name)?;
        write_str(&mut w, &doc.title)?;
        write_str(&mut w, &doc.body)?;
    }

    let vocab = index.vocabulary();
    write_u32(&mut w, vocab.len() as u32)?;
    for (_, term) in vocab.iter() {
        write_str(&mut w, term)?;
    }
    for (tid, _) in vocab.iter() {
        let postings = index.postings(tid);
        write_u32(&mut w, postings.len() as u32)?;
        for p in postings {
            write_u32(&mut w, p.doc.0)?;
            write_u32(&mut w, p.tf)?;
        }
    }
    write_u32(&mut w, index.num_docs() as u32)?;
    for d in index.doc_ids() {
        write_u32(&mut w, index.doc_len(d))?;
    }
    w.flush()?;
    Ok(())
}

/// Save an index to a file.
pub fn save_index(index: &InvertedIndex, path: &Path) -> Result<(), PersistError> {
    write_index(index, File::create(path)?)
}

/// Deserialise an index from a reader.
pub fn read_index<R: Read>(r: R) -> Result<InvertedIndex, PersistError> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 7];
    r.read_exact(&mut magic)
        .map_err(|_| PersistError::Corrupt("missing magic"))?;
    if &magic != MAGIC {
        return Err(PersistError::Corrupt("bad magic"));
    }
    let mut flags = [0u8; 2];
    r.read_exact(&mut flags)
        .map_err(|_| PersistError::Corrupt("missing analyzer flags"))?;
    let analyzer = Analyzer::new(AnalyzeOptions {
        remove_stopwords: flags[0] != 0,
        stem: flags[1] != 0,
    });

    let num_docs = read_u32(&mut r)? as usize;
    let mut docs = Vec::with_capacity(num_docs.min(1 << 20));
    for _ in 0..num_docs {
        let name = read_str(&mut r)?;
        let title = read_str(&mut r)?;
        let body = read_str(&mut r)?;
        docs.push(Document::new(name, title, body));
    }

    let num_terms = read_u32(&mut r)? as usize;
    let mut vocab = Vocabulary::with_capacity(num_terms.min(1 << 22));
    for i in 0..num_terms {
        let term = read_str(&mut r)?;
        let id = vocab.intern(&term);
        if id as usize != i {
            return Err(PersistError::Corrupt("duplicate term in dictionary"));
        }
    }

    let mut postings: Vec<Vec<Posting>> = Vec::with_capacity(num_terms);
    for _ in 0..num_terms {
        let len = read_u32(&mut r)? as usize;
        let mut list = Vec::with_capacity(len.min(1 << 22));
        let mut prev: Option<u32> = None;
        for _ in 0..len {
            let doc = read_u32(&mut r)?;
            let tf = read_u32(&mut r)?;
            if doc as usize >= num_docs {
                return Err(PersistError::Corrupt("posting references unknown doc"));
            }
            if tf == 0 {
                return Err(PersistError::Corrupt("posting with zero tf"));
            }
            if prev.is_some_and(|p| p >= doc) {
                return Err(PersistError::Corrupt("postings out of order"));
            }
            prev = Some(doc);
            list.push(Posting {
                doc: DocId(doc),
                tf,
            });
        }
        postings.push(list);
    }

    let len_count = read_u32(&mut r)? as usize;
    if len_count != num_docs {
        return Err(PersistError::Corrupt("doc length table size mismatch"));
    }
    let mut doc_len = Vec::with_capacity(num_docs);
    for _ in 0..num_docs {
        doc_len.push(read_u32(&mut r)?);
    }

    // Trailing garbage is rejected: the format is exact.
    let mut extra = [0u8; 1];
    match r.read(&mut extra) {
        Ok(0) => {}
        Ok(_) => return Err(PersistError::Corrupt("trailing bytes")),
        Err(e) => return Err(PersistError::Io(e)),
    }

    InvertedIndex::from_parts(docs, vocab, postings, doc_len, analyzer)
        .map_err(PersistError::Corrupt)
}

/// Load an index from a file.
pub fn load_index(path: &Path) -> Result<InvertedIndex, PersistError> {
    read_index(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::{bm25_score_indexed, Bm25Params};

    fn sample_index() -> InvertedIndex {
        InvertedIndex::build(
            vec![
                Document::new("a", "First", "covid outbreak spreads across the region"),
                Document::new("b", "Second", "garden flowers bloom in café spring"),
                Document::new("c", "", "covid cases fall as the outbreak slows"),
            ],
            Analyzer::english(),
        )
    }

    fn round_trip(index: &InvertedIndex) -> InvertedIndex {
        let mut buf = Vec::new();
        write_index(index, &mut buf).unwrap();
        read_index(buf.as_slice()).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = sample_index();
        let loaded = round_trip(&original);
        assert_eq!(loaded.num_docs(), original.num_docs());
        assert_eq!(loaded.documents(), original.documents());
        assert_eq!(loaded.vocabulary().len(), original.vocabulary().len());
        for (tid, term) in original.vocabulary().iter() {
            assert_eq!(loaded.vocabulary().term(tid), Some(term));
            assert_eq!(loaded.postings(tid), original.postings(tid));
        }
        for d in original.doc_ids() {
            assert_eq!(loaded.doc_len(d), original.doc_len(d));
            assert_eq!(loaded.doc_terms(d), original.doc_terms(d));
        }
        assert_eq!(loaded.stats().num_docs, original.stats().num_docs);
        assert_eq!(loaded.stats().total_terms, original.stats().total_terms);
    }

    #[test]
    fn loaded_index_scores_identically() {
        let original = sample_index();
        let loaded = round_trip(&original);
        let q = original.analyze_query("covid outbreak");
        let q2 = loaded.analyze_query("covid outbreak");
        assert_eq!(q, q2);
        for d in original.doc_ids() {
            let a = bm25_score_indexed(Bm25Params::default(), &original, &q, d);
            let b = bm25_score_indexed(Bm25Params::default(), &loaded, &q2, d);
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn analyzer_flags_round_trip() {
        let idx = InvertedIndex::build(
            vec![Document::from_body("The running dogs")],
            Analyzer::matching(),
        );
        let loaded = round_trip(&idx);
        let opts = loaded.analyzer().options();
        assert!(!opts.remove_stopwords);
        assert!(!opts.stem);
        // "the" was indexed under matching analysis.
        assert_eq!(loaded.doc_freq_str("the"), 1);
    }

    #[test]
    fn empty_index_round_trips() {
        let idx = InvertedIndex::build(vec![], Analyzer::english());
        let loaded = round_trip(&idx);
        assert_eq!(loaded.num_docs(), 0);
        assert_eq!(loaded.vocabulary().len(), 0);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("credence_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.cridx");
        let original = sample_index();
        save_index(&original, &path).unwrap();
        let loaded = load_index(&path).unwrap();
        assert_eq!(loaded.documents(), original.documents());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_index(&b"NOTANIDX whatever"[..]).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)));
    }

    #[test]
    fn rejects_truncation_at_every_prefix() {
        let mut buf = Vec::new();
        write_index(&sample_index(), &mut buf).unwrap();
        // Every strict prefix must fail (never panic, never succeed).
        for cut in (0..buf.len()).step_by(7) {
            let result = read_index(&buf[..cut]);
            assert!(result.is_err(), "prefix of {cut} bytes must fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut buf = Vec::new();
        write_index(&sample_index(), &mut buf).unwrap();
        buf.push(0xFF);
        assert!(matches!(
            read_index(buf.as_slice()),
            Err(PersistError::Corrupt("trailing bytes"))
        ));
    }

    #[test]
    fn rejects_corrupt_posting_doc() {
        let mut buf = Vec::new();
        write_index(&sample_index(), &mut buf).unwrap();
        // Flip a byte in the postings area; loading must error, not panic.
        // (The exact offset varies; corrupt a range and accept any error or
        // a detected inconsistency.)
        let mid = buf.len() / 2;
        buf[mid] ^= 0x5A;
        let _ = read_index(buf.as_slice()); // must not panic
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_index(Path::new("/definitely/not/here.cridx")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }
}
