//! Block-compressed posting lists.
//!
//! Postings are stored as fixed-size blocks (128 postings by default) of
//! delta-encoded document ids bit-packed to the block's maximum gap width,
//! with term frequencies packed alongside at the block's maximum tf width.
//! Each block carries the metadata Block-Max-WAND needs to skip it without
//! decoding: its document-id range and a params-independent score bound
//! (`max_tf` / `min_norm_len`, the per-block analogue of [`TermBound`]).
//!
//! Encoding, per block of `count` postings:
//!
//! * the first document id is stored raw in the block header;
//! * the remaining `count - 1` ids are stored as `gap - 1` (gaps between
//!   strictly ascending ids are ≥ 1, so dense runs pack to 0 bits), at the
//!   width of the block's largest encoded gap;
//! * term frequencies are stored as `tf - 1` (postings always have `tf ≥ 1`)
//!   at the width of the block's largest encoded tf.
//!
//! Both payloads are bit-packed little-endian into one shared `u64` word
//! buffer, each starting on a word boundary so a block decodes without
//! knowing its predecessors. The buffer ends with one padding word so the
//! decoder's two-word window read never branches on the tail.
//!
//! Decoding is structure-of-arrays: document ids and term frequencies land
//! in separate `u32` arrays via a branch-free unpack loop (a `u128` window
//! shift per value, no per-value conditionals), which rustc autovectorizes,
//! followed by a prefix sum over the gaps.

use crate::doc::DocId;
use crate::index::{Posting, TermBound};

/// Default number of postings per block.
pub const DEFAULT_BLOCK_SIZE: usize = 128;

/// Per-block header: where the payload lives, and the skip metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockMeta {
    /// First document id in the block (stored raw, not delta-encoded).
    pub first_doc: u32,
    /// Last (largest) document id in the block — the shallow-advance key.
    pub last_doc: u32,
    /// Number of postings in the block (only the final block may be short).
    pub count: u32,
    /// Index of the block's first posting within the whole list.
    pub start: u32,
    /// Largest term frequency in the block.
    pub max_tf: u32,
    /// Smallest analysed document length across the block's postings.
    pub min_doc_len: u32,
    /// Smallest length norm (`doc_len / avgdl`) across the block's postings.
    pub min_norm_len: f64,
    /// Width in bits of each encoded doc-id gap.
    doc_bits: u8,
    /// Width in bits of each encoded tf.
    tf_bits: u8,
    /// Word offset of the gap payload.
    doc_word: u32,
    /// Word offset of the tf payload.
    tf_word: u32,
}

impl BlockMeta {
    /// The block's pruning statistics as a [`TermBound`], so
    /// `bm25_term_upper_bound` yields a per-block score bound exactly the
    /// way it yields the per-list one.
    pub fn bound(&self) -> TermBound {
        TermBound {
            max_tf: self.max_tf,
            min_doc_len: self.min_doc_len,
            min_norm_len: self.min_norm_len,
        }
    }
}

/// One term's postings, block-compressed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompressedPostings {
    len: usize,
    words: Vec<u64>,
    blocks: Vec<BlockMeta>,
}

/// Bits needed to represent `v` (0 for `v == 0`).
fn width_of(v: u32) -> u8 {
    (32 - v.leading_zeros()) as u8
}

/// Append `values`, each `width` bits wide, little-endian into `words`.
fn pack(values: impl Iterator<Item = u32>, width: u8, words: &mut Vec<u64>) {
    if width == 0 {
        return;
    }
    let width = width as u32;
    let mut acc = 0u64;
    let mut used = 0u32;
    for v in values {
        acc |= (v as u64) << used;
        if used + width >= 64 {
            words.push(acc);
            acc = if used + width > 64 {
                (v as u64) >> (64 - used)
            } else {
                0
            };
        }
        used = (used + width) % 64;
    }
    if used > 0 {
        words.push(acc);
    }
}

/// Unpack `out.len()` values of `width` bits starting at word `start`.
///
/// The inner loop is branch-free: every value is read through a two-word
/// `u128` window (the buffer's trailing padding word keeps `words[w + 1]`
/// in bounds), shifted, and masked.
fn unpack(words: &[u64], start: usize, width: u8, out: &mut [u32]) {
    if width == 0 {
        out.fill(0);
        return;
    }
    let width = width as u64;
    let mask = (1u64 << width) - 1;
    for (i, slot) in out.iter_mut().enumerate() {
        let bit = i as u64 * width;
        let w = start + (bit >> 6) as usize;
        let shift = (bit & 63) as u32;
        let window = (words[w] as u128) | ((words[w + 1] as u128) << 64);
        *slot = (((window >> shift) as u64) & mask) as u32;
    }
}

impl CompressedPostings {
    /// Compress `list` (strictly ascending doc ids, every `tf ≥ 1`) into
    /// blocks of `block_size` postings. `doc_len` / `norm_len` are the
    /// per-document tables the per-block bounds are derived from.
    pub fn compress(
        list: &[Posting],
        block_size: usize,
        doc_len: &[u32],
        norm_len: &[f64],
    ) -> Self {
        let block_size = block_size.max(1);
        let mut words = Vec::new();
        let mut blocks = Vec::with_capacity(list.len().div_ceil(block_size));
        for (b, chunk) in list.chunks(block_size).enumerate() {
            debug_assert!(chunk.iter().all(|p| p.tf >= 1));
            debug_assert!(chunk.windows(2).all(|w| w[0].doc < w[1].doc));
            let first_doc = chunk[0].doc.0;
            let last_doc = chunk[chunk.len() - 1].doc.0;
            let mut max_gap = 0u32;
            for w in chunk.windows(2) {
                max_gap = max_gap.max(w[1].doc.0 - w[0].doc.0 - 1);
            }
            let max_tf = chunk.iter().map(|p| p.tf).max().unwrap_or(0);
            let mut min_dl = u32::MAX;
            let mut min_nl = f64::INFINITY;
            for p in chunk {
                min_dl = min_dl.min(doc_len.get(p.doc.index()).copied().unwrap_or(0));
                min_nl = min_nl.min(norm_len.get(p.doc.index()).copied().unwrap_or(0.0));
            }
            let doc_bits = width_of(max_gap);
            let tf_bits = width_of(max_tf - 1);
            let doc_word = words.len() as u32;
            pack(
                chunk.windows(2).map(|w| w[1].doc.0 - w[0].doc.0 - 1),
                doc_bits,
                &mut words,
            );
            let tf_word = words.len() as u32;
            pack(chunk.iter().map(|p| p.tf - 1), tf_bits, &mut words);
            blocks.push(BlockMeta {
                first_doc,
                last_doc,
                count: chunk.len() as u32,
                start: (b * block_size) as u32,
                max_tf,
                min_doc_len: min_dl,
                min_norm_len: min_nl,
                doc_bits,
                tf_bits,
                doc_word,
                tf_word,
            });
        }
        // Padding word: the decoder's two-word window may read one word past
        // the last payload word.
        words.push(0);
        Self {
            len: list.len(),
            words,
            blocks,
        }
    }

    /// Total number of postings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The per-block skip metadata, in list order.
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// Decode block `b`'s document ids into `docs` (cleared and refilled).
    pub fn decode_block_docs(&self, b: usize, docs: &mut Vec<u32>) {
        let m = &self.blocks[b];
        let n = m.count as usize;
        docs.clear();
        docs.resize(n, 0);
        unpack(&self.words, m.doc_word as usize, m.doc_bits, &mut docs[1..]);
        docs[0] = m.first_doc;
        let mut prev = m.first_doc;
        for slot in &mut docs[1..] {
            prev = prev + *slot + 1;
            *slot = prev;
        }
    }

    /// Decode block `b` fully: document ids into `docs`, term frequencies
    /// into `tfs` (both cleared and refilled, structure-of-arrays).
    pub fn decode_block(&self, b: usize, docs: &mut Vec<u32>, tfs: &mut Vec<u32>) {
        self.decode_block_docs(b, docs);
        let m = &self.blocks[b];
        let n = m.count as usize;
        tfs.clear();
        tfs.resize(n, 0);
        unpack(&self.words, m.tf_word as usize, m.tf_bits, tfs);
        for tf in tfs.iter_mut() {
            *tf += 1;
        }
    }

    /// Decode the whole list back into `Posting`s — the round-trip inverse
    /// of [`CompressedPostings::compress`].
    pub fn decode_all(&self) -> Vec<Posting> {
        let mut out = Vec::with_capacity(self.len);
        let mut docs = Vec::new();
        let mut tfs = Vec::new();
        for b in 0..self.blocks.len() {
            self.decode_block(b, &mut docs, &mut tfs);
            out.extend(
                docs.iter()
                    .zip(tfs.iter())
                    .map(|(&d, &tf)| Posting { doc: DocId(d), tf }),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(list: &[Posting], block_size: usize) {
        let doc_len = vec![10u32; 1 << 20];
        let norm_len = vec![1.0f64; 1 << 20];
        let c = CompressedPostings::compress(list, block_size, &doc_len, &norm_len);
        assert_eq!(c.len(), list.len());
        assert_eq!(c.decode_all(), list);
    }

    fn postings(pairs: &[(u32, u32)]) -> Vec<Posting> {
        pairs
            .iter()
            .map(|&(d, tf)| Posting { doc: DocId(d), tf })
            .collect()
    }

    #[test]
    fn empty_list() {
        let c = CompressedPostings::compress(&[], 128, &[], &[]);
        assert!(c.is_empty());
        assert!(c.blocks().is_empty());
        assert!(c.decode_all().is_empty());
    }

    #[test]
    fn dense_run_packs_to_zero_gap_bits() {
        let list = postings(&(0..200).map(|d| (d, 1)).collect::<Vec<_>>());
        roundtrip(&list, 128);
        let c = CompressedPostings::compress(&list, 128, &[10; 200], &[1.0; 200]);
        // Consecutive ids and tf == 1 everywhere: both widths collapse to 0,
        // leaving only the padding word.
        assert_eq!(c.words.len(), 1);
        assert_eq!(c.blocks().len(), 2);
        assert_eq!(c.blocks()[1].start, 128);
    }

    #[test]
    fn wide_gaps_and_tfs_roundtrip() {
        let list = postings(&[
            (0, 1),
            (1, 7),
            (1_000_000, 1),
            (1_000_001, 300),
            (u32::MAX - 2, 2),
            (u32::MAX - 1, 1),
        ]);
        for bs in [1, 2, 3, 4, 128] {
            roundtrip(&list, bs);
        }
    }

    #[test]
    fn block_boundaries_roundtrip() {
        for n in [127usize, 128, 129, 255, 256, 257] {
            let list = postings(
                &(0..n as u32)
                    .map(|d| (d * 3 + (d % 3), d % 7 + 1))
                    .collect::<Vec<_>>(),
            );
            roundtrip(&list, 128);
        }
    }

    #[test]
    fn metadata_tracks_block_extremes() {
        let list = postings(&[(2, 5), (9, 1), (40, 3), (41, 9)]);
        let doc_len = [
            8u32, 8, 6, 8, 8, 8, 8, 8, 8, 4, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8,
            8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 2, 8,
        ];
        let norm_len: Vec<f64> = doc_len.iter().map(|&l| l as f64 / 8.0).collect();
        let c = CompressedPostings::compress(&list, 2, &doc_len, &norm_len);
        assert_eq!(c.blocks().len(), 2);
        let b0 = c.blocks()[0];
        assert_eq!(
            (b0.first_doc, b0.last_doc, b0.count, b0.start),
            (2, 9, 2, 0)
        );
        assert_eq!(b0.max_tf, 5);
        assert_eq!(b0.min_doc_len, 4);
        assert_eq!(b0.bound().min_norm_len, 0.5);
        let b1 = c.blocks()[1];
        assert_eq!((b1.first_doc, b1.last_doc, b1.start), (40, 41, 2));
        assert_eq!(b1.max_tf, 9);
        assert_eq!(b1.min_doc_len, 2);
    }

    #[test]
    fn partial_decode_matches_full_decode() {
        let list = postings(
            &(0..300u32)
                .map(|d| (d * d / 7 + d, (d % 13) + 1))
                .collect::<Vec<_>>(),
        );
        let c = CompressedPostings::compress(&list, 64, &[10; 1 << 16], &[1.0; 1 << 16]);
        let mut docs = Vec::new();
        let mut tfs = Vec::new();
        let mut at = 0usize;
        for b in 0..c.blocks().len() {
            c.decode_block(b, &mut docs, &mut tfs);
            assert_eq!(c.blocks()[b].start as usize, at);
            for (i, (&d, &tf)) in docs.iter().zip(tfs.iter()).enumerate() {
                assert_eq!(list[at + i], Posting { doc: DocId(d), tf });
            }
            at += docs.len();
        }
        assert_eq!(at, list.len());
    }

    #[test]
    fn single_posting_blocks() {
        let list = postings(&[(7, 4)]);
        roundtrip(&list, 128);
        let c = CompressedPostings::compress(&list, 128, &[10; 8], &[1.0; 8]);
        assert_eq!(c.blocks().len(), 1);
        assert_eq!(c.blocks()[0].doc_bits, 0);
    }
}
