//! Query-term highlighting and passage (snippet) selection.
//!
//! The CREDENCE UI renders documents with the query's terms visually
//! emphasised and shows short previews in the ranking table. This module
//! computes those views: byte-offset highlight spans for every token whose
//! analysed form matches an analysed query term (so `Covid-19,` highlights
//! for the query `covid-19`, and `outbreaks` for `outbreak` under a
//! stemming analyzer), and the best fixed-width passage by query-term
//! density for snippeting.

use credence_text::{tokenize, Analyzer};

/// One highlight span, in byte offsets into the original body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Highlight {
    /// First byte of the matched token.
    pub start: usize,
    /// One past the last byte of the matched token.
    pub end: usize,
}

/// Compute highlight spans for `query` over `body` under `analyzer`.
///
/// Spans are sorted and non-overlapping (tokens cannot overlap).
pub fn highlight_terms(analyzer: Analyzer, query: &str, body: &str) -> Vec<Highlight> {
    let query_terms: std::collections::HashSet<String> =
        analyzer.analyze(query).into_iter().collect();
    if query_terms.is_empty() {
        return Vec::new();
    }
    tokenize(body)
        .into_iter()
        .filter(|tok| {
            analyzer
                .analyze_term(&tok.term)
                .is_some_and(|t| query_terms.contains(&t))
        })
        .map(|tok| Highlight {
            start: tok.start,
            end: tok.end,
        })
        .collect()
}

/// A selected snippet: the passage text and its query-term hit count.
#[derive(Debug, Clone, PartialEq)]
pub struct Snippet {
    /// The passage text (verbatim slice of the body, trimmed).
    pub text: String,
    /// Byte offset of the passage start in the body.
    pub start: usize,
    /// Byte offset one past the passage end.
    pub end: usize,
    /// Number of query-term occurrences inside the passage.
    pub hits: usize,
}

/// Select the best passage of at most `window` tokens by query-term density
/// (ties resolve to the earliest passage). Returns the leading window when
/// nothing matches, and `None` only for an empty body.
pub fn best_snippet(analyzer: Analyzer, query: &str, body: &str, window: usize) -> Option<Snippet> {
    let tokens = tokenize(body);
    if tokens.is_empty() || window == 0 {
        return None;
    }
    let query_terms: std::collections::HashSet<String> =
        analyzer.analyze(query).into_iter().collect();
    let is_hit: Vec<bool> = tokens
        .iter()
        .map(|tok| {
            analyzer
                .analyze_term(&tok.term)
                .is_some_and(|t| query_terms.contains(&t))
        })
        .collect();

    // Sliding window over token positions.
    let n = tokens.len();
    let w = window.min(n);
    let mut hits: usize = is_hit[..w].iter().filter(|&&h| h).count();
    let (mut best_start, mut best_hits) = (0usize, hits);
    for start in 1..=n - w {
        hits -= usize::from(is_hit[start - 1]);
        hits += usize::from(is_hit[start + w - 1]);
        if hits > best_hits {
            best_hits = hits;
            best_start = start;
        }
    }
    let start = tokens[best_start].start;
    let end = tokens[best_start + w - 1].end;
    Some(Snippet {
        text: body[start..end].trim().to_string(),
        start,
        end,
        hits: best_hits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn highlights_match_analysed_forms() {
        let body = "The Covid-19 outbreaks worry covid researchers.";
        let spans = highlight_terms(Analyzer::english(), "covid-19 outbreak", body);
        let highlighted: Vec<&str> = spans.iter().map(|h| &body[h.start..h.end]).collect();
        // "Covid-19" matches covid-19; "outbreaks" stems to outbreak;
        // "covid" does NOT match covid-19 (different term).
        assert_eq!(highlighted, vec!["Covid-19", "outbreaks"]);
    }

    #[test]
    fn stemmed_matches_highlight() {
        let body = "They were tracking the trackers all day.";
        let spans = highlight_terms(Analyzer::english(), "tracking", body);
        let highlighted: Vec<&str> = spans.iter().map(|h| &body[h.start..h.end]).collect();
        // "tracking" stems to "track"; "trackers" stems to "tracker" (no match).
        assert_eq!(highlighted, vec!["tracking"]);
    }

    #[test]
    fn no_query_terms_no_highlights() {
        assert!(highlight_terms(Analyzer::english(), "", "some body").is_empty());
        assert!(highlight_terms(Analyzer::english(), "the", "the body").is_empty());
    }

    #[test]
    fn spans_are_sorted_and_disjoint() {
        let body = "covid covid covid outbreak covid";
        let spans = highlight_terms(Analyzer::english(), "covid outbreak", body);
        assert_eq!(spans.len(), 5);
        for w in spans.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn snippet_finds_densest_window() {
        let body = "Filler text opens the story here with nothing relevant at all. \
                    Later covid outbreak covid outbreak appears densely together. \
                    Then more filler closes the document quietly.";
        let s = best_snippet(Analyzer::english(), "covid outbreak", body, 6).unwrap();
        assert!(s.hits >= 4, "{s:?}");
        assert!(s.text.contains("covid outbreak"));
    }

    #[test]
    fn snippet_with_no_matches_returns_lead() {
        let body = "Nothing matches here at all in this text.";
        let s = best_snippet(Analyzer::english(), "covid", body, 5).unwrap();
        assert_eq!(s.hits, 0);
        assert!(s.text.starts_with("Nothing"));
    }

    #[test]
    fn snippet_window_larger_than_body() {
        let body = "short covid text";
        let s = best_snippet(Analyzer::english(), "covid", body, 50).unwrap();
        assert_eq!(s.text, "short covid text");
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn snippet_empty_body_or_window() {
        assert!(best_snippet(Analyzer::english(), "covid", "", 5).is_none());
        assert!(best_snippet(Analyzer::english(), "covid", "text", 0).is_none());
    }

    #[test]
    fn snippet_offsets_slice_the_body() {
        let body = "alpha covid beta covid gamma delta epsilon.";
        let s = best_snippet(Analyzer::english(), "covid", body, 3).unwrap();
        assert_eq!(body[s.start..s.end].trim(), s.text);
    }
}
