//! Sparse score vectors and cosine similarity.
//!
//! §II-E of the paper: "we build numeric vector representations of each
//! corpus document using their BM25 scores … we calculate similarity using a
//! cosine similarity formula." A document's vector assigns each of its terms
//! that term's BM25 weight within the document; two documents are similar
//! when they emphasise the same terms with similar strength.

use credence_text::TermId;

use crate::doc::DocId;
use crate::index::InvertedIndex;
use crate::score::{bm25_term_weight, Bm25Params};

/// A sparse vector over term ids, sorted by term id, no explicit zeros.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVector {
    entries: Vec<(TermId, f64)>,
}

impl SparseVector {
    /// Build from unsorted `(term, weight)` pairs; zero weights are dropped
    /// and duplicate terms accumulate.
    pub fn from_pairs(mut pairs: Vec<(TermId, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(t, _)| t);
        let mut entries: Vec<(TermId, f64)> = Vec::with_capacity(pairs.len());
        for (t, w) in pairs {
            if w == 0.0 {
                continue;
            }
            match entries.last_mut() {
                Some(last) if last.0 == t => last.1 += w,
                _ => entries.push((t, w)),
            }
        }
        Self { entries }
    }

    /// The non-zero entries, sorted by term id.
    pub fn entries(&self) -> &[(TermId, f64)] {
        &self.entries
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt()
    }

    /// Dot product with another sparse vector (merge join).
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.entries, &other.entries);
        let mut sum = 0.0;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += a[i].1 * b[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }
}

/// Cosine similarity in `[-1, 1]`; zero when either vector is empty.
pub fn cosine_similarity(a: &SparseVector, b: &SparseVector) -> f64 {
    let denom = a.norm() * b.norm();
    if denom == 0.0 {
        0.0
    } else {
        (a.dot(b) / denom).clamp(-1.0, 1.0)
    }
}

/// The BM25 score vector of an indexed document: each term of the document
/// weighted by its BM25 contribution (tf saturation × idf × length norm).
pub fn bm25_doc_vector(index: &InvertedIndex, params: Bm25Params, doc: DocId) -> SparseVector {
    let len = index.doc_len(doc);
    let pairs = index
        .doc_terms(doc)
        .iter()
        .map(|&(t, tf)| (t, bm25_term_weight(params, index.stats(), t, tf, len)))
        .collect();
    SparseVector::from_pairs(pairs)
}

/// The BM25 score vector of an ad-hoc document (e.g. a perturbed body).
pub fn bm25_adhoc_vector(
    index: &InvertedIndex,
    params: Bm25Params,
    doc_terms: &[(TermId, u32)],
    doc_len: u32,
) -> SparseVector {
    let pairs = doc_terms
        .iter()
        .map(|&(t, tf)| (t, bm25_term_weight(params, index.stats(), t, tf, doc_len)))
        .collect();
    SparseVector::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::Document;
    use credence_text::Analyzer;

    #[test]
    fn from_pairs_sorts_dedups_drops_zeros() {
        let v = SparseVector::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 1.5), (2, 0.0)]);
        assert_eq!(v.entries(), &[(1, 2.0), (3, 2.5)]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let v = SparseVector::from_pairs(vec![(0, 1.0), (5, 2.0), (9, 3.0)]);
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_disjoint_vectors_is_zero() {
        let a = SparseVector::from_pairs(vec![(0, 1.0), (1, 1.0)]);
        let b = SparseVector::from_pairs(vec![(2, 1.0), (3, 1.0)]);
        assert_eq!(cosine_similarity(&a, &b), 0.0);
    }

    #[test]
    fn cosine_with_empty_vector_is_zero() {
        let a = SparseVector::from_pairs(vec![(0, 1.0)]);
        let empty = SparseVector::default();
        assert_eq!(cosine_similarity(&a, &empty), 0.0);
        assert_eq!(cosine_similarity(&empty, &empty), 0.0);
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = SparseVector::from_pairs(vec![(0, 1.0), (1, 2.0)]);
        let b = SparseVector::from_pairs(vec![(0, 10.0), (1, 20.0)]);
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_is_symmetric() {
        let a = SparseVector::from_pairs(vec![(0, 1.0), (1, 2.0), (4, 0.5)]);
        let b = SparseVector::from_pairs(vec![(1, 3.0), (4, 1.0), (7, 2.0)]);
        assert!((cosine_similarity(&a, &b) - cosine_similarity(&b, &a)).abs() < 1e-15);
    }

    #[test]
    fn doc_vectors_reflect_term_overlap() {
        let idx = InvertedIndex::build(
            vec![
                Document::from_body("covid outbreak microchip tracking vaccine"),
                Document::from_body("covid outbreak microchip tracking vaccine"),
                Document::from_body("garden flowers bloom in spring sunshine"),
            ],
            Analyzer::english(),
        );
        let p = Bm25Params::default();
        let v0 = bm25_doc_vector(&idx, p, DocId(0));
        let v1 = bm25_doc_vector(&idx, p, DocId(1));
        let v2 = bm25_doc_vector(&idx, p, DocId(2));
        assert!((cosine_similarity(&v0, &v1) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&v0, &v2) < 0.1);
    }

    #[test]
    fn adhoc_vector_matches_indexed_vector() {
        let idx = InvertedIndex::build(
            vec![
                Document::from_body("covid outbreak in the city"),
                Document::from_body("other content entirely here"),
            ],
            Analyzer::english(),
        );
        let p = Bm25Params::default();
        let indexed = bm25_doc_vector(&idx, p, DocId(0));
        let (terms, len) = idx.analyze_adhoc("covid outbreak in the city");
        let adhoc = bm25_adhoc_vector(&idx, p, &terms, len);
        assert_eq!(indexed, adhoc);
    }
}
