//! Deterministic document partitioning for scatter-gather retrieval.
//!
//! Cluster mode replicates the corpus on every worker (so collection
//! statistics — idf, avgdl — are global and scores stay bit-identical to
//! single-node) and splits the *computation*: each fanout request restricts
//! scoring to the documents owned by one partition. Ownership is a pure
//! function of the [`DocId`] — a SplitMix64-style mix reduced modulo the
//! partition count — so routers and workers agree on it with no shared
//! state, and the partitions of `0..count` exactly cover the corpus.

use crate::doc::DocId;

/// Which slice of the doc-hash space a request should score.
///
/// `index` must be `< count`; `count == 1` owns everything. The same spec
/// on the same corpus always selects the same documents, on any machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Partition index, `0..count`.
    pub index: u32,
    /// Total partitions the corpus is split into (`>= 1`).
    pub count: u32,
}

impl PartitionSpec {
    /// Build a spec, rejecting `count == 0` and `index >= count`.
    pub fn new(index: u32, count: u32) -> Option<Self> {
        if count == 0 || index >= count {
            return None;
        }
        Some(Self { index, count })
    }

    /// Whether this partition owns `doc`.
    pub fn owns(&self, doc: DocId) -> bool {
        self.count <= 1 || doc_partition(doc, self.count) == self.index
    }
}

/// The partition that owns `doc` when the space is split `count` ways.
///
/// SplitMix64's finalizer scrambles the sequential doc ids so partitions
/// get near-uniform load even on range-correlated corpora; the modulo
/// reduction keeps the function exactly reproducible across platforms.
pub fn doc_partition(doc: DocId, count: u32) -> u32 {
    debug_assert!(count > 0, "partition count must be >= 1");
    if count <= 1 {
        return 0;
    }
    let mut z = (doc.0 as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % count as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_doc_owned_by_exactly_one_partition() {
        for count in 1..=8u32 {
            for d in 0..500u32 {
                let doc = DocId(d);
                let owners: Vec<u32> = (0..count)
                    .filter(|&i| PartitionSpec { index: i, count }.owns(doc))
                    .collect();
                assert_eq!(
                    owners.len(),
                    1,
                    "doc {d} owned by {owners:?} under count {count}"
                );
                assert_eq!(owners[0], doc_partition(doc, count));
            }
        }
    }

    #[test]
    fn partitions_are_reasonably_balanced() {
        let count = 4u32;
        let mut sizes = vec![0usize; count as usize];
        for d in 0..4000u32 {
            sizes[doc_partition(DocId(d), count) as usize] += 1;
        }
        for (i, &s) in sizes.iter().enumerate() {
            assert!(
                (700..=1300).contains(&s),
                "partition {i} holds {s} of 4000 docs — hash is skewed"
            );
        }
    }

    #[test]
    fn single_partition_owns_everything() {
        let spec = PartitionSpec::new(0, 1).unwrap();
        for d in 0..64 {
            assert!(spec.owns(DocId(d)));
        }
    }

    #[test]
    fn new_rejects_degenerate_specs() {
        assert!(PartitionSpec::new(0, 0).is_none());
        assert!(PartitionSpec::new(3, 3).is_none());
        assert!(PartitionSpec::new(7, 8).is_some());
    }
}
