//! Pruned exact top-k retrieval.
//!
//! A MaxScore-style term-at-a-time engine plus a sharded parallel fallback,
//! both **bit-identical** to the exhaustive scan in [`crate::search`]:
//!
//! * Every candidate that survives is scored with the *same* float fold the
//!   exhaustive path uses ([`bm25_score_indexed`] for plain queries, the
//!   slice-order weighted fold for expanded queries), so scores agree to the
//!   last bit.
//! * Top-k selection is over a strict total order (descending score,
//!   ascending [`DocId`]; doc ids are unique), so the selected set and its
//!   sorted order are insertion-order independent.
//! * Pruning bounds therefore only need to be *sound*, never exact: a term's
//!   contribution is bounded via [`bm25_term_upper_bound`] over the
//!   [`TermBound`] statistics frozen at build time, suffix sums are inflated
//!   by [`BOUND_SLACK`] to absorb float-summation non-associativity, and a
//!   list is skipped only when its inflated bound is *strictly* below the
//!   current threshold — a candidate tying the k-th score could still win
//!   its tie-break on doc id, so ties are never pruned.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use credence_text::TermId;

use crate::doc::DocId;
use crate::index::InvertedIndex;
use crate::partition::PartitionSpec;
use crate::score::{bm25_score_indexed, bm25_term_upper_bound, bm25_term_weight, Bm25Params};
use crate::search::{sort_hits, SearchHit};

/// Multiplicative slack applied to summed upper bounds.
///
/// Exact scores are left folds in query order; bounds are folds in
/// upper-bound order. Both are within `(n-1)·eps` relative error of the real
/// sum, so inflating the bound by `1e-9 >> 2·n·eps` (for any realistic query
/// length `n`) guarantees `inflated_bound >= exact_score` in floats.
const BOUND_SLACK: f64 = 1.0 + 1e-9;

/// How top-k retrieval traverses the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// Choose between `Pruned` and `Sharded` with the cost heuristic.
    #[default]
    Auto,
    /// Reference path: gather candidates, score every one serially.
    Exhaustive,
    /// MaxScore-style term-at-a-time pruning.
    Pruned,
    /// Scored in parallel over doc-id range shards, deterministically merged.
    Sharded,
}

impl SearchStrategy {
    /// Parse a knob value (`auto` | `exhaustive` | `pruned` | `sharded`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(Self::Auto),
            "exhaustive" => Some(Self::Exhaustive),
            "pruned" => Some(Self::Pruned),
            "sharded" => Some(Self::Sharded),
            _ => None,
        }
    }

    /// The canonical knob spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Exhaustive => "exhaustive",
            Self::Pruned => "pruned",
            Self::Sharded => "sharded",
        }
    }
}

/// Knobs for [`search_top_k_with`], mirroring the `eval_*` options pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKOptions {
    /// Traversal strategy.
    pub strategy: SearchStrategy,
    /// Shard count for the sharded path; `0` means one per available core.
    pub shards: usize,
    /// Candidate-postings volume at which a query counts as *dense* — below
    /// this, `Auto` always prunes (parallelism cannot pay for itself).
    pub dense_postings: usize,
    /// Restrict scoring to one doc-hash partition (cluster fanout). Scores
    /// of surviving documents are untouched — collection statistics stay
    /// global — so per-partition top-ks merge bit-identically into the
    /// unpartitioned ranking. `None` scores the whole corpus.
    pub partition: Option<PartitionSpec>,
}

impl Default for TopKOptions {
    fn default() -> Self {
        Self {
            strategy: SearchStrategy::Auto,
            shards: 0,
            dense_postings: 8192,
            partition: None,
        }
    }
}

/// Counters describing how a retrieval was executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKStats {
    /// Documents actually scored with the exact fold.
    pub docs_scored: u64,
    /// Posting entries skipped by pruning. An upper bound on pruned *unique*
    /// documents: a document is counted once per skipped list it appears in.
    pub docs_pruned: u64,
    /// Shards used by the parallel path (`0` for serial paths).
    pub shards_used: u64,
    /// Which path ran (`"pruned"`, `"exhaustive"`, `"sharded"`, `"empty"`).
    pub strategy: &'static str,
}

impl TopKStats {
    fn new(strategy: &'static str) -> Self {
        Self {
            docs_scored: 0,
            docs_pruned: 0,
            shards_used: 0,
            strategy,
        }
    }
}

/// Min-heap entry: the *worst* hit under (score desc, doc asc) pops first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry(SearchHit);

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .score
            .partial_cmp(&self.0.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.0.doc.cmp(&other.0.doc))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded top-k collector over the strict (score desc, doc asc) order.
struct TopKHeap {
    heap: BinaryHeap<HeapEntry>,
    k: usize,
}

impl TopKHeap {
    fn new(k: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(k + 1),
            k,
        }
    }

    /// Offer a scored hit; returns nothing, keeps the best `k`.
    fn offer(&mut self, hit: SearchHit) {
        self.heap.push(HeapEntry(hit));
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    /// The current k-th best score, if the heap is full.
    fn threshold(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|e| e.0.score)
        } else {
            None
        }
    }

    fn into_sorted(self) -> Vec<SearchHit> {
        let mut hits: Vec<SearchHit> = self.heap.into_iter().map(|e| e.0).collect();
        sort_hits(&mut hits);
        hits
    }
}

/// Rank the corpus for a bag of analysed query term ids and return the top
/// `k` hits, best first, with execution counters. Bit-identical to the
/// exhaustive reference regardless of the strategy chosen.
pub fn search_top_k_with(
    index: &InvertedIndex,
    params: Bm25Params,
    query: &[TermId],
    k: usize,
    opts: &TopKOptions,
) -> (Vec<SearchHit>, TopKStats) {
    if k == 0 || query.is_empty() {
        return (Vec::new(), TopKStats::new("empty"));
    }
    let uniq = unique_weighted(query.iter().map(|&t| (t, 1.0)), index);
    let exact = |doc: DocId| bm25_score_indexed(params, index, query, doc);
    dispatch(index, params, &uniq, k, &exact, opts)
}

/// Weighted-query variant for expanded (RM3-style) queries: exact scores are
/// the slice-order fold `sum(w * bm25_term_weight(t, tf, doc_len))`, matching
/// `Rm3Ranker`'s scoring bit for bit. Weights must be non-negative for the
/// pruned path; any negative weight forces the (still exact) exhaustive path.
pub fn search_weighted_top_k_with(
    index: &InvertedIndex,
    params: Bm25Params,
    terms: &[(TermId, f64)],
    k: usize,
    opts: &TopKOptions,
) -> (Vec<SearchHit>, TopKStats) {
    if k == 0 || terms.is_empty() {
        return (Vec::new(), TopKStats::new("empty"));
    }
    let uniq = unique_weighted(terms.iter().copied(), index);
    let stats = index.stats();
    let exact = |doc: DocId| {
        let doc_len = index.doc_len(doc);
        terms
            .iter()
            .map(|&(t, w)| w * bm25_term_weight(params, stats, t, index.term_freq(doc, t), doc_len))
            .sum()
    };
    if terms.iter().any(|&(_, w)| w < 0.0) {
        return exhaustive_core(index, &uniq, k, &exact, opts.partition);
    }
    dispatch(index, params, &uniq, k, &exact, opts)
}

/// The exhaustive reference scan (candidate gather + score everything),
/// exposed for parity tests and the `exhaustive` strategy knob.
pub fn search_top_k_exhaustive(
    index: &InvertedIndex,
    params: Bm25Params,
    query: &[TermId],
    k: usize,
) -> (Vec<SearchHit>, TopKStats) {
    if k == 0 || query.is_empty() {
        return (Vec::new(), TopKStats::new("empty"));
    }
    let uniq = unique_weighted(query.iter().map(|&t| (t, 1.0)), index);
    let exact = |doc: DocId| bm25_score_indexed(params, index, query, doc);
    exhaustive_core(index, &uniq, k, &exact, None)
}

/// Collapse a term sequence into unique `(term, summed weight)` pairs sorted
/// by term id, dropping terms with empty postings (they cannot match).
fn unique_weighted(
    terms: impl Iterator<Item = (TermId, f64)>,
    index: &InvertedIndex,
) -> Vec<(TermId, f64)> {
    let mut v: Vec<(TermId, f64)> = terms
        .filter(|&(t, _)| !index.postings(t).is_empty())
        .collect();
    v.sort_unstable_by_key(|&(t, _)| t);
    v.dedup_by(|a, b| {
        if a.0 == b.0 {
            b.1 += a.1;
            true
        } else {
            false
        }
    });
    v
}

/// Per-unique-term bound contributions `(term, weight * upper_bound)`,
/// sorted by contribution descending (term id ascending on ties, for
/// determinism). `None` when any contribution is non-finite — degenerate
/// BM25 parameters — in which case callers fall back to the exhaustive path.
fn contributions(
    index: &InvertedIndex,
    params: Bm25Params,
    uniq: &[(TermId, f64)],
) -> Option<Vec<(TermId, f64)>> {
    let mut out = Vec::with_capacity(uniq.len());
    for &(t, w) in uniq {
        let ub = w * bm25_term_upper_bound(params, index.stats(), t, index.term_bound(t));
        if !ub.is_finite() {
            return None;
        }
        out.push((t, ub));
    }
    out.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    Some(out)
}

/// Route a prepared query to a concrete path per the options.
fn dispatch<F: Fn(DocId) -> f64 + Sync>(
    index: &InvertedIndex,
    params: Bm25Params,
    uniq: &[(TermId, f64)],
    k: usize,
    exact: &F,
    opts: &TopKOptions,
) -> (Vec<SearchHit>, TopKStats) {
    let part = opts.partition;
    match opts.strategy {
        SearchStrategy::Exhaustive => exhaustive_core(index, uniq, k, exact, part),
        SearchStrategy::Sharded => sharded_core(index, uniq, k, exact, opts.shards, part),
        SearchStrategy::Pruned => match contributions(index, params, uniq) {
            Some(contribs) => pruned_core(index, &contribs, k, exact, part),
            None => exhaustive_core(index, uniq, k, exact, part),
        },
        SearchStrategy::Auto => {
            let Some(contribs) = contributions(index, params, uniq) else {
                return exhaustive_core(index, uniq, k, exact, part);
            };
            let total: usize = uniq.iter().map(|&(t, _)| index.postings(t).len()).sum();
            if total >= opts.dense_postings && !pruning_favourable(index, &contribs) {
                sharded_core(index, uniq, k, exact, opts.shards, part)
            } else {
                pruned_core(index, &contribs, k, exact, part)
            }
        }
    }
}

/// Whether `doc` survives the optional partition filter.
#[inline]
fn in_partition(part: Option<PartitionSpec>, doc: DocId) -> bool {
    part.map_or(true, |p| p.owns(doc))
}

/// Cost heuristic for `Auto` on dense queries: pruning pays off when most of
/// the candidate postings sit in lists whose *combined* (suffix) bound is
/// below the strongest single term's — those are the lists MaxScore can skip
/// once the heap fills with documents from the strong list. With balanced
/// bounds across long lists nothing is skippable and sharding wins.
fn pruning_favourable(index: &InvertedIndex, contribs: &[(TermId, f64)]) -> bool {
    let Some(&(_, best)) = contribs.first() else {
        return true;
    };
    let mut suffix = 0.0;
    let mut prunable = 0usize;
    let mut total = 0usize;
    for (i, &(t, c)) in contribs.iter().enumerate().rev() {
        suffix += c;
        let len = index.postings(t).len();
        total += len;
        if i > 0 && suffix < best {
            prunable += len;
        }
    }
    2 * prunable >= total
}

/// Score every candidate (union of postings) serially. Candidates are
/// collected by sort+dedup on a plain `Vec` — no hashing on the hot path.
fn exhaustive_core<F: Fn(DocId) -> f64>(
    index: &InvertedIndex,
    uniq: &[(TermId, f64)],
    k: usize,
    exact: &F,
    part: Option<PartitionSpec>,
) -> (Vec<SearchHit>, TopKStats) {
    let mut stats = TopKStats::new("exhaustive");
    let total: usize = uniq.iter().map(|&(t, _)| index.postings(t).len()).sum();
    let mut candidates: Vec<DocId> = Vec::with_capacity(total);
    for &(t, _) in uniq {
        candidates.extend(index.postings(t).iter().map(|p| p.doc));
    }
    candidates.sort_unstable();
    candidates.dedup();
    let mut top = TopKHeap::new(k);
    for doc in candidates {
        if !in_partition(part, doc) {
            continue;
        }
        let score = exact(doc);
        stats.docs_scored += 1;
        if score > 0.0 {
            top.offer(SearchHit { doc, score });
        }
    }
    (top.into_sorted(), stats)
}

/// MaxScore-style term-at-a-time search. `contribs` must be sorted by bound
/// contribution descending. Exact parity with the exhaustive scan follows
/// from (a) identical exact scoring of every surviving candidate, (b) the
/// strict total order making top-k selection insertion-order independent,
/// and (c) pruning only on `inflated_bound < threshold` — strictly below —
/// so no document that could enter (or tie into) the top-k is ever skipped.
/// A partition filter drops whole documents before scoring, which only
/// lowers achievable scores — bound soundness is unaffected.
fn pruned_core<F: Fn(DocId) -> f64>(
    index: &InvertedIndex,
    contribs: &[(TermId, f64)],
    k: usize,
    exact: &F,
    part: Option<PartitionSpec>,
) -> (Vec<SearchHit>, TopKStats) {
    let mut stats = TopKStats::new("pruned");
    let n = contribs.len();
    // Inflated suffix bounds: suffix[i] >= exact score of any document whose
    // query terms all come from lists i.., in float arithmetic.
    let mut suffix = vec![0.0f64; n + 1];
    for i in (0..n).rev() {
        suffix[i] = (suffix[i + 1] + contribs[i].1) * BOUND_SLACK;
    }
    let words = index.num_docs().div_ceil(64);
    let mut seen = vec![0u64; words];
    let mut top = TopKHeap::new(k);
    for (i, &(t, _)) in contribs.iter().enumerate() {
        let bound = suffix[i];
        let postings = index.postings(t);
        // A document first seen in list i (or later) scores at most
        // suffix[i]; once that is strictly below the threshold, no unseen
        // document anywhere in lists i.. can enter the top-k or tie into it.
        if top.threshold().is_some_and(|th| bound < th) {
            stats.docs_pruned += contribs[i..]
                .iter()
                .map(|&(t, _)| index.postings(t).len() as u64)
                .sum::<u64>();
            break;
        }
        for (pi, p) in postings.iter().enumerate() {
            if top.threshold().is_some_and(|th| bound < th) {
                // The threshold rose mid-list; the rest of this list and all
                // later lists are bounded by suffix[i] too.
                stats.docs_pruned += (postings.len() - pi) as u64;
                stats.docs_pruned += contribs[i + 1..]
                    .iter()
                    .map(|&(t, _)| index.postings(t).len() as u64)
                    .sum::<u64>();
                return (top.into_sorted(), stats);
            }
            let word = p.doc.index() / 64;
            let bit = 1u64 << (p.doc.index() % 64);
            if seen[word] & bit != 0 {
                continue;
            }
            seen[word] |= bit;
            if !in_partition(part, p.doc) {
                continue;
            }
            let score = exact(p.doc);
            stats.docs_scored += 1;
            if score > 0.0 {
                top.offer(SearchHit { doc: p.doc, score });
            }
        }
    }
    (top.into_sorted(), stats)
}

/// Parallel fallback for dense queries: contiguous doc-id range shards
/// scored exactly on scoped threads, local top-k per shard, deterministic
/// merge (concatenate, sort by the total order, truncate). Exact because
/// the global top-k is contained in the union of per-shard top-ks.
fn sharded_core<F: Fn(DocId) -> f64 + Sync>(
    index: &InvertedIndex,
    uniq: &[(TermId, f64)],
    k: usize,
    exact: &F,
    shards: usize,
    part: Option<PartitionSpec>,
) -> (Vec<SearchHit>, TopKStats) {
    let n = index.num_docs();
    let mut stats = TopKStats::new("sharded");
    if n == 0 {
        return (Vec::new(), stats);
    }
    let requested = if shards == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        shards
    };
    let shards = requested.clamp(1, n);
    let chunk = n.div_ceil(shards);
    let ranges: Vec<(u32, u32)> = (0..shards)
        .map(|i| ((i * chunk) as u32, ((i + 1) * chunk).min(n) as u32))
        .filter(|&(lo, hi)| lo < hi)
        .collect();
    stats.shards_used = ranges.len() as u64;
    let shard_results: Vec<(Vec<SearchHit>, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                s.spawn(move || {
                    let mut candidates: Vec<DocId> = Vec::new();
                    for &(t, _) in uniq {
                        let list = index.postings(t);
                        let a = list.partition_point(|p| p.doc.0 < lo);
                        let b = list.partition_point(|p| p.doc.0 < hi);
                        candidates.extend(list[a..b].iter().map(|p| p.doc));
                    }
                    candidates.sort_unstable();
                    candidates.dedup();
                    candidates.retain(|&d| in_partition(part, d));
                    let scored = candidates.len() as u64;
                    let mut top = TopKHeap::new(k);
                    for doc in candidates {
                        let score = exact(doc);
                        if score > 0.0 {
                            top.offer(SearchHit { doc, score });
                        }
                    }
                    (top.into_sorted(), scored)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut hits: Vec<SearchHit> = Vec::with_capacity(shard_results.len() * k.min(n));
    for (shard_hits, scored) in shard_results {
        stats.docs_scored += scored;
        hits.extend(shard_hits);
    }
    sort_hits(&mut hits);
    hits.truncate(k);
    (hits, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::Document;
    use credence_text::Analyzer;

    fn corpus(n: usize) -> InvertedIndex {
        let bodies = [
            "covid outbreak covid emergency in the city",
            "covid numbers rising across the region",
            "garden flowers bloom in spring",
            "outbreak of joy in the city park",
            "the city council meets to discuss the outbreak",
            "vaccine shipments arrive covid covid",
        ];
        InvertedIndex::build(
            (0..n)
                .map(|i| Document::from_body(bodies[i % bodies.len()]))
                .collect(),
            Analyzer::english(),
        )
    }

    fn assert_bit_identical(a: &[SearchHit], b: &[SearchHit]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.doc, y.doc);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn all_strategies_agree_bit_for_bit() {
        let idx = corpus(40);
        let params = Bm25Params::default();
        for query in [
            "covid outbreak",
            "covid covid city",
            "garden",
            "outbreak city covid vaccine",
        ] {
            let q = idx.analyze_query(query);
            for k in [1, 2, 5, 40, 100] {
                let (reference, _) = search_top_k_exhaustive(&idx, params, &q, k);
                for strategy in [
                    SearchStrategy::Auto,
                    SearchStrategy::Pruned,
                    SearchStrategy::Sharded,
                ] {
                    let opts = TopKOptions {
                        strategy,
                        shards: 3,
                        ..TopKOptions::default()
                    };
                    let (hits, _) = search_top_k_with(&idx, params, &q, k, &opts);
                    assert_bit_identical(&hits, &reference);
                }
            }
        }
    }

    #[test]
    fn pruned_skips_postings_on_selective_queries() {
        // One rare high-idf term plus a ubiquitous one: once the heap fills
        // from the rare list, the common list's bound falls below threshold.
        let mut bodies: Vec<Document> = (0..200)
            .map(|_| Document::from_body("common filler words here"))
            .collect();
        bodies.push(Document::from_body("rare common filler"));
        bodies.push(Document::from_body("rare rare common"));
        let idx = InvertedIndex::build(bodies, Analyzer::english());
        let q = idx.analyze_query("rare common");
        let params = Bm25Params::default();
        let opts = TopKOptions {
            strategy: SearchStrategy::Pruned,
            ..TopKOptions::default()
        };
        let (hits, stats) = search_top_k_with(&idx, params, &q, 2, &opts);
        let (reference, ex_stats) = search_top_k_exhaustive(&idx, params, &q, 2);
        assert_bit_identical(&hits, &reference);
        assert!(stats.docs_pruned > 0, "expected pruning, got {stats:?}");
        assert!(stats.docs_scored < ex_stats.docs_scored);
    }

    #[test]
    fn weighted_search_matches_weighted_brute_force() {
        let idx = corpus(25);
        let params = Bm25Params::default();
        let covid = idx.vocabulary().id("covid").unwrap();
        let citi = idx.vocabulary().id("citi").unwrap();
        let outbreak = idx.vocabulary().id("outbreak").unwrap();
        let terms = vec![(covid, 0.6), (outbreak, 0.3), (citi, 0.1)];
        let brute = |doc: DocId| -> f64 {
            let dl = idx.doc_len(doc);
            terms
                .iter()
                .map(|&(t, w)| {
                    w * bm25_term_weight(params, idx.stats(), t, idx.term_freq(doc, t), dl)
                })
                .sum()
        };
        let mut reference: Vec<SearchHit> = idx
            .doc_ids()
            .map(|d| SearchHit {
                doc: d,
                score: brute(d),
            })
            .filter(|h| h.score > 0.0)
            .collect();
        sort_hits(&mut reference);
        reference.truncate(5);
        for strategy in [
            SearchStrategy::Auto,
            SearchStrategy::Exhaustive,
            SearchStrategy::Pruned,
            SearchStrategy::Sharded,
        ] {
            let opts = TopKOptions {
                strategy,
                shards: 2,
                ..TopKOptions::default()
            };
            let (hits, _) = search_weighted_top_k_with(&idx, params, &terms, 5, &opts);
            assert_bit_identical(&hits, &reference);
        }
    }

    #[test]
    fn empty_inputs_and_k_zero() {
        let idx = corpus(6);
        let params = Bm25Params::default();
        let q = idx.analyze_query("covid");
        let opts = TopKOptions::default();
        assert!(search_top_k_with(&idx, params, &q, 0, &opts).0.is_empty());
        assert!(search_top_k_with(&idx, params, &[], 5, &opts).0.is_empty());
        assert!(search_weighted_top_k_with(&idx, params, &[], 5, &opts)
            .0
            .is_empty());
        let empty = InvertedIndex::build(vec![], Analyzer::english());
        assert!(search_top_k_with(&empty, params, &[7], 5, &opts)
            .0
            .is_empty());
    }

    #[test]
    fn sharded_counts_shards() {
        let idx = corpus(30);
        let q = idx.analyze_query("covid outbreak city");
        let opts = TopKOptions {
            strategy: SearchStrategy::Sharded,
            shards: 4,
            ..TopKOptions::default()
        };
        let (_, stats) = search_top_k_with(&idx, Bm25Params::default(), &q, 3, &opts);
        assert_eq!(stats.strategy, "sharded");
        assert_eq!(stats.shards_used, 4);
        assert_eq!(stats.docs_pruned, 0);
    }

    #[test]
    fn partitioned_topk_merges_to_global_ranking() {
        // Each partition scores only its owned docs; concatenating the
        // per-partition top-ks, re-sorting by the total order, and
        // truncating must reproduce the unpartitioned top-k bit for bit —
        // the invariant the process-level router merge relies on.
        let idx = corpus(60);
        let params = Bm25Params::default();
        let q = idx.analyze_query("covid outbreak city");
        for strategy in [
            SearchStrategy::Auto,
            SearchStrategy::Exhaustive,
            SearchStrategy::Pruned,
            SearchStrategy::Sharded,
        ] {
            for count in 1..=8u32 {
                for k in [1usize, 3, 10, 60] {
                    let (reference, _) = search_top_k_with(
                        &idx,
                        params,
                        &q,
                        k,
                        &TopKOptions {
                            strategy,
                            shards: 2,
                            ..TopKOptions::default()
                        },
                    );
                    let mut merged: Vec<SearchHit> = Vec::new();
                    for i in 0..count {
                        let opts = TopKOptions {
                            strategy,
                            shards: 2,
                            partition: PartitionSpec::new(i, count),
                            ..TopKOptions::default()
                        };
                        let (hits, _) = search_top_k_with(&idx, params, &q, k, &opts);
                        merged.extend(hits);
                    }
                    sort_hits(&mut merged);
                    merged.truncate(k);
                    assert_bit_identical(&merged, &reference);
                }
            }
        }
    }

    #[test]
    fn partition_filter_restricts_scoring() {
        let idx = corpus(60);
        let params = Bm25Params::default();
        let q = idx.analyze_query("covid outbreak");
        let spec = PartitionSpec::new(1, 3).unwrap();
        let opts = TopKOptions {
            strategy: SearchStrategy::Exhaustive,
            partition: Some(spec),
            ..TopKOptions::default()
        };
        let (hits, stats) = search_top_k_with(&idx, params, &q, 60, &opts);
        assert!(hits.iter().all(|h| spec.owns(h.doc)));
        let (_, full) = search_top_k_exhaustive(&idx, params, &q, 60);
        assert!(stats.docs_scored < full.docs_scored);
    }

    #[test]
    fn strategy_parsing_round_trips() {
        for s in [
            SearchStrategy::Auto,
            SearchStrategy::Exhaustive,
            SearchStrategy::Pruned,
            SearchStrategy::Sharded,
        ] {
            assert_eq!(SearchStrategy::parse(s.as_str()), Some(s));
        }
        assert_eq!(
            SearchStrategy::parse("PRUNED"),
            Some(SearchStrategy::Pruned)
        );
        assert_eq!(SearchStrategy::parse("nope"), None);
    }

    #[test]
    fn negative_weights_fall_back_to_exhaustive() {
        let idx = corpus(12);
        let params = Bm25Params::default();
        let covid = idx.vocabulary().id("covid").unwrap();
        let citi = idx.vocabulary().id("citi").unwrap();
        let terms = vec![(covid, 1.0), (citi, -0.5)];
        let (_, stats) = search_weighted_top_k_with(
            &idx,
            params,
            &terms,
            3,
            &TopKOptions {
                strategy: SearchStrategy::Pruned,
                ..TopKOptions::default()
            },
        );
        assert_eq!(stats.strategy, "exhaustive");
    }
}
