//! Pruned exact top-k retrieval.
//!
//! A MaxScore-style term-at-a-time engine, a Block-Max-WAND
//! document-at-a-time engine over the block-compressed postings, and a
//! sharded parallel path (each shard runs Block-Max-WAND over its doc-id
//! range), all **bit-identical** to the exhaustive scan in [`crate::search`]:
//!
//! * Every candidate that survives is scored with the *same* float fold the
//!   exhaustive path uses ([`bm25_score_indexed`] for plain queries, the
//!   slice-order weighted fold for expanded queries), so scores agree to the
//!   last bit.
//! * Top-k selection is over a strict total order (descending score,
//!   ascending [`DocId`]; doc ids are unique), so the selected set and its
//!   sorted order are insertion-order independent.
//! * Pruning bounds therefore only need to be *sound*, never exact: a term's
//!   contribution is bounded via [`bm25_term_upper_bound`] over the
//!   [`TermBound`] statistics frozen at build time, suffix sums are inflated
//!   by [`BOUND_SLACK`] to absorb float-summation non-associativity, and a
//!   list is skipped only when its inflated bound is *strictly* below the
//!   current threshold — a candidate tying the k-th score could still win
//!   its tie-break on doc id, so ties are never pruned.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use credence_text::TermId;

use crate::blocks::{BlockMeta, CompressedPostings};
use crate::doc::DocId;
use crate::index::InvertedIndex;
use crate::partition::PartitionSpec;
use crate::score::{
    bm25_bound_with_idf, bm25_idf, bm25_score_indexed, bm25_term_upper_bound, bm25_term_weight,
    Bm25Params,
};
use crate::search::{sort_hits, SearchHit};

/// Multiplicative slack applied to summed upper bounds.
///
/// Exact scores are left folds in query order; bounds are folds in
/// upper-bound order. Both are within `(n-1)·eps` relative error of the real
/// sum, so inflating the bound by `1e-9 >> 2·n·eps` (for any realistic query
/// length `n`) guarantees `inflated_bound >= exact_score` in floats.
const BOUND_SLACK: f64 = 1.0 + 1e-9;

/// How top-k retrieval traverses the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// Choose among `Pruned`, `BlockMax`, and `Sharded` with the cost
    /// heuristic.
    #[default]
    Auto,
    /// Reference path: gather candidates, score every one serially.
    Exhaustive,
    /// MaxScore-style term-at-a-time pruning.
    Pruned,
    /// Block-Max-WAND: document-at-a-time cursors over the compressed
    /// blocks, with per-block score bounds driving block skips.
    BlockMax,
    /// Block-Max-WAND per doc-id range shard on scoped threads,
    /// deterministically merged.
    Sharded,
}

impl SearchStrategy {
    /// Parse a knob value (`auto` | `exhaustive` | `pruned` | `bmw` |
    /// `sharded`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(Self::Auto),
            "exhaustive" => Some(Self::Exhaustive),
            "pruned" => Some(Self::Pruned),
            "bmw" | "blockmax" | "block-max" => Some(Self::BlockMax),
            "sharded" => Some(Self::Sharded),
            _ => None,
        }
    }

    /// The canonical knob spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Exhaustive => "exhaustive",
            Self::Pruned => "pruned",
            Self::BlockMax => "bmw",
            Self::Sharded => "sharded",
        }
    }
}

/// Knobs for [`search_top_k_with`], mirroring the `eval_*` options pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKOptions {
    /// Traversal strategy.
    pub strategy: SearchStrategy,
    /// Shard count for the sharded path; `0` means one per available core.
    pub shards: usize,
    /// Candidate-postings volume at which a query counts as *dense* — below
    /// this, `Auto` always prunes (parallelism cannot pay for itself).
    pub dense_postings: usize,
    /// Restrict scoring to one doc-hash partition (cluster fanout). Scores
    /// of surviving documents are untouched — collection statistics stay
    /// global — so per-partition top-ks merge bit-identically into the
    /// unpartitioned ranking. `None` scores the whole corpus.
    pub partition: Option<PartitionSpec>,
}

impl Default for TopKOptions {
    fn default() -> Self {
        Self {
            strategy: SearchStrategy::Auto,
            shards: 0,
            dense_postings: 8192,
            partition: None,
        }
    }
}

/// Counters describing how a retrieval was executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKStats {
    /// Documents actually scored with the exact fold.
    pub docs_scored: u64,
    /// Posting entries skipped by pruning. An upper bound on pruned *unique*
    /// documents: a document is counted once per skipped list it appears in.
    pub docs_pruned: u64,
    /// Shards used by the parallel path (`0` for serial paths).
    pub shards_used: u64,
    /// Posting blocks decoded by the block-traversal paths (`bmw`,
    /// `sharded`); `0` for paths reading the materialised view.
    pub blocks_decoded: u64,
    /// Posting blocks skipped undecoded via their block-max metadata.
    pub blocks_skipped: u64,
    /// Which path ran (`"pruned"`, `"bmw"`, `"exhaustive"`, `"sharded"`,
    /// `"empty"`).
    pub strategy: &'static str,
}

impl TopKStats {
    /// A zeroed counter set labelled with the path that ran.
    pub fn new(strategy: &'static str) -> Self {
        Self {
            docs_scored: 0,
            docs_pruned: 0,
            shards_used: 0,
            blocks_decoded: 0,
            blocks_skipped: 0,
            strategy,
        }
    }
}

/// Min-heap entry: the *worst* hit under (score desc, doc asc) pops first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry(SearchHit);

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .score
            .partial_cmp(&self.0.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.0.doc.cmp(&other.0.doc))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded top-k collector over the strict (score desc, doc asc) order.
struct TopKHeap {
    heap: BinaryHeap<HeapEntry>,
    k: usize,
}

impl TopKHeap {
    fn new(k: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(k + 1),
            k,
        }
    }

    /// Offer a scored hit; returns nothing, keeps the best `k`.
    fn offer(&mut self, hit: SearchHit) {
        self.heap.push(HeapEntry(hit));
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    /// The current k-th best score, if the heap is full.
    fn threshold(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|e| e.0.score)
        } else {
            None
        }
    }

    fn into_sorted(self) -> Vec<SearchHit> {
        let mut hits: Vec<SearchHit> = self.heap.into_iter().map(|e| e.0).collect();
        sort_hits(&mut hits);
        hits
    }
}

/// Rank the corpus for a bag of analysed query term ids and return the top
/// `k` hits, best first, with execution counters. Bit-identical to the
/// exhaustive reference regardless of the strategy chosen.
pub fn search_top_k_with(
    index: &InvertedIndex,
    params: Bm25Params,
    query: &[TermId],
    k: usize,
    opts: &TopKOptions,
) -> (Vec<SearchHit>, TopKStats) {
    if k == 0 || query.is_empty() {
        return (Vec::new(), TopKStats::new("empty"));
    }
    let uniq = unique_weighted(query.iter().map(|&t| (t, 1.0)), index);
    let exact = |doc: DocId| bm25_score_indexed(params, index, query, doc);
    dispatch(index, params, &uniq, k, &exact, opts)
}

/// Weighted-query variant for expanded (RM3-style) queries: exact scores are
/// the slice-order fold `sum(w * bm25_term_weight(t, tf, doc_len))`, matching
/// `Rm3Ranker`'s scoring bit for bit. Weights must be non-negative for the
/// pruned path; any negative weight forces the (still exact) exhaustive path.
pub fn search_weighted_top_k_with(
    index: &InvertedIndex,
    params: Bm25Params,
    terms: &[(TermId, f64)],
    k: usize,
    opts: &TopKOptions,
) -> (Vec<SearchHit>, TopKStats) {
    if k == 0 || terms.is_empty() {
        return (Vec::new(), TopKStats::new("empty"));
    }
    let uniq = unique_weighted(terms.iter().copied(), index);
    let stats = index.stats();
    let exact = |doc: DocId| {
        let doc_len = index.doc_len(doc);
        terms
            .iter()
            .map(|&(t, w)| w * bm25_term_weight(params, stats, t, index.term_freq(doc, t), doc_len))
            .sum()
    };
    if terms.iter().any(|&(_, w)| w < 0.0) {
        return exhaustive_core(index, &uniq, k, &exact, opts.partition);
    }
    dispatch(index, params, &uniq, k, &exact, opts)
}

/// The exhaustive reference scan (candidate gather + score everything),
/// exposed for parity tests and the `exhaustive` strategy knob.
pub fn search_top_k_exhaustive(
    index: &InvertedIndex,
    params: Bm25Params,
    query: &[TermId],
    k: usize,
) -> (Vec<SearchHit>, TopKStats) {
    if k == 0 || query.is_empty() {
        return (Vec::new(), TopKStats::new("empty"));
    }
    let uniq = unique_weighted(query.iter().map(|&t| (t, 1.0)), index);
    let exact = |doc: DocId| bm25_score_indexed(params, index, query, doc);
    exhaustive_core(index, &uniq, k, &exact, None)
}

/// Collapse a term sequence into unique `(term, summed weight)` pairs sorted
/// by term id, dropping terms with empty postings (they cannot match).
fn unique_weighted(
    terms: impl Iterator<Item = (TermId, f64)>,
    index: &InvertedIndex,
) -> Vec<(TermId, f64)> {
    let mut v: Vec<(TermId, f64)> = terms.filter(|&(t, _)| index.postings_len(t) > 0).collect();
    v.sort_unstable_by_key(|&(t, _)| t);
    v.dedup_by(|a, b| {
        if a.0 == b.0 {
            b.1 += a.1;
            true
        } else {
            false
        }
    });
    v
}

/// Per-unique-term bound contributions `(term, weight * upper_bound)`,
/// sorted by contribution descending (term id ascending on ties, for
/// determinism). `None` when any contribution is non-finite — degenerate
/// BM25 parameters — in which case callers fall back to the exhaustive path.
fn contributions(
    index: &InvertedIndex,
    params: Bm25Params,
    uniq: &[(TermId, f64)],
) -> Option<Vec<(TermId, f64)>> {
    let mut out = Vec::with_capacity(uniq.len());
    for &(t, w) in uniq {
        let ub = w * bm25_term_upper_bound(params, index.stats(), t, index.term_bound(t));
        if !ub.is_finite() {
            return None;
        }
        out.push((t, ub));
    }
    out.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    Some(out)
}

/// Route a prepared query to a concrete path per the options.
fn dispatch<F: Fn(DocId) -> f64 + Sync>(
    index: &InvertedIndex,
    params: Bm25Params,
    uniq: &[(TermId, f64)],
    k: usize,
    exact: &F,
    opts: &TopKOptions,
) -> (Vec<SearchHit>, TopKStats) {
    let part = opts.partition;
    match opts.strategy {
        SearchStrategy::Exhaustive => exhaustive_core(index, uniq, k, exact, part),
        SearchStrategy::BlockMax => match prepare_terms(index, params, uniq) {
            Some(terms) => bmw_core(index, params, &terms, k, exact, part, (0, u64::MAX)),
            None => exhaustive_core(index, uniq, k, exact, part),
        },
        SearchStrategy::Sharded => match prepare_terms(index, params, uniq) {
            Some(terms) => sharded_core(index, params, &terms, k, exact, opts.shards, part),
            None => exhaustive_core(index, uniq, k, exact, part),
        },
        SearchStrategy::Pruned => match contributions(index, params, uniq) {
            Some(contribs) => pruned_core(index, &contribs, k, exact, part),
            None => exhaustive_core(index, uniq, k, exact, part),
        },
        SearchStrategy::Auto => {
            let Some(contribs) = contributions(index, params, uniq) else {
                return exhaustive_core(index, uniq, k, exact, part);
            };
            let total: usize = uniq.iter().map(|&(t, _)| index.postings_len(t)).sum();
            if total >= opts.dense_postings && !pruning_favourable(index, &contribs) {
                // Dense query with balanced bounds: term-at-a-time MaxScore
                // cannot skip lists, but Block-Max-WAND still skips blocks.
                // Spread the work over threads only when the machine has
                // more than one core — a single-core shard split is pure
                // overhead (the embarrassment the PR-4 bench exposed).
                let Some(terms) = prepare_terms(index, params, uniq) else {
                    return exhaustive_core(index, uniq, k, exact, part);
                };
                let cores = available_cores();
                let shards = if opts.shards == 0 { cores } else { opts.shards };
                if shards > 1 && cores > 1 {
                    sharded_core(index, params, &terms, k, exact, opts.shards, part)
                } else {
                    bmw_core(index, params, &terms, k, exact, part, (0, u64::MAX))
                }
            } else {
                pruned_core(index, &contribs, k, exact, part)
            }
        }
    }
}

/// Whether `doc` survives the optional partition filter.
#[inline]
fn in_partition(part: Option<PartitionSpec>, doc: DocId) -> bool {
    part.map_or(true, |p| p.owns(doc))
}

/// `available_parallelism`, resolved once per process. The std call walks
/// the cgroup hierarchy on Linux (tens of microseconds) — far too slow to
/// sit on the per-query dispatch path.
fn available_cores() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
}

/// Cost heuristic for `Auto` on dense queries: pruning pays off when most of
/// the candidate postings sit in lists whose *combined* (suffix) bound is
/// below the strongest single term's — those are the lists MaxScore can skip
/// once the heap fills with documents from the strong list. With balanced
/// bounds across long lists nothing is skippable and sharding wins.
fn pruning_favourable(index: &InvertedIndex, contribs: &[(TermId, f64)]) -> bool {
    let Some(&(_, best)) = contribs.first() else {
        return true;
    };
    let mut suffix = 0.0;
    let mut prunable = 0usize;
    let mut total = 0usize;
    for (i, &(t, c)) in contribs.iter().enumerate().rev() {
        suffix += c;
        let len = index.postings_len(t);
        total += len;
        if i > 0 && suffix < best {
            prunable += len;
        }
    }
    2 * prunable >= total
}

/// Score every candidate (union of postings) serially. Candidates are
/// collected by sort+dedup on a plain `Vec` — no hashing on the hot path.
fn exhaustive_core<F: Fn(DocId) -> f64>(
    index: &InvertedIndex,
    uniq: &[(TermId, f64)],
    k: usize,
    exact: &F,
    part: Option<PartitionSpec>,
) -> (Vec<SearchHit>, TopKStats) {
    let mut stats = TopKStats::new("exhaustive");
    let total: usize = uniq.iter().map(|&(t, _)| index.postings_len(t)).sum();
    let mut candidates: Vec<DocId> = Vec::with_capacity(total);
    for &(t, _) in uniq {
        candidates.extend(index.postings(t).iter().map(|p| p.doc));
    }
    candidates.sort_unstable();
    candidates.dedup();
    let mut top = TopKHeap::new(k);
    for doc in candidates {
        if !in_partition(part, doc) {
            continue;
        }
        let score = exact(doc);
        stats.docs_scored += 1;
        if score > 0.0 {
            top.offer(SearchHit { doc, score });
        }
    }
    (top.into_sorted(), stats)
}

/// MaxScore-style term-at-a-time search. `contribs` must be sorted by bound
/// contribution descending. Exact parity with the exhaustive scan follows
/// from (a) identical exact scoring of every surviving candidate, (b) the
/// strict total order making top-k selection insertion-order independent,
/// and (c) pruning only on `inflated_bound < threshold` — strictly below —
/// so no document that could enter (or tie into) the top-k is ever skipped.
/// A partition filter drops whole documents before scoring, which only
/// lowers achievable scores — bound soundness is unaffected.
fn pruned_core<F: Fn(DocId) -> f64>(
    index: &InvertedIndex,
    contribs: &[(TermId, f64)],
    k: usize,
    exact: &F,
    part: Option<PartitionSpec>,
) -> (Vec<SearchHit>, TopKStats) {
    let mut stats = TopKStats::new("pruned");
    let n = contribs.len();
    // Inflated suffix bounds: suffix[i] >= exact score of any document whose
    // query terms all come from lists i.., in float arithmetic.
    let mut suffix = vec![0.0f64; n + 1];
    for i in (0..n).rev() {
        suffix[i] = (suffix[i + 1] + contribs[i].1) * BOUND_SLACK;
    }
    let words = index.num_docs().div_ceil(64);
    let mut seen = vec![0u64; words];
    let mut top = TopKHeap::new(k);
    for (i, &(t, _)) in contribs.iter().enumerate() {
        let bound = suffix[i];
        let postings = index.postings(t);
        // A document first seen in list i (or later) scores at most
        // suffix[i]; once that is strictly below the threshold, no unseen
        // document anywhere in lists i.. can enter the top-k or tie into it.
        if top.threshold().is_some_and(|th| bound < th) {
            stats.docs_pruned += contribs[i..]
                .iter()
                .map(|&(t, _)| index.postings_len(t) as u64)
                .sum::<u64>();
            break;
        }
        for (pi, p) in postings.iter().enumerate() {
            if top.threshold().is_some_and(|th| bound < th) {
                // The threshold rose mid-list; the rest of this list and all
                // later lists are bounded by suffix[i] too.
                stats.docs_pruned += (postings.len() - pi) as u64;
                stats.docs_pruned += contribs[i + 1..]
                    .iter()
                    .map(|&(t, _)| index.postings_len(t) as u64)
                    .sum::<u64>();
                return (top.into_sorted(), stats);
            }
            let word = p.doc.index() / 64;
            let bit = 1u64 << (p.doc.index() % 64);
            if seen[word] & bit != 0 {
                continue;
            }
            seen[word] |= bit;
            if !in_partition(part, p.doc) {
                continue;
            }
            let score = exact(p.doc);
            stats.docs_scored += 1;
            if score > 0.0 {
                top.offer(SearchHit { doc: p.doc, score });
            }
        }
    }
    (top.into_sorted(), stats)
}

/// One query term, prepared for Block-Max-WAND: its summed weight, its
/// weighted global upper bound, and the precomputed idf the per-block
/// bounds reuse.
struct PreparedTerm {
    term: TermId,
    weight: f64,
    ub: f64,
    idf: f64,
}

/// Prepare `uniq` for the block-max paths; `None` when any global bound is
/// non-finite (degenerate BM25 parameters — callers fall back to the
/// exhaustive path, mirroring [`contributions`]).
fn prepare_terms(
    index: &InvertedIndex,
    params: Bm25Params,
    uniq: &[(TermId, f64)],
) -> Option<Vec<PreparedTerm>> {
    let stats = index.stats();
    let mut out = Vec::with_capacity(uniq.len());
    for &(t, w) in uniq {
        let ub = w * bm25_term_upper_bound(params, stats, t, index.term_bound(t));
        if !ub.is_finite() {
            return None;
        }
        out.push(PreparedTerm {
            term: t,
            weight: w,
            ub,
            idf: bm25_idf(stats.num_docs, stats.df(t)),
        });
    }
    Some(out)
}

/// Exhausted-cursor sentinel: sorts after every real document id.
const CURSOR_DONE: u64 = u64::MAX;

/// A document-at-a-time cursor over one term's compressed blocks.
///
/// Only the current block is ever decoded (doc ids only — term frequencies
/// are not needed, the exact scorer reads the forward index). Skips consult
/// the block metadata alone.
struct Cursor<'a> {
    term: TermId,
    /// Weighted global upper bound (finite, dominates any posting).
    ub: f64,
    weight: f64,
    idf: f64,
    list: &'a CompressedPostings,
    /// Current block (valid while `cur != CURSOR_DONE`).
    block: usize,
    /// Position within the decoded block.
    pos: usize,
    /// Decoded doc ids of `block`.
    docs: Vec<u32>,
    /// Current doc id, [`CURSOR_DONE`] when exhausted.
    cur: u64,
    /// Docs `>= limit` count as exhausted (shard range restriction).
    limit: u64,
}

impl<'a> Cursor<'a> {
    /// Position a cursor at the first doc `>= lo` (range-skipped entries are
    /// not counted as pruned — they belong to other shards).
    fn new(
        info: &PreparedTerm,
        list: &'a CompressedPostings,
        lo: u64,
        limit: u64,
        stats: &mut TopKStats,
    ) -> Self {
        let mut c = Self {
            term: info.term,
            ub: info.ub,
            weight: info.weight,
            idf: info.idf,
            list,
            block: 0,
            pos: 0,
            docs: Vec::new(),
            cur: CURSOR_DONE,
            limit,
        };
        let blocks = list.blocks();
        c.block = blocks.partition_point(|m| (m.last_doc as u64) < lo);
        if c.block < blocks.len() {
            c.decode_current(stats);
            c.pos = c.docs.partition_point(|&x| (x as u64) < lo);
            c.cur = c.docs[c.pos] as u64;
            c.clamp();
        }
        c
    }

    fn decode_current(&mut self, stats: &mut TopKStats) {
        self.list.decode_block_docs(self.block, &mut self.docs);
        stats.blocks_decoded += 1;
    }

    /// Apply the shard-range limit to the current position.
    fn clamp(&mut self) {
        if self.cur >= self.limit {
            self.cur = CURSOR_DONE;
        }
    }

    /// Global posting position (list length when exhausted).
    fn gpos(&self) -> u64 {
        if self.cur == CURSOR_DONE {
            self.list.len() as u64
        } else {
            self.list.blocks()[self.block].start as u64 + self.pos as u64
        }
    }

    /// Step to the next posting. `cur` must not be [`CURSOR_DONE`].
    fn advance(&mut self, stats: &mut TopKStats) {
        self.pos += 1;
        if self.pos >= self.docs.len() {
            self.block += 1;
            if self.block >= self.list.blocks().len() {
                self.cur = CURSOR_DONE;
                return;
            }
            self.decode_current(stats);
            self.pos = 0;
        }
        self.cur = self.docs[self.pos] as u64;
        self.clamp();
    }

    /// Advance to the first posting with doc `>= d`, skipping whole blocks
    /// via their metadata. Entries jumped over are counted as pruned.
    fn next_geq(&mut self, d: u64, stats: &mut TopKStats) {
        if self.cur == CURSOR_DONE || self.cur >= d {
            return;
        }
        let before = self.gpos();
        let blocks = self.list.blocks();
        if (blocks[self.block].last_doc as u64) < d {
            let jump = blocks[self.block..].partition_point(|m| (m.last_doc as u64) < d);
            stats.blocks_skipped += jump as u64;
            self.block += jump;
            if self.block >= blocks.len() {
                self.cur = CURSOR_DONE;
                stats.docs_pruned += self.list.len() as u64 - before;
                return;
            }
            self.decode_current(stats);
            self.pos = 0;
        }
        // The current block's last_doc is >= d, so the search lands in it.
        self.pos = self.docs.partition_point(|&x| (x as u64) < d);
        self.cur = self.docs[self.pos] as u64;
        self.clamp();
        stats.docs_pruned += self.gpos() - before;
    }

    /// The first block from the current one that can contain a doc `>= d`,
    /// without moving or decoding anything.
    fn shallow_block(&self, d: u64) -> Option<&'a BlockMeta> {
        let blocks = self.list.blocks();
        let rel = blocks[self.block..].partition_point(|m| (m.last_doc as u64) < d);
        blocks.get(self.block + rel)
    }

    /// Weighted block-max score bound for `m`.
    fn block_bound(&self, params: Bm25Params, m: &BlockMeta) -> f64 {
        self.weight * bm25_bound_with_idf(params, self.idf, m.max_tf, m.min_norm_len)
    }
}

/// Block-Max-WAND document-at-a-time search over the compressed blocks.
///
/// Exact parity with the exhaustive scan follows from the same three facts
/// as [`pruned_core`]: surviving candidates are scored with the identical
/// exact fold, top-k selection is over the strict total order, and a
/// document is skipped only when an *inflated* upper bound on its score —
/// here the per-step-slack fold of the pivot prefix's global bounds, or of
/// the block-max bounds of every list that can still contribute to it
/// (the prefix plus any later cursor already on the pivot document) — is
/// strictly below the current threshold, so no document that could enter
/// or tie into the top-k is ever passed over.
///
/// Before the cursor loop the heap is primed from the strongest list (the
/// docs MaxScore would score first): until the heap is full the pivot
/// cannot skip anything, so seeding the threshold with high-bound documents
/// up front unlocks skipping orders of magnitude earlier on selective
/// queries. Primed documents are remembered in a bitset so the main loop
/// never scores a document twice.
fn bmw_core<F: Fn(DocId) -> f64>(
    index: &InvertedIndex,
    params: Bm25Params,
    terms: &[PreparedTerm],
    k: usize,
    exact: &F,
    part: Option<PartitionSpec>,
    range: (u64, u64),
) -> (Vec<SearchHit>, TopKStats) {
    let mut stats = TopKStats::new("bmw");
    let (lo, limit) = range;
    let mut cursors: Vec<Cursor> = terms
        .iter()
        .filter_map(|info| {
            index
                .compressed_postings(info.term)
                .map(|list| Cursor::new(info, list, lo, limit, &mut stats))
        })
        .collect();
    let words = index.num_docs().div_ceil(64);
    let mut seen = vec![0u64; words];
    let mut top = TopKHeap::new(k);

    // Prime the heap from the strongest list.
    if let Some(s) = (0..cursors.len()).max_by(|&a, &b| {
        cursors[a]
            .ub
            .partial_cmp(&cursors[b].ub)
            .unwrap_or(Ordering::Equal)
            .then_with(|| cursors[b].term.cmp(&cursors[a].term))
    }) {
        let c = &mut cursors[s];
        while c.cur != CURSOR_DONE && top.threshold().is_none() {
            let doc = DocId(c.cur as u32);
            seen[doc.index() / 64] |= 1u64 << (doc.index() % 64);
            if in_partition(part, doc) {
                let score = exact(doc);
                stats.docs_scored += 1;
                if score > 0.0 {
                    top.offer(SearchHit { doc, score });
                }
            }
            c.advance(&mut stats);
        }
    }

    loop {
        cursors.sort_unstable_by_key(|c| (c.cur, c.term));
        if cursors.is_empty() || cursors[0].cur == CURSOR_DONE {
            break;
        }
        // Pivot: the first cursor at which the inflated prefix of global
        // bounds reaches the threshold. Documents confined to lists before
        // the pivot are bounded strictly below the threshold and skipped.
        let pivot = match top.threshold() {
            None => 0,
            Some(th) => {
                let mut acc = 0.0f64;
                let mut pivot = None;
                for (i, c) in cursors.iter().enumerate() {
                    if c.cur == CURSOR_DONE {
                        break;
                    }
                    acc = (acc + c.ub) * BOUND_SLACK;
                    if acc >= th {
                        pivot = Some(i);
                        break;
                    }
                }
                match pivot {
                    Some(p) => p,
                    // Even the sum of every remaining bound is strictly
                    // below the threshold: nothing left can enter the top-k.
                    None => {
                        for c in &cursors {
                            let before = c.gpos();
                            stats.docs_pruned += c.list.len() as u64 - before;
                            if c.cur != CURSOR_DONE {
                                stats.blocks_skipped +=
                                    (c.list.blocks().len() - c.block - 1) as u64;
                            }
                        }
                        break;
                    }
                }
            }
        };
        // Endgame — the MaxScore essential-list regime. When the pivot is
        // the *last* live cursor, pivot selection has already proven that
        // the other lists' global bounds, slack-folded together, sit
        // strictly below the threshold: no document outside the pivot list
        // can enter the top-k any more (the threshold only rises). Stream
        // the pivot list alone — skipping whole blocks whose block-max
        // bound plus the parked sum stays below the threshold — and never
        // touch the parked cursors again. This is what makes selective
        // queries (one strong term over weak ubiquitous ones) as cheap as
        // the flat MaxScore scan: the dense lists are parked undecoded.
        let live = cursors.partition_point(|c| c.cur != CURSOR_DONE);
        if pivot + 1 == live {
            let parked = cursors[..pivot]
                .iter()
                .fold(0.0f64, |acc, c| (acc + c.ub) * BOUND_SLACK);
            let (rest, tail) = cursors.split_at_mut(pivot);
            let c = &mut tail[0];
            while c.cur != CURSOR_DONE {
                let m = c.list.blocks()[c.block];
                if let Some(th) = top.threshold() {
                    if (parked + c.block_bound(params, &m)) * BOUND_SLACK < th {
                        c.next_geq(m.last_doc as u64 + 1, &mut stats);
                        continue;
                    }
                }
                let doc = DocId(c.cur as u32);
                let word = doc.index() / 64;
                let bit = 1u64 << (doc.index() % 64);
                if seen[word] & bit == 0 {
                    seen[word] |= bit;
                    if in_partition(part, doc) {
                        let score = exact(doc);
                        stats.docs_scored += 1;
                        if score > 0.0 {
                            top.offer(SearchHit { doc, score });
                        }
                    }
                }
                c.advance(&mut stats);
            }
            for o in rest.iter() {
                stats.docs_pruned += o.list.len() as u64 - o.gpos();
                if o.cur != CURSOR_DONE {
                    stats.blocks_skipped += (o.list.blocks().len() - o.block - 1) as u64;
                }
            }
            break;
        }

        let d = cursors[pivot].cur;
        // Every list that can still contribute to d: the prefix up to the
        // pivot, plus any later cursor already sitting on d (the exact
        // scorer folds the *full* document, so their contribution counts
        // toward d's score even though their global bounds sit past the
        // pivot's prefix sum). Cursors are sorted, so these are contiguous.
        let mut covered = pivot + 1;
        while covered < cursors.len() && cursors[covered].cur == d {
            covered += 1;
        }

        // Block-max refinement: bound the pivot candidate by the blocks
        // that actually cover it. Only meaningful once the heap is full.
        if let Some(th) = top.threshold() {
            let mut acc = 0.0f64;
            for c in &cursors[..covered] {
                if let Some(m) = c.shallow_block(d) {
                    acc = (acc + c.block_bound(params, m)) * BOUND_SLACK;
                }
            }
            if acc < th {
                // The covering blocks cannot beat the threshold anywhere up
                // to their shared boundary: jump past it.
                let mut next_d = CURSOR_DONE;
                for c in &cursors[..covered] {
                    if let Some(m) = c.shallow_block(d) {
                        next_d = next_d.min(m.last_doc as u64 + 1);
                    }
                }
                if covered < cursors.len() {
                    next_d = next_d.min(cursors[covered].cur);
                }
                let next_d = next_d.max(d + 1);
                for c in &mut cursors[..covered] {
                    c.next_geq(next_d, &mut stats);
                }
                continue;
            }
        }

        if cursors[0].cur == d {
            // Every cursor before the pivot sits on d: evaluate it.
            let doc = DocId(d as u32);
            let word = doc.index() / 64;
            let bit = 1u64 << (doc.index() % 64);
            if seen[word] & bit == 0 {
                seen[word] |= bit;
                if in_partition(part, doc) {
                    let score = exact(doc);
                    stats.docs_scored += 1;
                    if score > 0.0 {
                        top.offer(SearchHit { doc, score });
                    }
                }
            }
            for c in &mut cursors {
                if c.cur == d {
                    c.advance(&mut stats);
                }
            }
        } else {
            // Align the earlier cursors onto the pivot document.
            for c in &mut cursors[..pivot] {
                c.next_geq(d, &mut stats);
            }
        }
    }
    (top.into_sorted(), stats)
}

/// Parallel path for dense queries: contiguous doc-id range shards, each
/// traversed with Block-Max-WAND on a scoped thread, local top-k per shard,
/// deterministic merge (concatenate, sort by the total order, truncate).
/// Exact because the global top-k is contained in the union of per-shard
/// top-ks, and each shard is itself exact over its range.
fn sharded_core<F: Fn(DocId) -> f64 + Sync>(
    index: &InvertedIndex,
    params: Bm25Params,
    terms: &[PreparedTerm],
    k: usize,
    exact: &F,
    shards: usize,
    part: Option<PartitionSpec>,
) -> (Vec<SearchHit>, TopKStats) {
    let n = index.num_docs();
    let mut stats = TopKStats::new("sharded");
    if n == 0 {
        return (Vec::new(), stats);
    }
    let requested = if shards == 0 {
        available_cores()
    } else {
        shards
    };
    let shards = requested.clamp(1, n);
    let chunk = n.div_ceil(shards);
    let ranges: Vec<(u64, u64)> = (0..shards)
        .map(|i| ((i * chunk) as u64, ((i + 1) * chunk).min(n) as u64))
        .filter(|&(lo, hi)| lo < hi)
        .collect();
    stats.shards_used = ranges.len() as u64;
    // A lone shard gains nothing from a scoped thread — the spawn/join
    // round-trip would dominate the query on small corpora (and is the
    // whole cost on a single-core host, where auto resolves to one shard).
    let shard_results: Vec<(Vec<SearchHit>, TopKStats)> = if ranges.len() == 1 {
        vec![bmw_core(index, params, terms, k, exact, part, ranges[0])]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|&range| {
                    s.spawn(move || bmw_core(index, params, terms, k, exact, part, range))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };
    let mut hits: Vec<SearchHit> = Vec::with_capacity(shard_results.len() * k.min(n));
    for (shard_hits, shard_stats) in shard_results {
        stats.docs_scored += shard_stats.docs_scored;
        stats.docs_pruned += shard_stats.docs_pruned;
        stats.blocks_decoded += shard_stats.blocks_decoded;
        stats.blocks_skipped += shard_stats.blocks_skipped;
        hits.extend(shard_hits);
    }
    sort_hits(&mut hits);
    hits.truncate(k);
    (hits, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::Document;
    use credence_text::Analyzer;

    fn corpus(n: usize) -> InvertedIndex {
        let bodies = [
            "covid outbreak covid emergency in the city",
            "covid numbers rising across the region",
            "garden flowers bloom in spring",
            "outbreak of joy in the city park",
            "the city council meets to discuss the outbreak",
            "vaccine shipments arrive covid covid",
        ];
        InvertedIndex::build(
            (0..n)
                .map(|i| Document::from_body(bodies[i % bodies.len()]))
                .collect(),
            Analyzer::english(),
        )
    }

    fn assert_bit_identical(a: &[SearchHit], b: &[SearchHit]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.doc, y.doc);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn all_strategies_agree_bit_for_bit() {
        let idx = corpus(40);
        let params = Bm25Params::default();
        for query in [
            "covid outbreak",
            "covid covid city",
            "garden",
            "outbreak city covid vaccine",
        ] {
            let q = idx.analyze_query(query);
            for k in [1, 2, 5, 40, 100] {
                let (reference, _) = search_top_k_exhaustive(&idx, params, &q, k);
                for strategy in [
                    SearchStrategy::Auto,
                    SearchStrategy::Pruned,
                    SearchStrategy::BlockMax,
                    SearchStrategy::Sharded,
                ] {
                    let opts = TopKOptions {
                        strategy,
                        shards: 3,
                        ..TopKOptions::default()
                    };
                    let (hits, _) = search_top_k_with(&idx, params, &q, k, &opts);
                    assert_bit_identical(&hits, &reference);
                }
            }
        }
    }

    #[test]
    fn pruned_skips_postings_on_selective_queries() {
        // One rare high-idf term plus a ubiquitous one: once the heap fills
        // from the rare list, the common list's bound falls below threshold.
        let mut bodies: Vec<Document> = (0..200)
            .map(|_| Document::from_body("common filler words here"))
            .collect();
        bodies.push(Document::from_body("rare common filler"));
        bodies.push(Document::from_body("rare rare common"));
        let idx = InvertedIndex::build(bodies, Analyzer::english());
        let q = idx.analyze_query("rare common");
        let params = Bm25Params::default();
        let opts = TopKOptions {
            strategy: SearchStrategy::Pruned,
            ..TopKOptions::default()
        };
        let (hits, stats) = search_top_k_with(&idx, params, &q, 2, &opts);
        let (reference, ex_stats) = search_top_k_exhaustive(&idx, params, &q, 2);
        assert_bit_identical(&hits, &reference);
        assert!(stats.docs_pruned > 0, "expected pruning, got {stats:?}");
        assert!(stats.docs_scored < ex_stats.docs_scored);
    }

    #[test]
    fn weighted_search_matches_weighted_brute_force() {
        let idx = corpus(25);
        let params = Bm25Params::default();
        let covid = idx.vocabulary().id("covid").unwrap();
        let citi = idx.vocabulary().id("citi").unwrap();
        let outbreak = idx.vocabulary().id("outbreak").unwrap();
        let terms = vec![(covid, 0.6), (outbreak, 0.3), (citi, 0.1)];
        let brute = |doc: DocId| -> f64 {
            let dl = idx.doc_len(doc);
            terms
                .iter()
                .map(|&(t, w)| {
                    w * bm25_term_weight(params, idx.stats(), t, idx.term_freq(doc, t), dl)
                })
                .sum()
        };
        let mut reference: Vec<SearchHit> = idx
            .doc_ids()
            .map(|d| SearchHit {
                doc: d,
                score: brute(d),
            })
            .filter(|h| h.score > 0.0)
            .collect();
        sort_hits(&mut reference);
        reference.truncate(5);
        for strategy in [
            SearchStrategy::Auto,
            SearchStrategy::Exhaustive,
            SearchStrategy::Pruned,
            SearchStrategy::BlockMax,
            SearchStrategy::Sharded,
        ] {
            let opts = TopKOptions {
                strategy,
                shards: 2,
                ..TopKOptions::default()
            };
            let (hits, _) = search_weighted_top_k_with(&idx, params, &terms, 5, &opts);
            assert_bit_identical(&hits, &reference);
        }
    }

    #[test]
    fn empty_inputs_and_k_zero() {
        let idx = corpus(6);
        let params = Bm25Params::default();
        let q = idx.analyze_query("covid");
        let opts = TopKOptions::default();
        assert!(search_top_k_with(&idx, params, &q, 0, &opts).0.is_empty());
        assert!(search_top_k_with(&idx, params, &[], 5, &opts).0.is_empty());
        assert!(search_weighted_top_k_with(&idx, params, &[], 5, &opts)
            .0
            .is_empty());
        let empty = InvertedIndex::build(vec![], Analyzer::english());
        assert!(search_top_k_with(&empty, params, &[7], 5, &opts)
            .0
            .is_empty());
    }

    #[test]
    fn sharded_counts_shards() {
        let idx = corpus(30);
        let q = idx.analyze_query("covid outbreak city");
        let opts = TopKOptions {
            strategy: SearchStrategy::Sharded,
            shards: 4,
            ..TopKOptions::default()
        };
        let (_, stats) = search_top_k_with(&idx, Bm25Params::default(), &q, 3, &opts);
        assert_eq!(stats.strategy, "sharded");
        assert_eq!(stats.shards_used, 4);
    }

    #[test]
    fn bmw_skips_blocks_on_selective_queries() {
        // Same shape as the pruned skip test, but large enough that the
        // common term's postings span many blocks: once the heap fills from
        // the rare list, whole blocks of the common list fall below the
        // threshold and are skipped without being decoded.
        let mut bodies: Vec<Document> = (0..2000)
            .map(|_| Document::from_body("common filler words here"))
            .collect();
        bodies.push(Document::from_body("rare common filler"));
        bodies.push(Document::from_body("rare rare common"));
        let idx = InvertedIndex::build(bodies, Analyzer::english());
        let q = idx.analyze_query("rare common");
        let params = Bm25Params::default();
        let opts = TopKOptions {
            strategy: SearchStrategy::BlockMax,
            ..TopKOptions::default()
        };
        let (hits, stats) = search_top_k_with(&idx, params, &q, 2, &opts);
        let (reference, ex_stats) = search_top_k_exhaustive(&idx, params, &q, 2);
        assert_bit_identical(&hits, &reference);
        assert_eq!(stats.strategy, "bmw");
        assert!(
            stats.blocks_skipped > 0,
            "expected block skips, got {stats:?}"
        );
        assert!(stats.docs_pruned > 0, "expected pruning, got {stats:?}");
        assert!(stats.docs_scored < ex_stats.docs_scored);
    }

    #[test]
    fn partitioned_topk_merges_to_global_ranking() {
        // Each partition scores only its owned docs; concatenating the
        // per-partition top-ks, re-sorting by the total order, and
        // truncating must reproduce the unpartitioned top-k bit for bit —
        // the invariant the process-level router merge relies on.
        let idx = corpus(60);
        let params = Bm25Params::default();
        let q = idx.analyze_query("covid outbreak city");
        for strategy in [
            SearchStrategy::Auto,
            SearchStrategy::Exhaustive,
            SearchStrategy::Pruned,
            SearchStrategy::BlockMax,
            SearchStrategy::Sharded,
        ] {
            for count in 1..=8u32 {
                for k in [1usize, 3, 10, 60] {
                    let (reference, _) = search_top_k_with(
                        &idx,
                        params,
                        &q,
                        k,
                        &TopKOptions {
                            strategy,
                            shards: 2,
                            ..TopKOptions::default()
                        },
                    );
                    let mut merged: Vec<SearchHit> = Vec::new();
                    for i in 0..count {
                        let opts = TopKOptions {
                            strategy,
                            shards: 2,
                            partition: PartitionSpec::new(i, count),
                            ..TopKOptions::default()
                        };
                        let (hits, _) = search_top_k_with(&idx, params, &q, k, &opts);
                        merged.extend(hits);
                    }
                    sort_hits(&mut merged);
                    merged.truncate(k);
                    assert_bit_identical(&merged, &reference);
                }
            }
        }
    }

    #[test]
    fn partition_filter_restricts_scoring() {
        let idx = corpus(60);
        let params = Bm25Params::default();
        let q = idx.analyze_query("covid outbreak");
        let spec = PartitionSpec::new(1, 3).unwrap();
        let opts = TopKOptions {
            strategy: SearchStrategy::Exhaustive,
            partition: Some(spec),
            ..TopKOptions::default()
        };
        let (hits, stats) = search_top_k_with(&idx, params, &q, 60, &opts);
        assert!(hits.iter().all(|h| spec.owns(h.doc)));
        let (_, full) = search_top_k_exhaustive(&idx, params, &q, 60);
        assert!(stats.docs_scored < full.docs_scored);
    }

    #[test]
    fn strategy_parsing_round_trips() {
        for s in [
            SearchStrategy::Auto,
            SearchStrategy::Exhaustive,
            SearchStrategy::Pruned,
            SearchStrategy::BlockMax,
            SearchStrategy::Sharded,
        ] {
            assert_eq!(SearchStrategy::parse(s.as_str()), Some(s));
        }
        assert_eq!(
            SearchStrategy::parse("blockmax"),
            Some(SearchStrategy::BlockMax)
        );
        assert_eq!(
            SearchStrategy::parse("PRUNED"),
            Some(SearchStrategy::Pruned)
        );
        assert_eq!(SearchStrategy::parse("nope"), None);
    }

    #[test]
    fn negative_weights_fall_back_to_exhaustive() {
        let idx = corpus(12);
        let params = Bm25Params::default();
        let covid = idx.vocabulary().id("covid").unwrap();
        let citi = idx.vocabulary().id("citi").unwrap();
        let terms = vec![(covid, 1.0), (citi, -0.5)];
        let (_, stats) = search_weighted_top_k_with(
            &idx,
            params,
            &terms,
            3,
            &TopKOptions {
                strategy: SearchStrategy::Pruned,
                ..TopKOptions::default()
            },
        );
        assert_eq!(stats.strategy, "exhaustive");
    }
}
