//! Generation-snapshot indexing over immutable segments.
//!
//! The paper's counterfactuals are claims about a *specific* ranking: the
//! validity of "removing sentence s drops doc d below rank r" depends on the
//! exact index state that produced r. A mutable corpus therefore cannot
//! mutate the index readers see — it must publish *generations*:
//!
//! - Every generation is a complete immutable [`InvertedIndex`] (the
//!   existing block-compressed segment format), shared behind an `Arc`.
//!   Readers clone the `Arc` under a briefly-held lock and then score,
//!   explain, and replay postings entirely lock-free against that snapshot.
//!   BM25 collection statistics (idf, avgdl) live inside the segment, so
//!   scores are deterministic per generation by construction.
//! - Mutations (`Upsert`, `Delete`) never touch the live segment. They are
//!   staged into an in-memory *delta segment* — an ordered op log with
//!   monotonically increasing sequence numbers — and become visible only
//!   when a merge folds the delta into a freshly built segment published as
//!   generation G+1.
//! - The fold is a full rebuild over (current documents ⊕ delta). That is
//!   deliberate: segments stay single and immutable (every retrieval
//!   strategy, replay scorer, and persisted artifact works unchanged), and
//!   per-generation stats come for free. Corpora here are explanation
//!   workloads (thousands of documents), not web-scale shards; rebuild cost
//!   is milliseconds and happens off the request path.
//!
//! Staging returns a *sequence ticket*. "Read your own write" is
//! [`GenerationIndex::wait_for_seq`]: block until a published generation
//! includes that ticket. Waiting on "generation+1" instead would race with
//! a concurrent merge that snapshotted the delta before the write landed.
//!
//! [`spawn_merger`] runs the fold on a background thread, condvar-woken by
//! [`GenerationIndex::stage`], so callers that do not need a custom publish
//! hook get merge-behind-writes for free.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use credence_text::Analyzer;

use crate::doc::Document;
use crate::index::InvertedIndex;

/// One staged mutation in the delta segment.
#[derive(Debug, Clone)]
pub enum DeltaOp {
    /// Insert a new document, or replace the existing document with the
    /// same external name. Documents with empty names always append.
    Upsert(Document),
    /// Tombstone the document with this external name. Applying the
    /// tombstone removes every document whose name matches.
    Delete(String),
}

/// What a merge published.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// The new generation number.
    pub generation: u64,
    /// The freshly built immutable segment for that generation.
    pub index: Arc<InvertedIndex>,
    /// The highest op sequence folded into this generation.
    pub folded_seq: u64,
}

/// The delta segment: staged ops plus fold bookkeeping.
#[derive(Debug)]
struct Delta {
    /// Staged `(seq, op)` pairs, ascending by seq. Ops stay in the log
    /// until the generation containing them has been *published*, so
    /// existence checks ([`GenerationIndex::stage_insert`]) never miss an
    /// op that a concurrent merge has read but not yet made visible.
    ops: Vec<(u64, DeltaOp)>,
    /// Sequence assigned to the next staged op (tickets start at 1).
    next_seq: u64,
    /// Highest sequence included in a published generation.
    last_folded_seq: u64,
    /// Number of merges published.
    merges: u64,
}

/// A mutable corpus as a sequence of immutable generation snapshots.
#[derive(Debug)]
pub struct GenerationIndex {
    /// The live `(generation, segment)` pair. Writers hold the write lock
    /// only for the pointer swap; readers only for the `Arc` clone.
    current: RwLock<(u64, Arc<InvertedIndex>)>,
    delta: Mutex<Delta>,
    /// Signaled when `last_folded_seq` advances (a generation published).
    folded: Condvar,
    /// Signaled when an op is staged (wakes the background merger).
    work: Condvar,
    /// Serializes merges so generations publish in order.
    merge_gate: Mutex<()>,
}

impl GenerationIndex {
    /// Build generation 0 from `docs`.
    pub fn new(docs: Vec<Document>, analyzer: Analyzer) -> Self {
        Self::from_index(InvertedIndex::build(docs, analyzer))
    }

    /// Wrap an already-built segment as generation 0.
    pub fn from_index(index: InvertedIndex) -> Self {
        Self {
            current: RwLock::new((0, Arc::new(index))),
            delta: Mutex::new(Delta {
                ops: Vec::new(),
                next_seq: 1,
                last_folded_seq: 0,
                merges: 0,
            }),
            folded: Condvar::new(),
            work: Condvar::new(),
            merge_gate: Mutex::new(()),
        }
    }

    /// The live `(generation, segment)` snapshot. O(1): a lock-guarded
    /// `Arc` clone; the returned segment is immutable and lock-free.
    pub fn snapshot(&self) -> (u64, Arc<InvertedIndex>) {
        let guard = self.current.read().unwrap();
        (guard.0, Arc::clone(&guard.1))
    }

    /// The live generation number.
    pub fn generation(&self) -> u64 {
        self.current.read().unwrap().0
    }

    /// Stage one mutation; returns its sequence ticket. The op becomes
    /// visible to readers once a merge folds it ([`Self::wait_for_seq`]).
    pub fn stage(&self, op: DeltaOp) -> u64 {
        let mut delta = self.delta.lock().unwrap();
        let seq = delta.next_seq;
        delta.next_seq += 1;
        delta.ops.push((seq, op));
        self.work.notify_all();
        seq
    }

    /// Stage an insert that must not clobber an existing document: errors
    /// if `name` exists in the live snapshot or the unfolded delta. The
    /// check and the stage happen under the delta lock, so two concurrent
    /// inserts of the same name cannot both succeed.
    pub fn stage_insert(&self, doc: Document) -> Result<u64, DocExists> {
        let mut delta = self.delta.lock().unwrap();
        // Later ops win: scan the log backwards for the name's fate.
        let mut exists = None;
        for (_, op) in delta.ops.iter().rev() {
            match op {
                DeltaOp::Upsert(d) if d.name == doc.name => {
                    exists = Some(true);
                    break;
                }
                DeltaOp::Delete(n) if *n == doc.name => {
                    exists = Some(false);
                    break;
                }
                _ => {}
            }
        }
        let exists = exists.unwrap_or_else(|| {
            // Ops are retained in the log until published, so the snapshot
            // read here cannot miss an in-flight fold.
            let (_, index) = self.snapshot();
            index.documents().iter().any(|d| d.name == doc.name)
        });
        if exists {
            return Err(DocExists);
        }
        let seq = delta.next_seq;
        delta.next_seq += 1;
        delta.ops.push((seq, DeltaOp::Upsert(doc)));
        self.work.notify_all();
        Ok(seq)
    }

    /// Whether a document named `name` exists in the effective corpus
    /// (live snapshot overridden by unfolded delta ops).
    pub fn doc_exists(&self, name: &str) -> bool {
        let delta = self.delta.lock().unwrap();
        for (_, op) in delta.ops.iter().rev() {
            match op {
                DeltaOp::Upsert(d) if d.name == name => return true,
                DeltaOp::Delete(n) if n == name => return false,
                _ => {}
            }
        }
        drop(delta);
        let (_, index) = self.snapshot();
        index.documents().iter().any(|d| d.name == name)
    }

    /// Number of staged ops not yet included in a published generation.
    pub fn pending_ops(&self) -> usize {
        self.delta.lock().unwrap().ops.len()
    }

    /// Number of merges published.
    pub fn merges(&self) -> u64 {
        self.delta.lock().unwrap().merges
    }

    /// Highest sequence ticket included in a published generation.
    pub fn last_folded_seq(&self) -> u64 {
        self.delta.lock().unwrap().last_folded_seq
    }

    /// Fold every currently staged op into a new segment and publish it as
    /// the next generation. Returns `None` when the delta is empty.
    ///
    /// Ops staged *during* the fold stay pending for the next merge. The
    /// rebuild runs outside the delta lock, so staging never blocks on an
    /// in-progress merge.
    pub fn merge_once(&self) -> Option<MergeOutcome> {
        let _gate = self.merge_gate.lock().unwrap();
        let (ops, max_seq) = {
            let delta = self.delta.lock().unwrap();
            match delta.ops.last() {
                None => return None,
                Some(&(max_seq, _)) => (delta.ops.clone(), max_seq),
            }
        };
        // Only merges write `current` and merges are serialized by the
        // gate, so this read is the parent generation for certain.
        let (generation, current) = self.snapshot();
        let mut docs = current.documents().to_vec();
        for (_, op) in &ops {
            apply_op(&mut docs, op);
        }
        let index = Arc::new(InvertedIndex::build(docs, current.analyzer()));
        {
            let mut guard = self.current.write().unwrap();
            *guard = (generation + 1, Arc::clone(&index));
        }
        {
            let mut delta = self.delta.lock().unwrap();
            delta.ops.retain(|&(seq, _)| seq > max_seq);
            delta.last_folded_seq = max_seq;
            delta.merges += 1;
            self.folded.notify_all();
        }
        Some(MergeOutcome {
            generation: generation + 1,
            index,
            folded_seq: max_seq,
        })
    }

    /// Block until the generation containing sequence ticket `seq` has been
    /// published, or `timeout` elapses. Returns whether the fold happened.
    pub fn wait_for_seq(&self, seq: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut delta = self.delta.lock().unwrap();
        while delta.last_folded_seq < seq {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            let (guard, wait) = self.folded.wait_timeout(delta, left).unwrap();
            delta = guard;
            if wait.timed_out() && delta.last_folded_seq < seq {
                return false;
            }
        }
        true
    }
}

/// Insert-conflict marker from [`GenerationIndex::stage_insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DocExists;

/// Apply one delta op to a document list (in-place, seq order).
fn apply_op(docs: &mut Vec<Document>, op: &DeltaOp) {
    match op {
        DeltaOp::Upsert(doc) => {
            let slot = (!doc.name.is_empty())
                .then(|| docs.iter_mut().find(|d| d.name == doc.name))
                .flatten();
            match slot {
                Some(existing) => *existing = doc.clone(),
                None => docs.push(doc.clone()),
            }
        }
        DeltaOp::Delete(name) => docs.retain(|d| d.name != *name),
    }
}

/// Handle to a background merge thread; stops and joins on [`MergerHandle::stop`]
/// or drop.
#[derive(Debug)]
pub struct MergerHandle {
    index: Arc<GenerationIndex>,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MergerHandle {
    /// Stop the merger after it folds any remaining staged ops.
    pub fn stop(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        {
            // Lock/unlock pairs the notify with the merger's wait.
            let _delta = self.index.delta.lock().unwrap();
            self.index.work.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MergerHandle {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// Spawn a thread that folds the delta whenever ops are staged. The loop
/// drains remaining ops before exiting, so `stop()` is a flush.
pub fn spawn_merger(index: Arc<GenerationIndex>) -> MergerHandle {
    let shutdown = Arc::new(AtomicBool::new(false));
    let thread_index = Arc::clone(&index);
    let thread_shutdown = Arc::clone(&shutdown);
    let handle = std::thread::Builder::new()
        .name("credence-merge".into())
        .spawn(move || loop {
            {
                let mut delta = thread_index.delta.lock().unwrap();
                while delta.ops.is_empty() && !thread_shutdown.load(Ordering::SeqCst) {
                    let (guard, _) = thread_index
                        .work
                        .wait_timeout(delta, Duration::from_millis(200))
                        .unwrap();
                    delta = guard;
                }
                if delta.ops.is_empty() && thread_shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            thread_index.merge_once();
        })
        .expect("spawn merge thread");
    MergerHandle {
        index,
        shutdown,
        handle: Some(handle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(name: &str, body: &str) -> Document {
        Document::new(name, name.to_uppercase(), body)
    }

    fn seed() -> Vec<Document> {
        vec![
            doc("a", "vaccines protect communities"),
            doc("b", "masks reduce viral transmission"),
            doc("c", "conspiracy theories spread online"),
        ]
    }

    fn gen_index() -> GenerationIndex {
        GenerationIndex::new(seed(), Analyzer::english())
    }

    #[test]
    fn starts_at_generation_zero() {
        let g = gen_index();
        let (generation, index) = g.snapshot();
        assert_eq!(generation, 0);
        assert_eq!(index.num_docs(), 3);
        assert_eq!(g.pending_ops(), 0);
        assert_eq!(g.merges(), 0);
    }

    #[test]
    fn merge_with_empty_delta_is_a_no_op() {
        let g = gen_index();
        assert!(g.merge_once().is_none());
        assert_eq!(g.generation(), 0);
    }

    #[test]
    fn staged_ops_fold_into_the_next_generation() {
        let g = gen_index();
        let t1 = g.stage(DeltaOp::Upsert(doc("d", "vaccines and masks together")));
        let t2 = g.stage(DeltaOp::Delete("c".into()));
        assert_eq!((t1, t2), (1, 2));
        assert_eq!(g.pending_ops(), 2);

        let outcome = g.merge_once().expect("merge publishes");
        assert_eq!(outcome.generation, 1);
        assert_eq!(outcome.folded_seq, 2);
        assert_eq!(g.pending_ops(), 0);
        assert_eq!(g.merges(), 1);

        let (generation, index) = g.snapshot();
        assert_eq!(generation, 1);
        let names: Vec<&str> = index.documents().iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "d"]);
    }

    #[test]
    fn upsert_replaces_by_name_in_place() {
        let g = gen_index();
        g.stage(DeltaOp::Upsert(doc("b", "replacement body about vaccines")));
        g.merge_once().unwrap();
        let (_, index) = g.snapshot();
        let names: Vec<&str> = index.documents().iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"], "replacement keeps position");
        assert!(index.documents()[1].body.contains("replacement"));
    }

    #[test]
    fn pinned_snapshot_is_immutable_across_merges() {
        let g = gen_index();
        let (pinned_gen, pinned) = g.snapshot();
        g.stage(DeltaOp::Delete("a".into()));
        g.stage(DeltaOp::Delete("b".into()));
        g.merge_once().unwrap();
        assert_eq!(pinned_gen, 0);
        assert_eq!(pinned.num_docs(), 3, "pinned segment still serves gen 0");
        assert_eq!(g.snapshot().1.num_docs(), 1);
    }

    #[test]
    fn collection_stats_are_per_generation() {
        let g = gen_index();
        let before = g.snapshot().1.stats().avg_doc_len();
        g.stage(DeltaOp::Upsert(doc(
            "long",
            "a very long document body with many many additional informative terms \
             padding the average document length upward for the statistics check",
        )));
        g.merge_once().unwrap();
        let after = g.snapshot().1.stats().avg_doc_len();
        assert!(
            after > before,
            "avgdl must be rebuilt per generation ({before} -> {after})"
        );
    }

    #[test]
    fn stage_insert_conflicts_on_live_and_staged_names() {
        let g = gen_index();
        assert_eq!(g.stage_insert(doc("a", "dup")), Err(DocExists));
        let ticket = g.stage_insert(doc("fresh", "new doc")).unwrap();
        assert!(ticket > 0);
        assert_eq!(g.stage_insert(doc("fresh", "dup again")), Err(DocExists));
        // Delete in the delta frees the name before any merge happens.
        g.stage(DeltaOp::Delete("a".into()));
        assert!(g.stage_insert(doc("a", "recreated")).is_ok());
    }

    #[test]
    fn doc_exists_sees_through_the_delta() {
        let g = gen_index();
        assert!(g.doc_exists("a"));
        g.stage(DeltaOp::Delete("a".into()));
        assert!(!g.doc_exists("a"));
        g.stage(DeltaOp::Upsert(doc("z", "brand new")));
        assert!(g.doc_exists("z"));
    }

    #[test]
    fn wait_for_seq_times_out_without_a_merge() {
        let g = gen_index();
        let ticket = g.stage(DeltaOp::Delete("a".into()));
        assert!(!g.wait_for_seq(ticket, Duration::from_millis(30)));
        g.merge_once().unwrap();
        assert!(g.wait_for_seq(ticket, Duration::from_millis(30)));
    }

    #[test]
    fn background_merger_folds_staged_ops() {
        let g = Arc::new(gen_index());
        let merger = spawn_merger(Arc::clone(&g));
        let ticket = g.stage(DeltaOp::Upsert(doc("bg", "merged in the background")));
        assert!(
            g.wait_for_seq(ticket, Duration::from_secs(5)),
            "background merger folds the staged op"
        );
        assert!(g.doc_exists("bg"));
        assert!(g.generation() >= 1);
        merger.stop();
    }

    #[test]
    fn merger_stop_flushes_remaining_ops() {
        let g = Arc::new(gen_index());
        let merger = spawn_merger(Arc::clone(&g));
        let ticket = g.stage(DeltaOp::Delete("b".into()));
        merger.stop();
        assert!(g.last_folded_seq() >= ticket, "stop drains the delta");
        assert!(!g.snapshot().1.documents().iter().any(|d| d.name == "b"));
    }

    #[test]
    fn ops_staged_during_merge_stay_pending() {
        let g = gen_index();
        g.stage(DeltaOp::Delete("a".into()));
        g.merge_once().unwrap();
        g.stage(DeltaOp::Delete("b".into()));
        assert_eq!(g.pending_ops(), 1);
        assert_eq!(g.generation(), 1);
        g.merge_once().unwrap();
        assert_eq!(g.generation(), 2);
        assert_eq!(g.snapshot().1.num_docs(), 1);
    }
}
