//! Term weighting: BM25 (Lucene variant) and TF-IDF.
//!
//! BM25 is the first-stage scorer, as in Anserini. TF-IDF is used by the
//! query-augmentation explainer (§II-D) to score candidate terms "based on
//! their frequency in, and exclusivity to, the instance document" among the
//! ranked set.

use credence_text::TermId;

use crate::doc::DocId;
use crate::index::{InvertedIndex, TermBound};
use crate::stats::CollectionStats;

/// BM25 free parameters.
///
/// Defaults are Anserini's (`k1 = 0.9`, `b = 0.4`), the values CREDENCE's
/// retrieval stack shipped with; [`Bm25Params::robertson`] gives the classic
/// `k1 = 1.2`, `b = 0.75`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation.
    pub k1: f64,
    /// Length-normalisation strength.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 0.9, b: 0.4 }
    }
}

impl Bm25Params {
    /// The classic Robertson/Sparck-Jones parametrisation.
    pub fn robertson() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

/// Lucene's BM25 idf: `ln(1 + (N - df + 0.5) / (df + 0.5))`.
///
/// Always positive, monotonically decreasing in `df`.
pub fn bm25_idf(num_docs: usize, df: u32) -> f64 {
    let n = num_docs as f64;
    let df = df as f64;
    (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
}

/// BM25 weight of one term with frequency `tf` in a document of length
/// `doc_len`, under collection statistics `stats`.
pub fn bm25_term_weight(
    params: Bm25Params,
    stats: &CollectionStats,
    term: TermId,
    tf: u32,
    doc_len: u32,
) -> f64 {
    if tf == 0 {
        return 0.0;
    }
    let idf = bm25_idf(stats.num_docs, stats.df(term));
    let tf = tf as f64;
    let norm = params.k1 * (1.0 - params.b + params.b * doc_len as f64 / stats.avg_doc_len());
    idf * tf * (params.k1 + 1.0) / (tf + norm)
}

/// Upper bound on [`bm25_term_weight`] over every posting of a term, from
/// the statistics frozen at index-build time.
///
/// The BM25 weight is weakly monotone increasing in `tf` and weakly monotone
/// decreasing in document length (for `k1 > 0`, `0 <= b <= 1`), and each
/// IEEE-754 operation in the formula is correctly rounded and therefore
/// weakly monotone, so evaluating at (`max_tf`, `min_norm_len`) dominates the
/// weight of any actual posting to within a few ulps of rounding slack
/// (absorbed by the caller's bound inflation; see `topk`).
pub fn bm25_term_upper_bound(
    params: Bm25Params,
    stats: &CollectionStats,
    term: TermId,
    bound: TermBound,
) -> f64 {
    bm25_bound_with_idf(
        params,
        bm25_idf(stats.num_docs, stats.df(term)),
        bound.max_tf,
        bound.min_norm_len,
    )
}

/// [`bm25_term_upper_bound`] with a precomputed idf — the form Block-Max-WAND
/// evaluates once per (cursor, block) against the block's `max_tf` /
/// `min_norm_len` metadata. Shares the exact float expression with the
/// per-list bound, so the same monotonicity/slack argument applies per block.
pub fn bm25_bound_with_idf(params: Bm25Params, idf: f64, max_tf: u32, min_norm_len: f64) -> f64 {
    if max_tf == 0 {
        return 0.0;
    }
    let tf = max_tf as f64;
    let norm = params.k1 * (1.0 - params.b + params.b * min_norm_len);
    idf * tf * (params.k1 + 1.0) / (tf + norm)
}

/// BM25 score of an indexed document for a bag of query term ids.
///
/// Duplicate query terms accumulate, mirroring Lucene's behaviour for
/// repeated terms — this matters for query-augmentation counterfactuals,
/// where appended terms strictly add score mass.
pub fn bm25_score_indexed(
    params: Bm25Params,
    index: &InvertedIndex,
    query: &[TermId],
    doc: DocId,
) -> f64 {
    let doc_len = index.doc_len(doc);
    query
        .iter()
        .map(|&t| bm25_term_weight(params, index.stats(), t, index.term_freq(doc, t), doc_len))
        .sum()
}

/// BM25 score of an *ad-hoc* document given as `(term, tf)` pairs (sorted by
/// term id) and its analysed length. Used to score perturbed documents that
/// are not in the index, against the frozen statistics.
pub fn bm25_score_adhoc(
    params: Bm25Params,
    stats: &CollectionStats,
    query: &[TermId],
    doc_terms: &[(TermId, u32)],
    doc_len: u32,
) -> f64 {
    query
        .iter()
        .map(|&t| {
            let tf = doc_terms
                .binary_search_by_key(&t, |&(x, _)| x)
                .map(|i| doc_terms[i].1)
                .unwrap_or(0);
            bm25_term_weight(params, stats, t, tf, doc_len)
        })
        .sum()
}

/// Smoothed TF-IDF of a term within a document set of size `set_size`, where
/// the term occurs in `set_df` of the set's documents and `tf` times in the
/// instance document: `tf * ln((1 + set_size) / (1 + set_df)) + 1)` — the
/// scikit-learn-style smoothing used in the original Python implementation.
pub fn tf_idf(tf: u32, set_df: u32, set_size: usize) -> f64 {
    let idf = (((1 + set_size) as f64) / ((1 + set_df) as f64)).ln() + 1.0;
    tf as f64 * idf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::Document;
    use credence_text::Analyzer;

    #[test]
    fn idf_is_positive_and_decreasing() {
        let n = 1000;
        let mut prev = f64::INFINITY;
        for df in [1u32, 5, 50, 500, 999] {
            let idf = bm25_idf(n, df);
            assert!(idf > 0.0);
            assert!(idf < prev, "idf must decrease with df");
            prev = idf;
        }
    }

    #[test]
    fn idf_handles_df_equal_n() {
        // Lucene's formulation stays positive even when every doc has the term.
        assert!(bm25_idf(10, 10) > 0.0);
    }

    #[test]
    fn term_weight_zero_for_absent_term() {
        let stats = CollectionStats {
            num_docs: 10,
            total_terms: 100,
            doc_freq: vec![5],
            coll_freq: vec![20],
        };
        assert_eq!(
            bm25_term_weight(Bm25Params::default(), &stats, 0, 0, 10),
            0.0
        );
    }

    #[test]
    fn term_weight_monotone_in_tf() {
        let stats = CollectionStats {
            num_docs: 10,
            total_terms: 100,
            doc_freq: vec![3],
            coll_freq: vec![9],
        };
        let p = Bm25Params::default();
        let mut prev = 0.0;
        for tf in 1..20 {
            let w = bm25_term_weight(p, &stats, 0, tf, 10);
            assert!(w > prev, "BM25 must increase with tf");
            prev = w;
        }
    }

    #[test]
    fn term_weight_saturates() {
        let stats = CollectionStats {
            num_docs: 10,
            total_terms: 100,
            doc_freq: vec![3],
            coll_freq: vec![9],
        };
        let p = Bm25Params::default();
        let w1 = bm25_term_weight(p, &stats, 0, 1, 10);
        let w2 = bm25_term_weight(p, &stats, 0, 2, 10);
        let w9 = bm25_term_weight(p, &stats, 0, 9, 10);
        let w10 = bm25_term_weight(p, &stats, 0, 10, 10);
        assert!(w2 - w1 > w10 - w9, "marginal gain must shrink (saturation)");
    }

    #[test]
    fn longer_docs_are_penalised() {
        let stats = CollectionStats {
            num_docs: 10,
            total_terms: 100, // avgdl = 10
            doc_freq: vec![3],
            coll_freq: vec![9],
        };
        let p = Bm25Params::default();
        let short = bm25_term_weight(p, &stats, 0, 2, 5);
        let long = bm25_term_weight(p, &stats, 0, 2, 50);
        assert!(short > long);
    }

    #[test]
    fn hand_computed_bm25() {
        // N = 2, avgdl = 3, df(t) = 1, tf = 1, doc_len = 3, k1=0.9, b=0.4.
        let stats = CollectionStats {
            num_docs: 2,
            total_terms: 6,
            doc_freq: vec![1],
            coll_freq: vec![1],
        };
        let idf = (1.0_f64 + (2.0 - 1.0 + 0.5) / 1.5).ln(); // ln(2)
        let expected = idf * 1.0 * 1.9 / (1.0 + 0.9 * (1.0 - 0.4 + 0.4 * 3.0 / 3.0));
        let got = bm25_term_weight(Bm25Params::default(), &stats, 0, 1, 3);
        assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    }

    #[test]
    fn indexed_and_adhoc_scores_agree() {
        let idx = InvertedIndex::build(
            vec![
                Document::from_body("covid outbreak covid response"),
                Document::from_body("city council meeting agenda"),
            ],
            Analyzer::english(),
        );
        let q = idx.analyze_query("covid outbreak");
        let p = Bm25Params::default();
        let indexed = bm25_score_indexed(p, &idx, &q, DocId(0));
        let (terms, len) = idx.analyze_adhoc(&idx.document(DocId(0)).unwrap().body);
        let adhoc = bm25_score_adhoc(p, idx.stats(), &q, &terms, len);
        assert!((indexed - adhoc).abs() < 1e-12);
    }

    #[test]
    fn duplicate_query_terms_accumulate() {
        let idx = InvertedIndex::build(
            vec![Document::from_body("covid outbreak here")],
            Analyzer::english(),
        );
        let p = Bm25Params::default();
        let q1 = idx.analyze_query("covid");
        let q2 = idx.analyze_query("covid covid");
        let s1 = bm25_score_indexed(p, &idx, &q1, DocId(0));
        let s2 = bm25_score_indexed(p, &idx, &q2, DocId(0));
        assert!((s2 - 2.0 * s1).abs() < 1e-12);
    }

    #[test]
    fn term_upper_bound_dominates_every_posting() {
        let idx = InvertedIndex::build(
            vec![
                Document::from_body("covid covid covid outbreak response teams in the city"),
                Document::from_body("covid outbreak"),
                Document::from_body("city council meeting agenda covers the outbreak response"),
                Document::from_body("garden flowers bloom"),
            ],
            Analyzer::english(),
        );
        for p in [Bm25Params::default(), Bm25Params::robertson()] {
            for (tid, _) in idx.vocabulary().iter() {
                let ub = bm25_term_upper_bound(p, idx.stats(), tid, idx.term_bound(tid));
                for posting in idx.postings(tid) {
                    let w =
                        bm25_term_weight(p, idx.stats(), tid, posting.tf, idx.doc_len(posting.doc));
                    assert!(
                        w <= ub * (1.0 + 1e-9),
                        "posting weight {w} exceeds bound {ub}"
                    );
                }
            }
        }
    }

    #[test]
    fn tf_idf_prefers_exclusive_terms() {
        // Term appearing in 1 of 10 ranked docs beats one in 9 of 10.
        let rare = tf_idf(2, 1, 10);
        let common = tf_idf(2, 9, 10);
        assert!(rare > common);
        // And frequency in the instance document scales the score.
        assert!(tf_idf(4, 1, 10) > tf_idf(2, 1, 10));
    }

    #[test]
    fn tf_idf_zero_tf_is_zero() {
        assert_eq!(tf_idf(0, 3, 10), 0.0);
    }
}
