//! Subcommand implementations.
//!
//! Each command returns its report as a `String` so the test suite can
//! assert on output without capturing stdout. The corpus defaults to the
//! built-in COVID-19 Articles demo; `--corpus file.{jsonl,tsv}` loads an
//! external collection.

use std::fmt::Write as _;
use std::path::Path;

use credence_core::{
    explain_query_augmentation, explain_query_reduction, explain_saliency,
    explain_sentence_removal, explain_term_removal, test_edits, Budget, CredenceEngine, Edit,
    EngineConfig, FeatureAttributionConfig, QueryAugmentationConfig, QueryReductionConfig,
    SaliencyUnit, SearchStrategy, SentenceRemovalConfig, TermRemovalConfig, TopKOptions,
};
use credence_corpus::{covid_demo_corpus, load_jsonl, load_tsv, save_jsonl, save_tsv};
use credence_corpus::{SynthConfig, SyntheticCorpus};
use credence_index::{Bm25Params, DocId, Document, InvertedIndex};
use credence_rank::{
    Bm25Ranker, NeuralSimConfig, NeuralSimRanker, QlSmoothing, QueryLikelihoodRanker, Ranker,
    Rm3Config, Rm3Ranker,
};
use credence_text::{find_collocations, Analyzer, PhraseConfig};

use crate::args::{Args, CliError};

/// Top-level usage text.
pub const USAGE: &str = "\
credence — counterfactual explanations for document ranking (CREDENCE, ICDE 2023)

USAGE: credence <command> [options]

COMMANDS
  rank      --query Q --k K [--corpus F]              rank the corpus
            [--search-strategy auto|exhaustive|pruned|bmw|sharded] [--search-shards N]
            every command accepts --ranker bm25|ql|ql-jm|rm3|neural (default bm25)
  explain   --type T --query Q --k K --doc ID         generate explanations
            [--n N] [--threshold T] [--samples S] [--corpus F]
            [--deadline-ms MS] [--max-evals N] [--cancel-after-ms MS]
            budget the counterfactual search: stop at the next batch
            boundary once the wall-clock deadline, the evaluation cap, or
            the cancel timer is hit and report the partial best-so-far
            result
            types: sentence-removal | query-augmentation | query-reduction |
                   doc2vec-nearest | cosine-sampled | term-removal | saliency |
                   feature-attribution
            the type may also be given as a subcommand, e.g.
            `credence explain feature-attribution --query Q --doc ID`
            which prints the same JSON payload as the REST endpoint
            [--samples S] [--seed S] [--top-m M] [--lambda L] tune the
            Rank-LIME surrogate (defaults 256 / 42 / 10 / 0.001)
  builder   --query Q --k K --doc ID                  test your own edits
            [--replace from=to]* [--remove term]* [--corpus F]
  topics    --query Q --k K [--topics N] [--corpus F] browse LDA topics
  analyze   [--corpus F]                              corpus statistics
  generate  --docs N --out FILE [--topics T] [--seed S] [--tsv]
                                                      synthetic corpus
  serve     [--addr HOST:PORT] [--corpus F]           REST API server
            [--extra-corpus NAME=FILE ...]            extra named corpora
            [--router --workers A:P,B:P [--partitions N]
             [--fanout-deadline-ms MS]]               scatter-gather router
  help                                                this text
";

/// Run a parsed command, returning its report.
pub fn run(args: &Args) -> Result<String, CliError> {
    if !args.subcommand.is_empty() && args.command != "explain" {
        return Err(CliError::new(format!(
            "unexpected argument: {}",
            args.subcommand
        )));
    }
    match args.command.as_str() {
        "rank" => rank(args),
        "explain" => explain(args),
        "builder" => builder(args),
        "topics" => topics(args),
        "analyze" => analyze(args),
        "generate" => generate(args),
        "serve" => serve(args),
        "help" | "" => Ok(USAGE.to_string()),
        other => Err(CliError::new(format!(
            "unknown command {other:?}; run `credence help`"
        ))),
    }
}

fn load_corpus(args: &Args) -> Result<Vec<Document>, CliError> {
    match args.get("corpus") {
        None => Ok(covid_demo_corpus().docs),
        Some(path) => {
            let p = Path::new(path);
            let loaded = if path.ends_with(".tsv") {
                load_tsv(p)
            } else {
                load_jsonl(p)
            };
            loaded.map_err(CliError::new)
        }
    }
}

fn with_engine<T>(
    args: &Args,
    f: impl FnOnce(&CredenceEngine<'_>, &InvertedIndex) -> Result<T, CliError>,
) -> Result<T, CliError> {
    let docs = load_corpus(args)?;
    let index = InvertedIndex::build(docs, Analyzer::english());
    let choice = args.get("ranker").unwrap_or("bm25");
    let ranker: Box<dyn Ranker + '_> = match choice {
        "bm25" => Box::new(Bm25Ranker::new(&index, Bm25Params::default())),
        "ql" | "ql-dirichlet" => {
            Box::new(QueryLikelihoodRanker::new(&index, QlSmoothing::default()))
        }
        "ql-jm" => Box::new(QueryLikelihoodRanker::new(
            &index,
            QlSmoothing::JelinekMercer { lambda: 0.5 },
        )),
        "rm3" | "bm25+rm3" => Box::new(Rm3Ranker::new(&index, Rm3Config::default())),
        "neural" | "neural-sim" => {
            Box::new(NeuralSimRanker::train(&index, NeuralSimConfig::default()))
        }
        other => {
            return Err(CliError::new(format!(
                "unknown --ranker {other:?}; use bm25 | ql | ql-jm | rm3 | neural"
            )))
        }
    };
    let engine = CredenceEngine::new(ranker.as_ref(), EngineConfig::fast());
    f(&engine, &index)
}

fn doc_id(args: &Args) -> Result<DocId, CliError> {
    Ok(DocId(args.require_usize("doc")? as u32))
}

/// Build the request-lifecycle budget from `--deadline-ms` / `--max-evals`
/// / `--cancel-after-ms`. The deadline starts ticking here, so indexing
/// time counts against it — matching what a server-side caller
/// experiences.
fn lifecycle_budget(args: &Args) -> Result<Budget, CliError> {
    let mut budget = Budget::unlimited();
    if args.get("deadline-ms").is_some() {
        budget = budget.with_deadline_ms(args.require_usize("deadline-ms")? as u64);
    }
    if args.get("max-evals").is_some() {
        budget = budget.with_max_evals(args.require_usize("max-evals")?);
    }
    if args.get("cancel-after-ms").is_some() {
        // Exercise the cooperative cancel path (the same flag DELETE
        // /api/v1/jobs raises on the server) from the CLI. With 0 the flag
        // is raised inline — deterministic, no timer race.
        let ms = args.require_usize("cancel-after-ms")? as u64;
        let flag = budget.ensure_cancel();
        if ms == 0 {
            flag.store(true, std::sync::atomic::Ordering::Relaxed);
        } else {
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                flag.store(true, std::sync::atomic::Ordering::Relaxed);
            });
        }
    }
    Ok(budget)
}

/// One status line for budget-limited searches, blank when complete.
fn status_line(status: credence_core::SearchStatus, candidates_evaluated: usize) -> String {
    if status.is_partial() {
        format!("search stopped early ({status}) after {candidates_evaluated} evaluation(s); showing best-so-far\n")
    } else {
        String::new()
    }
}

fn rank(args: &Args) -> Result<String, CliError> {
    let query = args.require("query")?.to_string();
    let k = args.get_usize("k", 10)?;
    let mut retrieval = TopKOptions::default();
    if let Some(s) = args.get("search-strategy") {
        retrieval.strategy = SearchStrategy::parse(s).ok_or_else(|| {
            CliError::new(format!(
                "--search-strategy must be auto | exhaustive | pruned | bmw | sharded, got {s:?}"
            ))
        })?;
    }
    retrieval.shards = args.get_usize("search-shards", retrieval.shards)?;
    with_engine(args, |engine, _| {
        let mut out = String::new();
        writeln!(out, "ranking for {query:?} (k = {k})").unwrap();
        for row in engine.rank_with_options(&query, k, &retrieval) {
            writeln!(
                out,
                "{:>3}. doc {:>4}  {:<24} {:<40} score {:.3}",
                row.rank,
                row.doc,
                row.name,
                truncate(&row.title, 40),
                row.score
            )
            .unwrap();
        }
        Ok(out)
    })
}

fn explain(args: &Args) -> Result<String, CliError> {
    let kind = if args.subcommand.is_empty() {
        args.require("type")?.to_string()
    } else {
        args.subcommand.clone()
    };
    let query = args.require("query")?.to_string();
    let k = args.get_usize("k", 10)?;
    let doc = doc_id(args)?;
    let n = args.get_usize("n", 1)?;
    let threshold = args.get_usize("threshold", 1)?;
    let samples = args.get_usize("samples", 100)?;
    let lifecycle = lifecycle_budget(args)?;

    with_engine(args, |engine, index| {
        let mut out = String::new();
        let ranker = engine.ranker();
        match kind.as_str() {
            "sentence-removal" => {
                let result = explain_sentence_removal(
                    ranker,
                    &query,
                    k,
                    doc,
                    &SentenceRemovalConfig {
                        n,
                        lifecycle: lifecycle.clone(),
                        ..Default::default()
                    },
                )
                .map_err(CliError::new)?;
                writeln!(out, "document ranks {} of top-{k}", result.old_rank).unwrap();
                out.push_str(&status_line(result.status, result.candidates_evaluated));
                for (i, e) in result.explanations.iter().enumerate() {
                    writeln!(
                        out,
                        "explanation {}: remove {} sentence(s) -> rank {}",
                        i + 1,
                        e.removed.len(),
                        e.new_rank
                    )
                    .unwrap();
                    for t in &e.removed_text {
                        writeln!(out, "  - {t}").unwrap();
                    }
                }
                if result.explanations.is_empty() {
                    writeln!(out, "no valid counterfactual within the search budget").unwrap();
                }
            }
            "query-augmentation" => {
                let result = explain_query_augmentation(
                    ranker,
                    &query,
                    k,
                    doc,
                    &QueryAugmentationConfig {
                        n,
                        threshold,
                        lifecycle: lifecycle.clone(),
                        ..Default::default()
                    },
                )
                .map_err(CliError::new)?;
                writeln!(out, "document ranks {} of top-{k}", result.old_rank).unwrap();
                out.push_str(&status_line(result.status, result.candidates_evaluated));
                for e in &result.explanations {
                    writeln!(out, "  {:?} -> rank {}", e.augmented_query, e.new_rank).unwrap();
                }
                if result.explanations.is_empty() {
                    writeln!(out, "no valid augmentation within the search budget").unwrap();
                }
            }
            "doc2vec-nearest" => {
                let result = engine
                    .doc2vec_nearest(&query, k, doc, n)
                    .map_err(CliError::new)?;
                for e in &result {
                    let d = index.document(e.doc).expect("instance exists");
                    writeln!(
                        out,
                        "instance doc {} ({}) similarity {:.2} rank {:?}",
                        e.doc, d.name, e.similarity, e.rank
                    )
                    .unwrap();
                }
            }
            "cosine-sampled" => {
                let result = engine
                    .cosine_sampled(&query, k, doc, n, Some(samples))
                    .map_err(CliError::new)?;
                for e in &result {
                    let d = index.document(e.doc).expect("instance exists");
                    writeln!(
                        out,
                        "instance doc {} ({}) similarity {:.2} rank {:?}",
                        e.doc, d.name, e.similarity, e.rank
                    )
                    .unwrap();
                }
            }
            "query-reduction" => {
                let result = explain_query_reduction(
                    ranker,
                    &query,
                    k,
                    doc,
                    &QueryReductionConfig {
                        n,
                        lifecycle: lifecycle.clone(),
                        ..Default::default()
                    },
                )
                .map_err(CliError::new)?;
                out.push_str(&status_line(result.status, result.candidates_evaluated));
                for e in &result.explanations {
                    writeln!(
                        out,
                        "remove {:?} -> query {:?} -> rank {:?}",
                        e.removed_terms, e.reduced_query, e.new_rank
                    )
                    .unwrap();
                }
                if result.explanations.is_empty() {
                    writeln!(out, "no valid reduction within the search budget").unwrap();
                }
            }
            "term-removal" => {
                let result = explain_term_removal(
                    ranker,
                    &query,
                    k,
                    doc,
                    &TermRemovalConfig {
                        n,
                        lifecycle: lifecycle.clone(),
                        ..Default::default()
                    },
                )
                .map_err(CliError::new)?;
                out.push_str(&status_line(result.status, result.candidates_evaluated));
                for e in &result.explanations {
                    writeln!(
                        out,
                        "remove terms {:?} -> rank {}",
                        e.removed_terms, e.new_rank
                    )
                    .unwrap();
                }
                if result.explanations.is_empty() {
                    writeln!(out, "no valid counterfactual within the search budget").unwrap();
                }
            }
            "saliency" => {
                let result = explain_saliency(ranker, &query, doc, SaliencyUnit::Sentence)
                    .map_err(CliError::new)?;
                writeln!(out, "base score {:.3}", result.base_score).unwrap();
                for w in result.weights.iter().take(n.max(5)) {
                    writeln!(out, "  {:+.3}  {}", w.weight, truncate(&w.unit, 70)).unwrap();
                }
            }
            "feature-attribution" => {
                let config = FeatureAttributionConfig {
                    samples: args.get_usize("samples", 256)?,
                    seed: args.get_usize("seed", 42)? as u64,
                    top_m: args.get_usize("top-m", 10)?,
                    lambda: args.get_f64("lambda", 1e-3)?,
                    lifecycle: lifecycle.clone(),
                    ..Default::default()
                };
                let result = engine
                    .feature_attribution(&query, k, doc, &config)
                    .map_err(CliError::new)?;
                // The CLI indexes the default corpus at generation 0, so
                // printing the shared REST payload keeps the two surfaces
                // byte-identical for the same request.
                out.push_str(&credence_server::feature_attribution_payload(
                    "default",
                    0,
                    (config.samples, config.seed, config.top_m, config.lambda),
                    &result,
                ));
                out.push('\n');
            }
            other => {
                return Err(CliError::new(format!("unknown explanation type {other:?}")));
            }
        }
        Ok(out)
    })
}

fn builder(args: &Args) -> Result<String, CliError> {
    let query = args.require("query")?.to_string();
    let k = args.get_usize("k", 10)?;
    let doc = doc_id(args)?;
    let mut edits = Vec::new();
    for spec in args.get_all("replace") {
        let (from, to) = spec
            .split_once('=')
            .ok_or_else(|| CliError::new(format!("--replace expects from=to, got {spec:?}")))?;
        edits.push(Edit::replace(from, to));
    }
    for term in args.get_all("remove") {
        edits.push(Edit::remove(term.as_str()));
    }
    if edits.is_empty() {
        return Err(CliError::new(
            "builder needs at least one --replace or --remove",
        ));
    }
    with_engine(args, |engine, index| {
        let outcome = test_edits(engine.ranker(), &query, k, doc, &edits).map_err(CliError::new)?;
        let mut out = String::new();
        writeln!(
            out,
            "{} rank {} -> {} (k = {k})",
            if outcome.valid {
                "VALID counterfactual:"
            } else {
                "not a counterfactual:"
            },
            outcome.old_rank,
            outcome.new_rank
        )
        .unwrap();
        for row in &outcome.rows {
            let d = index.document(row.doc).expect("pool doc exists");
            writeln!(
                out,
                "{:>3}. {} doc {:>3} {}{}",
                row.new_rank,
                match row.movement() {
                    m if m < 0 => "up  ",
                    m if m > 0 => "down",
                    _ => "same",
                },
                row.doc,
                d.name,
                if row.substituted { "  [edited]" } else { "" }
            )
            .unwrap();
        }
        Ok(out)
    })
}

fn topics(args: &Args) -> Result<String, CliError> {
    let query = args.require("query")?.to_string();
    let k = args.get_usize("k", 10)?;
    let num_topics = args.get_usize("topics", 3)?;
    with_engine(args, |engine, _| {
        let topics = engine
            .topics(&query, k, num_topics)
            .map_err(CliError::new)?;
        let mut out = String::new();
        for t in &topics {
            let terms: Vec<&str> = t.terms.iter().map(|(s, _)| s.as_str()).collect();
            writeln!(
                out,
                "topic {} (weight {:.2}): {}",
                t.topic,
                t.weight,
                terms.join(", ")
            )
            .unwrap();
        }
        Ok(out)
    })
}

fn analyze(args: &Args) -> Result<String, CliError> {
    let docs = load_corpus(args)?;
    let index = InvertedIndex::build(docs, Analyzer::english());
    let stats = index.stats();
    let mut out = String::new();
    writeln!(out, "documents:      {}", stats.num_docs).unwrap();
    writeln!(out, "distinct terms: {}", index.vocabulary().len()).unwrap();
    writeln!(out, "total terms:    {}", stats.total_terms).unwrap();
    writeln!(out, "avg doc length: {:.1}", stats.avg_doc_len()).unwrap();

    // Highest-df terms.
    let mut by_df: Vec<(u32, &str)> = index
        .vocabulary()
        .iter()
        .map(|(tid, term)| (stats.df(tid), term))
        .collect();
    by_df.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(b.1)));
    let common: Vec<String> = by_df
        .iter()
        .take(10)
        .map(|(df, t)| format!("{t}({df})"))
        .collect();
    writeln!(out, "most common:    {}", common.join(" ")).unwrap();

    // Collocations over sentence token sequences (surface forms).
    let matching = Analyzer::matching();
    let mut sequences = Vec::new();
    for doc in index.documents() {
        for sentence in credence_text::split_sentences(&doc.body) {
            sequences.push(matching.analyze(&sentence.text));
        }
    }
    let collocations = find_collocations(&sequences, &PhraseConfig::default());
    let top: Vec<String> = collocations
        .iter()
        .filter(|c| !credence_text::is_stopword(&c.a) && !credence_text::is_stopword(&c.b))
        .take(8)
        .map(|c| format!("{} {}({})", c.a, c.b, c.count))
        .collect();
    writeln!(out, "collocations:   {}", top.join(" · ")).unwrap();
    Ok(out)
}

fn generate(args: &Args) -> Result<String, CliError> {
    let num_docs = args.require_usize("docs")?;
    let out_path = args.require("out")?.to_string();
    let topics = args.get_usize("topics", 8)?;
    let seed = args.get_usize("seed", 42)? as u64;
    let corpus = SyntheticCorpus::generate(SynthConfig {
        num_docs,
        num_topics: topics.max(1),
        seed,
        ..SynthConfig::default()
    });
    let path = Path::new(&out_path);
    if args.has("tsv") || out_path.ends_with(".tsv") {
        save_tsv(path, &corpus.docs).map_err(CliError::new)?;
    } else {
        save_jsonl(path, &corpus.docs).map_err(CliError::new)?;
    }
    Ok(format!(
        "wrote {} synthetic documents ({} topics, seed {seed}) to {out_path}\n",
        corpus.docs.len(),
        topics
    ))
}

fn serve(args: &Args) -> Result<String, CliError> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:8091").to_string();
    if args.has("router") {
        let mut workers = Vec::new();
        for part in args
            .require("workers")
            .map_err(|_| CliError::new("--router requires --workers A:P,B:P,..."))?
            .split(',')
            .filter(|p| !p.trim().is_empty())
        {
            workers.push(
                part.trim()
                    .parse()
                    .map_err(|_| CliError::new(format!("--workers: invalid address {part:?}")))?,
            );
        }
        if workers.is_empty() {
            return Err(CliError::new("--workers needs at least one address"));
        }
        let config = credence_server::RouterConfig {
            partitions: args.get_usize("partitions", 0)? as u32,
            fanout_deadline_ms: args.get_usize("fanout-deadline-ms", 2000)? as u64,
        };
        let state = credence_server::RouterState::leak(workers, config);
        let server = credence_server::Server::bind(addr.as_str(), state).map_err(CliError::new)?;
        eprintln!(
            "credence router listening on http://{addr} ({} partitions)",
            state.partitions()
        );
        server.run().map_err(CliError::new)?;
        return Ok(String::new());
    }
    let docs = load_corpus(args)?;
    let state = credence_server::AppState::leak(docs, EngineConfig::default());
    for spec in args.get_all("extra-corpus") {
        let Some((name, file)) = spec
            .split_once('=')
            .filter(|(n, f)| !n.is_empty() && !f.is_empty())
        else {
            return Err(CliError::new(
                "--extra-corpus requires NAME=FILE.jsonl|FILE.tsv",
            ));
        };
        if name == "default" {
            return Err(CliError::new(
                "--extra-corpus: the name 'default' is reserved for --corpus",
            ));
        }
        let path = Path::new(file);
        let extra = if file.ends_with(".tsv") {
            load_tsv(path)
        } else {
            load_jsonl(path)
        }
        .map_err(CliError::new)?;
        eprintln!(
            "indexing extra corpus '{name}' ({} documents)...",
            extra.len()
        );
        state.register_corpus(name, extra);
    }
    let server = credence_server::Server::bind(addr.as_str(), state).map_err(CliError::new)?;
    eprintln!("credence listening on http://{addr}");
    server.run().map_err(CliError::new)?;
    Ok(String::new())
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(line: &str) -> Result<String, CliError> {
        let args = Args::parse(line.split_whitespace().map(str::to_string)).unwrap();
        run(&args)
    }

    #[test]
    fn help_and_unknown() {
        assert!(run_line("help").unwrap().contains("USAGE"));
        assert!(run_line("").unwrap().contains("USAGE"));
        assert!(run_line("frobnicate").is_err());
    }

    #[test]
    fn rank_over_demo_corpus() {
        let out = run_line("rank --query covid_outbreak --k 3");
        // underscores aren't in the corpus; use a real query
        assert!(out.is_ok());
        let out = run_line("rank --query covid --k 3").unwrap();
        assert!(out.contains("ranking for"));
        assert!(out.lines().count() >= 4, "{out}");
    }

    #[test]
    fn rank_search_strategy_flag() {
        let base = run_line("rank --query covid --k 3").unwrap();
        for strategy in ["exhaustive", "pruned", "bmw", "sharded", "auto"] {
            let out = run_line(&format!(
                "rank --query covid --k 3 --search-strategy {strategy} --search-shards 2"
            ))
            .unwrap();
            assert_eq!(out, base, "{strategy} output differs");
        }
        assert!(run_line("rank --query covid --k 3 --search-strategy fastest").is_err());
    }

    #[test]
    fn explain_sentence_removal_on_fake_news() {
        let demo = covid_demo_corpus();
        let out = run_line(&format!(
            "explain --type sentence-removal --query covid --k 10 --doc {}",
            demo.fake_news
        ));
        // "covid" alone may rank the doc differently; use the demo query.
        let _ = out;
        let out = run_line(&format!(
            "explain --type sentence-removal --query covid --k 12 --doc {}",
            demo.fake_news
        ));
        let _ = out;
        let args = Args::parse(
            [
                "explain",
                "--type",
                "sentence-removal",
                "--query",
                "covid outbreak",
                "--k",
                "10",
                "--doc",
                &demo.fake_news.to_string(),
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("ranks 3"), "{out}");
        assert!(out.contains("rank 11"), "{out}");
    }

    #[test]
    fn explain_all_types_run() {
        let demo = covid_demo_corpus();
        for kind in [
            "query-augmentation",
            "query-reduction",
            "doc2vec-nearest",
            "cosine-sampled",
            "term-removal",
            "saliency",
            "feature-attribution",
        ] {
            let args = Args::parse(
                [
                    "explain",
                    "--type",
                    kind,
                    "--query",
                    "covid outbreak",
                    "--k",
                    "10",
                    "--doc",
                    &demo.fake_news.to_string(),
                    "--threshold",
                    "2",
                    "--n",
                    "2",
                ]
                .iter()
                .map(|s| s.to_string()),
            )
            .unwrap();
            let out = run(&args).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(!out.is_empty(), "{kind} produced no output");
        }
    }

    #[test]
    fn feature_attribution_cli_matches_rest_payload() {
        let demo = covid_demo_corpus();
        let args = Args::parse(
            [
                "explain",
                "feature-attribution",
                "--query",
                "covid outbreak",
                "--k",
                "10",
                "--doc",
                &demo.fake_news.to_string(),
                "--samples",
                "64",
                "--seed",
                "7",
                "--top-m",
                "5",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        let cli = run(&args).unwrap();
        assert!(cli.contains("\"attributions\""), "{cli}");

        let state = credence_server::AppState::leak(covid_demo_corpus().docs, EngineConfig::fast());
        let body = format!(
            "{{\"query\": \"covid outbreak\", \"k\": 10, \"doc\": {}, \"samples\": 64, \"seed\": 7, \"top_m\": 5}}",
            demo.fake_news
        );
        let req = credence_server::http::Request {
            method: "POST".into(),
            path: "/api/v1/explain/feature_attribution".into(),
            headers: Default::default(),
            body: body.into_bytes(),
        };
        let resp = credence_server::handle_request(state, &req);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        assert_eq!(
            cli.trim_end(),
            String::from_utf8_lossy(&resp.body),
            "CLI payload must be byte-identical to the REST endpoint"
        );
    }

    #[test]
    fn budget_flags_cap_the_search() {
        let demo = covid_demo_corpus();
        let args = Args::parse(
            [
                "explain",
                "--type",
                "sentence-removal",
                "--query",
                "covid outbreak",
                "--k",
                "10",
                "--doc",
                &demo.fake_news.to_string(),
                "--n",
                "5",
                "--max-evals",
                "1",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("stopped early (exhausted)"), "{out}");
        assert!(out.contains("after 1 evaluation"), "{out}");
    }

    #[test]
    fn expired_deadline_reports_a_partial_result() {
        let demo = covid_demo_corpus();
        let args = Args::parse(
            [
                "explain",
                "--type",
                "term-removal",
                "--query",
                "covid outbreak",
                "--k",
                "10",
                "--doc",
                &demo.fake_news.to_string(),
                "--deadline-ms",
                "0",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("stopped early (deadline)"), "{out}");
    }

    #[test]
    fn pre_raised_cancel_flag_reports_a_cancelled_partial_result() {
        let demo = covid_demo_corpus();
        let args = Args::parse(
            [
                "explain",
                "--type",
                "term-removal",
                "--query",
                "covid outbreak",
                "--k",
                "10",
                "--doc",
                &demo.fake_news.to_string(),
                "--cancel-after-ms",
                "0",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("stopped early (cancelled)"), "{out}");
    }

    #[test]
    fn budget_flags_validate() {
        let err = run_line(
            "explain --type sentence-removal --query covid --k 3 --doc 0 --max-evals pony",
        )
        .unwrap_err();
        assert!(err.to_string().contains("--max-evals"), "{err}");
        let err = run_line(
            "explain --type sentence-removal --query covid --k 3 --doc 0 --cancel-after-ms soon",
        )
        .unwrap_err();
        assert!(err.to_string().contains("--cancel-after-ms"), "{err}");
    }

    #[test]
    fn ranker_flag_switches_models() {
        let out = run_line("rank --query covid --k 3 --ranker ql").unwrap();
        assert!(out.contains("ranking for"));
        let out = run_line("rank --query covid --k 3 --ranker rm3").unwrap();
        assert!(out.contains("ranking for"));
        let err = run_line("rank --query covid --k 3 --ranker zebra").unwrap_err();
        assert!(err.to_string().contains("unknown --ranker"));
    }

    #[test]
    fn builder_with_edits() {
        let demo = covid_demo_corpus();
        let args = Args::parse(
            [
                "builder",
                "--query",
                "covid outbreak",
                "--k",
                "10",
                "--doc",
                &demo.fake_news.to_string(),
                "--replace",
                "covid=flu",
                "--remove",
                "outbreak",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("VALID counterfactual"), "{out}");
        assert!(out.contains("[edited]"));
    }

    #[test]
    fn builder_requires_edits() {
        let demo = covid_demo_corpus();
        let err = run_line(&format!(
            "builder --query covid --k 10 --doc {}",
            demo.fake_news
        ))
        .unwrap_err();
        assert!(err.to_string().contains("--replace"));
    }

    #[test]
    fn analyze_reports_statistics() {
        let out = run_line("analyze").unwrap();
        assert!(out.contains("documents:"));
        assert!(out.contains("distinct terms:"));
        assert!(out.contains("collocations:"));
    }

    #[test]
    fn generate_writes_corpus_files() {
        let dir = std::env::temp_dir().join("credence_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join("synth.jsonl");
        let out = run_line(&format!("generate --docs 12 --out {}", jsonl.display())).unwrap();
        assert!(out.contains("12 synthetic documents"));
        let docs = load_jsonl(&jsonl).unwrap();
        assert_eq!(docs.len(), 12);

        let tsv = dir.join("synth.tsv");
        run_line(&format!("generate --docs 5 --out {}", tsv.display())).unwrap();
        assert_eq!(load_tsv(&tsv).unwrap().len(), 5);

        // The generated corpus round-trips through rank.
        let args = Args::parse(
            [
                "rank",
                "--query",
                "topic0word0 topic0word1",
                "--k",
                "3",
                "--corpus",
                &jsonl.display().to_string(),
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        let ranked = run(&args).unwrap();
        assert!(ranked.contains("1."), "{ranked}");
    }

    #[test]
    fn missing_corpus_file_errors() {
        let err = run_line("rank --query covid --k 3 --corpus /no/such.jsonl").unwrap_err();
        assert!(err.to_string().contains("I/O"), "{err}");
    }

    #[test]
    fn truncate_helper() {
        assert_eq!(truncate("short", 10), "short");
        let t = truncate("a very long string indeed", 10);
        assert!(t.chars().count() <= 10);
        assert!(t.ends_with('…'));
    }
}
