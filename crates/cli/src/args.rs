//! A small `--flag value` argument parser.
//!
//! The CLI has exactly the option shapes below, so a bespoke parser keeps
//! the binary dependency-free: a leading subcommand, `--key value` options
//! (repeatable), and `--key` boolean switches.

use std::collections::HashMap;
use std::fmt;

/// CLI failures with user-facing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl CliError {
    /// Build an error from anything displayable.
    pub fn new(msg: impl fmt::Display) -> Self {
        Self(msg.to_string())
    }
}

/// Parsed command line: subcommand + options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: String,
    /// An optional nested subcommand (second non-flag token), e.g.
    /// `explain feature-attribution`. Empty when absent.
    pub subcommand: String,
    /// `--key value` options; repeated keys accumulate in order.
    options: HashMap<String, Vec<String>>,
    /// `--key` switches with no value.
    switches: Vec<String>,
}

/// Known boolean switches (everything else expects a value).
const SWITCHES: &[&str] = &["help", "tsv", "router"];

impl Args {
    /// Parse raw arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, CliError> {
        let mut args = Args::default();
        let mut it = raw.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if SWITCHES.contains(&key) {
                    args.switches.push(key.to_string());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| CliError::new(format!("--{key} requires a value")))?;
                    args.options.entry(key.to_string()).or_default().push(value);
                }
            } else if args.command.is_empty() {
                args.command = tok;
            } else if args.subcommand.is_empty() {
                args.subcommand = tok;
            } else {
                return Err(CliError::new(format!("unexpected argument: {tok}")));
            }
        }
        Ok(args)
    }

    /// First value of an option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options
            .get(key)
            .and_then(|v| v.first())
            .map(String::as_str)
    }

    /// All values of a repeatable option.
    pub fn get_all(&self, key: &str) -> &[String] {
        self.options.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError::new(format!("missing required option --{key}")))
    }

    /// Optional integer with default.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::new(format!("--{key} must be an integer, got {v:?}"))),
        }
    }

    /// Optional float with default.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::new(format!("--{key} must be a number, got {v:?}"))),
        }
    }

    /// Required integer option.
    pub fn require_usize(&self, key: &str) -> Result<usize, CliError> {
        self.require(key)?
            .parse()
            .map_err(|_| CliError::new(format!("--{key} must be an integer")))
    }

    /// Boolean switch presence.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Args, CliError> {
        Args::parse(line.split_whitespace().map(str::to_string))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse("rank --query covid --k 10").unwrap();
        assert_eq!(a.command, "rank");
        assert_eq!(a.get("query"), Some("covid"));
        assert_eq!(a.get_usize("k", 5).unwrap(), 10);
    }

    #[test]
    fn repeatable_options_accumulate() {
        let a = parse("builder --replace covid=flu --replace outbreak=cold").unwrap();
        assert_eq!(a.get_all("replace").len(), 2);
        assert_eq!(a.get_all("replace")[1], "outbreak=cold");
    }

    #[test]
    fn switches_take_no_value() {
        let a = parse("generate --tsv --docs 5").unwrap();
        assert!(a.has("tsv"));
        assert_eq!(a.get_usize("docs", 0).unwrap(), 5);
    }

    #[test]
    fn errors() {
        assert!(parse("rank --query").is_err());
        assert!(parse("rank extra junk").is_err());
        let a = parse("rank --k pony").unwrap();
        assert!(a.get_usize("k", 1).is_err());
        assert!(a.require("query").is_err());
        let a = parse("explain feature-attribution --lambda pony").unwrap();
        assert!(a.get_f64("lambda", 0.0).is_err());
    }

    #[test]
    fn nested_subcommand_parses() {
        let a = parse("explain feature-attribution --query covid --lambda 0.5").unwrap();
        assert_eq!(a.command, "explain");
        assert_eq!(a.subcommand, "feature-attribution");
        assert_eq!(a.get("query"), Some("covid"));
        assert_eq!(a.get_f64("lambda", 0.0).unwrap(), 0.5);
        assert_eq!(a.get_f64("missing", 0.25).unwrap(), 0.25);
    }

    #[test]
    fn empty_input() {
        let a = parse("").unwrap();
        assert!(a.command.is_empty());
        assert!(!a.has("help"));
    }
}
