//! The `credence` binary: thin wrapper over `credence_cli::run`.

use std::process::ExitCode;

use credence_cli::{run, Args};

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.has("help") {
        print!("{}", credence_cli::commands::USAGE);
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
