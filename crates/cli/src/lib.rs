//! The `credence` command-line interface.
//!
//! One binary driving the whole reproduction from a shell: rank a corpus,
//! generate every explanation type, test builder edits, browse topics,
//! inspect corpus statistics, generate synthetic corpora, and serve the
//! REST API. Command implementations live here (returning their output as
//! strings) so they are unit-testable; `main.rs` is a thin printer.

#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{Args, CliError};
pub use commands::run;
