//! Negative-sampling distribution.
//!
//! word2vec/doc2vec draw negative examples from the unigram distribution
//! raised to the 3/4 power (Mikolov et al. 2013). This module implements that
//! distribution with an alias-free cumulative table and binary search —
//! O(log V) per draw, exact, and deterministic under a seeded RNG.

use rand::Rng;

/// Sampler over word ids with probability proportional to `count^power`.
#[derive(Debug, Clone)]
pub struct UnigramTable {
    cumulative: Vec<f64>,
}

impl UnigramTable {
    /// Build from per-word counts (index = word id). Words with zero count
    /// get zero probability. `power` is conventionally `0.75`.
    ///
    /// Returns `None` when every count is zero.
    pub fn new(counts: &[u64], power: f64) -> Option<Self> {
        let mut cumulative = Vec::with_capacity(counts.len());
        let mut acc = 0.0f64;
        for &c in counts {
            acc += (c as f64).powf(power);
            cumulative.push(acc);
        }
        if acc <= 0.0 {
            return None;
        }
        Some(Self { cumulative })
    }

    /// Standard word2vec table: `power = 0.75`.
    pub fn standard(counts: &[u64]) -> Option<Self> {
        Self::new(counts, 0.75)
    }

    /// Draw one word id.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let x = rng.gen_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => i + 1,
            Err(i) => i,
        }
        .min(self.cumulative.len() - 1)
    }

    /// Number of word ids covered (including zero-probability ones).
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when the table covers no ids.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_zero_counts_rejected() {
        assert!(UnigramTable::standard(&[0, 0, 0]).is_none());
        assert!(UnigramTable::standard(&[]).is_none());
    }

    #[test]
    fn zero_count_words_never_sampled() {
        let table = UnigramTable::standard(&[10, 0, 10]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            assert_ne!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn frequencies_roughly_follow_powered_counts() {
        // counts 1 vs 16 with power 0.75 -> ratio 16^0.75 = 8.
        let table = UnigramTable::standard(&[1, 16]).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut hits = [0usize; 2];
        let n = 100_000;
        for _ in 0..n {
            hits[table.sample(&mut rng)] += 1;
        }
        let ratio = hits[1] as f64 / hits[0] as f64;
        assert!((ratio - 8.0).abs() < 1.0, "ratio {ratio} should be near 8");
    }

    #[test]
    fn power_one_is_proportional() {
        let table = UnigramTable::new(&[1, 3], 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = [0usize; 2];
        for _ in 0..40_000 {
            hits[table.sample(&mut rng)] += 1;
        }
        let ratio = hits[1] as f64 / hits[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio} should be near 3");
    }

    #[test]
    fn single_word_always_sampled() {
        let table = UnigramTable::standard(&[5]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let table = UnigramTable::standard(&[3, 1, 4, 1, 5]).unwrap();
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| table.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| table.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
