//! Negative-sampling distribution.
//!
//! word2vec/doc2vec draw negative examples from the unigram distribution
//! raised to the 3/4 power (Mikolov et al. 2013). This module implements that
//! distribution on top of `credence-rng`'s cumulative table — binary-search
//! draws, O(log V), exact, and deterministic under a seeded RNG.

use credence_rng::weighted::CumulativeTable;
use credence_rng::RngCore;

/// Sampler over word ids with probability proportional to `count^power`.
#[derive(Debug, Clone)]
pub struct UnigramTable {
    table: CumulativeTable,
}

impl UnigramTable {
    /// Build from per-word counts (index = word id). Words with zero count
    /// get zero probability. `power` is conventionally `0.75`.
    ///
    /// Returns `None` when every count is zero.
    pub fn new(counts: &[u64], power: f64) -> Option<Self> {
        let table = CumulativeTable::new(counts.iter().map(|&c| (c as f64).powf(power)))?;
        Some(Self { table })
    }

    /// Standard word2vec table: `power = 0.75`.
    pub fn standard(counts: &[u64]) -> Option<Self> {
        Self::new(counts, 0.75)
    }

    /// Draw one word id.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
        self.table.sample(rng)
    }

    /// Number of word ids covered (including zero-probability ones).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when the table covers no ids.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use credence_rng::rngs::StdRng;
    use credence_rng::SeedableRng;

    #[test]
    fn all_zero_counts_rejected() {
        assert!(UnigramTable::standard(&[0, 0, 0]).is_none());
        assert!(UnigramTable::standard(&[]).is_none());
    }

    #[test]
    fn zero_count_words_never_sampled() {
        let table = UnigramTable::standard(&[10, 0, 10]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            assert_ne!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn frequencies_roughly_follow_powered_counts() {
        // counts 1 vs 16 with power 0.75 -> ratio 16^0.75 = 8.
        let table = UnigramTable::standard(&[1, 16]).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut hits = [0usize; 2];
        let n = 100_000;
        for _ in 0..n {
            hits[table.sample(&mut rng)] += 1;
        }
        let ratio = hits[1] as f64 / hits[0] as f64;
        assert!((ratio - 8.0).abs() < 1.0, "ratio {ratio} should be near 8");
    }

    #[test]
    fn power_one_is_proportional() {
        let table = UnigramTable::new(&[1, 3], 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = [0usize; 2];
        for _ in 0..40_000 {
            hits[table.sample(&mut rng)] += 1;
        }
        let ratio = hits[1] as f64 / hits[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio} should be near 3");
    }

    #[test]
    fn single_word_always_sampled() {
        let table = UnigramTable::standard(&[5]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let table = UnigramTable::standard(&[3, 1, 4, 1, 5]).unwrap();
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| table.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| table.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
