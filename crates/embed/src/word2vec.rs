//! Skip-gram with negative sampling (SGNS), Mikolov et al. 2013.
//!
//! Word vectors feed the semantic component of the neural-ranker stand-in
//! (`credence-rank::NeuralSimRanker`): the original CREDENCE used monoT5,
//! whose essential observable property for the explanation algorithms is that
//! it rewards *semantic* query–document affinity beyond exact term matches.
//! SGNS vectors trained on the corpus give us exactly that signal.

use credence_rng::rngs::StdRng;
use credence_rng::{Rng, SeedableRng};

use crate::sampling::UnigramTable;
use crate::vecmath::{axpy, cosine, dot, sigmoid};

/// Hyper-parameters for SGNS training.
#[derive(Debug, Clone)]
pub struct Word2VecConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Symmetric context window size.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed to 1e-4 of itself).
    pub lr: f32,
    /// RNG seed; training is deterministic given the seed and corpus.
    pub seed: u64,
}

impl Default for Word2VecConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            window: 5,
            negatives: 5,
            epochs: 5,
            lr: 0.025,
            seed: 42,
        }
    }
}

/// A trained SGNS model: input (word) and output (context) matrices.
#[derive(Debug, Clone)]
pub struct Word2Vec {
    dim: usize,
    vocab_size: usize,
    /// Row-major `vocab_size × dim` input embeddings.
    input: Vec<f32>,
    /// Row-major `vocab_size × dim` output embeddings.
    output: Vec<f32>,
}

impl Word2Vec {
    /// Train on `sentences`, sequences of word ids in `0..vocab_size`.
    ///
    /// Ids outside `0..vocab_size` are a contract violation and panic in
    /// debug builds.
    pub fn train(sentences: &[Vec<usize>], vocab_size: usize, config: &Word2VecConfig) -> Self {
        assert!(config.dim > 0, "embedding dimension must be positive");
        let mut counts = vec![0u64; vocab_size];
        let mut total_tokens = 0u64;
        for s in sentences {
            for &w in s {
                debug_assert!(w < vocab_size, "word id {w} out of range");
                counts[w] += 1;
                total_tokens += 1;
            }
        }

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut model = Self::init(vocab_size, config.dim, &mut rng);
        let Some(table) = UnigramTable::standard(&counts) else {
            return model; // empty corpus: random vectors
        };

        let total_steps = (total_tokens as usize).max(1) * config.epochs.max(1);
        let mut step = 0usize;
        let mut grad = vec![0.0f32; config.dim];

        for _ in 0..config.epochs {
            for sentence in sentences {
                for (pos, &center) in sentence.iter().enumerate() {
                    let lr = decayed_lr(config.lr, step, total_steps);
                    step += 1;
                    // Dynamic window, as in the reference implementation.
                    let b = rng.gen_range(0..config.window.max(1));
                    let lo = pos.saturating_sub(config.window - b);
                    let hi = (pos + config.window - b + 1).min(sentence.len());
                    for (ctx_pos, &context) in sentence.iter().enumerate().take(hi).skip(lo) {
                        if ctx_pos == pos {
                            continue;
                        }
                        sgns_update(
                            &mut model.input,
                            &mut model.output,
                            config.dim,
                            center,
                            context,
                            config.negatives,
                            &table,
                            lr,
                            &mut rng,
                            &mut grad,
                        );
                    }
                }
            }
        }
        model
    }

    fn init(vocab_size: usize, dim: usize, rng: &mut StdRng) -> Self {
        let scale = 0.5 / dim as f32;
        let input: Vec<f32> = (0..vocab_size * dim)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        let output = vec![0.0f32; vocab_size * dim];
        Self {
            dim,
            vocab_size,
            input,
            output,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of word rows.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// The input-side vector of a word.
    pub fn vector(&self, word: usize) -> &[f32] {
        &self.input[word * self.dim..(word + 1) * self.dim]
    }

    /// The output-side (context) vector of a word.
    pub fn output_vector(&self, word: usize) -> &[f32] {
        &self.output[word * self.dim..(word + 1) * self.dim]
    }

    /// Cosine similarity between two words' input vectors.
    pub fn similarity(&self, a: usize, b: usize) -> f32 {
        cosine(self.vector(a), self.vector(b))
    }

    /// Mean of the input vectors of `words` (zero vector when empty) —
    /// a simple compositional text embedding.
    pub fn mean_vector(&self, words: &[usize]) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        if words.is_empty() {
            return v;
        }
        for &w in words {
            axpy(1.0, self.vector(w), &mut v);
        }
        let inv = 1.0 / words.len() as f32;
        for x in v.iter_mut() {
            *x *= inv;
        }
        v
    }
}

fn decayed_lr(lr0: f32, step: usize, total: usize) -> f32 {
    let frac = 1.0 - step as f32 / total as f32;
    (lr0 * frac).max(lr0 * 1e-4)
}

/// One SGNS gradient step for a (center, context) pair plus negatives.
///
/// Shared with the PV-DBOW trainer in [`crate::doc2vec`], where the "center"
/// row lives in the document matrix instead of the word matrix.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sgns_update<R: Rng>(
    input: &mut [f32],
    output: &mut [f32],
    dim: usize,
    center_row: usize,
    positive: usize,
    negatives: usize,
    table: &UnigramTable,
    lr: f32,
    rng: &mut R,
    grad: &mut [f32],
) {
    grad.fill(0.0);
    let center = &mut input[center_row * dim..(center_row + 1) * dim];
    // Positive pair: label 1.
    {
        let out = &mut output[positive * dim..(positive + 1) * dim];
        let score = sigmoid(dot(center, out));
        let g = lr * (1.0 - score);
        axpy(g, out, grad);
        axpy(g, center, out);
    }
    // Negative pairs: label 0.
    for _ in 0..negatives {
        let neg = table.sample(rng);
        if neg == positive {
            continue;
        }
        let out = &mut output[neg * dim..(neg + 1) * dim];
        let score = sigmoid(dot(center, out));
        let g = lr * (0.0 - score);
        axpy(g, out, grad);
        axpy(g, center, out);
    }
    axpy(1.0, grad, center);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two "topics" of words that co-occur only within their topic. After
    /// training, intra-topic similarity must exceed inter-topic similarity.
    fn topical_corpus() -> (Vec<Vec<usize>>, usize) {
        // words 0..4 = topic A, 4..8 = topic B
        let mut sents = Vec::new();
        for i in 0..200 {
            let base = if i % 2 == 0 { 0 } else { 4 };
            let s: Vec<usize> = (0..12).map(|j| base + (i + j) % 4).collect();
            sents.push(s);
        }
        (sents, 8)
    }

    #[test]
    fn learns_topical_structure() {
        let (sents, v) = topical_corpus();
        let cfg = Word2VecConfig {
            dim: 16,
            epochs: 8,
            ..Default::default()
        };
        let model = Word2Vec::train(&sents, v, &cfg);
        let intra = model.similarity(0, 1);
        let inter = model.similarity(0, 5);
        assert!(
            intra > inter + 0.2,
            "intra-topic {intra} should exceed inter-topic {inter}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (sents, v) = topical_corpus();
        let cfg = Word2VecConfig {
            dim: 8,
            epochs: 2,
            ..Default::default()
        };
        let m1 = Word2Vec::train(&sents, v, &cfg);
        let m2 = Word2Vec::train(&sents, v, &cfg);
        assert_eq!(m1.vector(3), m2.vector(3));
    }

    #[test]
    fn different_seeds_differ() {
        let (sents, v) = topical_corpus();
        let base = Word2VecConfig {
            dim: 8,
            epochs: 1,
            ..Default::default()
        };
        let m1 = Word2Vec::train(&sents, v, &base);
        let m2 = Word2Vec::train(
            &sents,
            v,
            &Word2VecConfig {
                seed: 7,
                ..base.clone()
            },
        );
        assert_ne!(m1.vector(0), m2.vector(0));
    }

    #[test]
    fn empty_corpus_yields_random_model() {
        let model = Word2Vec::train(&[], 4, &Word2VecConfig::default());
        assert_eq!(model.vocab_size(), 4);
        assert_eq!(model.vector(0).len(), model.dim());
    }

    #[test]
    fn mean_vector_of_empty_is_zero() {
        let model = Word2Vec::train(&[], 4, &Word2VecConfig::default());
        assert!(model.mean_vector(&[]).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mean_vector_averages() {
        let (sents, v) = topical_corpus();
        let model = Word2Vec::train(
            &sents,
            v,
            &Word2VecConfig {
                dim: 8,
                epochs: 1,
                ..Default::default()
            },
        );
        let m = model.mean_vector(&[0, 1]);
        for (i, &mi) in m.iter().enumerate() {
            let expected = (model.vector(0)[i] + model.vector(1)[i]) / 2.0;
            assert!((mi - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn vectors_remain_finite_after_training() {
        let (sents, v) = topical_corpus();
        let model = Word2Vec::train(
            &sents,
            v,
            &Word2VecConfig {
                dim: 16,
                epochs: 5,
                lr: 0.05,
                ..Default::default()
            },
        );
        for w in 0..v {
            assert!(model.vector(w).iter().all(|x| x.is_finite()));
        }
    }
}
