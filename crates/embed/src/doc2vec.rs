//! PV-DBOW Doc2Vec (Le & Mikolov 2014), the model behind the paper's
//! *Doc2Vec Nearest* instance-based explainer (§II-E).
//!
//! PV-DBOW learns one vector per document by training the document vector to
//! predict each word sampled from the document, with negative sampling —
//! the distributed-bag-of-words variant the gensim default (`dm=0`) CREDENCE
//! used maps to. [`Doc2Vec::infer`] embeds an *unseen* document (e.g. a
//! builder perturbation) by freezing the word-output matrix and training only
//! a fresh document vector, exactly as gensim's `infer_vector` does.

use std::sync::OnceLock;

use credence_rng::rngs::StdRng;
use credence_rng::{Rng, SeedableRng};

use crate::nn::QuantizedVectors;
use crate::sampling::UnigramTable;
use crate::vecmath::cosine;
use crate::word2vec::sgns_update;

/// Hyper-parameters for PV-DBOW training.
#[derive(Debug, Clone)]
pub struct Doc2VecConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed).
    pub lr: f32,
    /// Epochs used by [`Doc2Vec::infer`] for unseen documents.
    pub infer_epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Doc2VecConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            negatives: 5,
            epochs: 20,
            lr: 0.025,
            infer_epochs: 40,
            seed: 42,
        }
    }
}

/// A trained PV-DBOW model over a fixed corpus.
#[derive(Debug, Clone)]
pub struct Doc2Vec {
    dim: usize,
    vocab_size: usize,
    /// Row-major `num_docs × dim` document vectors.
    doc_vecs: Vec<f32>,
    /// Row-major `vocab_size × dim` word-output matrix.
    output: Vec<f32>,
    /// Negative-sampling table (None for an empty corpus).
    table: Option<UnigramTable>,
    config: Doc2VecConfig,
    num_docs: usize,
    /// Lazily-built i8 quantisation of `doc_vecs`, shared by the
    /// shortlist-then-rescore nearest-neighbour path.
    quantized: OnceLock<QuantizedVectors>,
}

impl Doc2Vec {
    /// Train on `docs`: one word-id sequence per document, ids in
    /// `0..vocab_size`.
    pub fn train(docs: &[Vec<usize>], vocab_size: usize, config: &Doc2VecConfig) -> Self {
        assert!(config.dim > 0, "embedding dimension must be positive");
        let mut counts = vec![0u64; vocab_size];
        let mut total_tokens = 0u64;
        for d in docs {
            for &w in d {
                debug_assert!(w < vocab_size, "word id {w} out of range");
                counts[w] += 1;
                total_tokens += 1;
            }
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let scale = 0.5 / config.dim as f32;
        let mut doc_vecs: Vec<f32> = (0..docs.len() * config.dim)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        let mut output = vec![0.0f32; vocab_size * config.dim];
        let table = UnigramTable::standard(&counts);

        if let Some(table) = &table {
            let total_steps = (total_tokens as usize).max(1) * config.epochs.max(1);
            let mut step = 0usize;
            let mut grad = vec![0.0f32; config.dim];
            for _ in 0..config.epochs {
                for (doc_id, words) in docs.iter().enumerate() {
                    for &word in words {
                        let lr = decayed(config.lr, step, total_steps);
                        step += 1;
                        sgns_update(
                            &mut doc_vecs,
                            &mut output,
                            config.dim,
                            doc_id,
                            word,
                            config.negatives,
                            table,
                            lr,
                            &mut rng,
                            &mut grad,
                        );
                    }
                }
            }
        }

        Self {
            dim: config.dim,
            vocab_size,
            doc_vecs,
            output,
            table,
            config: config.clone(),
            num_docs: docs.len(),
            quantized: OnceLock::new(),
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of trained document vectors.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Size of the word vocabulary the model was trained against.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// The trained vector of corpus document `doc`.
    pub fn doc_vector(&self, doc: usize) -> &[f32] {
        &self.doc_vecs[doc * self.dim..(doc + 1) * self.dim]
    }

    /// The i8 quantisation of the document vectors, built on first use and
    /// cached. Feed it to
    /// [`nearest_neighbors_quantized`](crate::nn::nearest_neighbors_quantized)
    /// together with [`Self::doc_vector`] for the exact-rescore pass.
    pub fn quantized(&self) -> &QuantizedVectors {
        self.quantized.get_or_init(|| {
            QuantizedVectors::build(self.num_docs, self.dim, |d| self.doc_vector(d))
        })
    }

    /// Cosine similarity between two trained document vectors.
    pub fn similarity(&self, a: usize, b: usize) -> f32 {
        cosine(self.doc_vector(a), self.doc_vector(b))
    }

    /// Infer a vector for an unseen document (word ids in `0..vocab_size`),
    /// freezing the word-output matrix. Deterministic given the model seed.
    pub fn infer(&self, words: &[usize]) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x9e37_79b9);
        let scale = 0.5 / self.dim as f32;
        let mut vec_buf: Vec<f32> = (0..self.dim)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        let Some(table) = &self.table else {
            return vec_buf;
        };
        if words.is_empty() {
            return vec_buf;
        }
        // Train a single "document row" against a frozen copy of the output
        // matrix (gensim freezes syn1neg during infer_vector too).
        let mut output = self.output.clone();
        let total_steps = words.len() * self.config.infer_epochs.max(1);
        let mut step = 0usize;
        let mut grad = vec![0.0f32; self.dim];
        for _ in 0..self.config.infer_epochs {
            for &w in words {
                debug_assert!(w < self.vocab_size, "word id {w} out of range");
                let lr = decayed(self.config.lr, step, total_steps);
                step += 1;
                sgns_update(
                    &mut vec_buf,
                    &mut output,
                    self.dim,
                    0,
                    w,
                    self.config.negatives,
                    table,
                    lr,
                    &mut rng,
                    &mut grad,
                );
            }
        }
        vec_buf
    }

    /// Cosine similarity between a trained document and an inferred vector.
    pub fn similarity_to(&self, doc: usize, inferred: &[f32]) -> f32 {
        cosine(self.doc_vector(doc), inferred)
    }
}

fn decayed(lr0: f32, step: usize, total: usize) -> f32 {
    let frac = 1.0 - step as f32 / total as f32;
    (lr0 * frac).max(lr0 * 1e-4)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Corpus with two clusters of documents over disjoint vocabularies.
    fn clustered_docs() -> (Vec<Vec<usize>>, usize) {
        let mut docs = Vec::new();
        for i in 0..30 {
            let base = if i < 15 { 0 } else { 6 };
            let d: Vec<usize> = (0..30).map(|j| base + (i + j) % 6).collect();
            docs.push(d);
        }
        (docs, 12)
    }

    fn quick_cfg() -> Doc2VecConfig {
        Doc2VecConfig {
            dim: 16,
            epochs: 15,
            ..Default::default()
        }
    }

    #[test]
    fn learns_document_clusters() {
        let (docs, v) = clustered_docs();
        let model = Doc2Vec::train(&docs, v, &quick_cfg());
        let intra = model.similarity(0, 1);
        let inter = model.similarity(0, 20);
        assert!(
            intra > inter + 0.2,
            "intra-cluster {intra} should exceed inter-cluster {inter}"
        );
    }

    #[test]
    fn near_duplicate_documents_are_similar() {
        // Mirrors Fig. 4: a near-copy of a document should embed nearby.
        let mut docs: Vec<Vec<usize>> = Vec::new();
        for i in 0..20 {
            let base = (i % 4) * 5;
            docs.push((0..40).map(|j| base + (i + j) % 5).collect());
        }
        // doc 20 = near copy of doc 0 (same 5-word vocabulary, shifted).
        docs.push((0..40).map(|j| (j + 3) % 5).collect());
        let model = Doc2Vec::train(&docs, 20, &quick_cfg());
        let dup_sim = model.similarity(0, 20);
        let other_sim = model.similarity(0, 1); // different cluster (base 5)
        assert!(
            dup_sim > other_sim,
            "near-duplicate sim {dup_sim} must beat cross-cluster {other_sim}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (docs, v) = clustered_docs();
        let m1 = Doc2Vec::train(&docs, v, &quick_cfg());
        let m2 = Doc2Vec::train(&docs, v, &quick_cfg());
        assert_eq!(m1.doc_vector(5), m2.doc_vector(5));
    }

    #[test]
    fn infer_places_copy_near_original() {
        let (docs, v) = clustered_docs();
        let model = Doc2Vec::train(&docs, v, &quick_cfg());
        let inferred = model.infer(&docs[0]);
        let sim_same = model.similarity_to(0, &inferred);
        let sim_other = model.similarity_to(20, &inferred);
        assert!(
            sim_same > sim_other,
            "inferred copy of doc 0 should be nearer doc 0 ({sim_same}) than doc 20 ({sim_other})"
        );
    }

    #[test]
    fn infer_is_deterministic() {
        let (docs, v) = clustered_docs();
        let model = Doc2Vec::train(&docs, v, &quick_cfg());
        assert_eq!(model.infer(&docs[3]), model.infer(&docs[3]));
    }

    #[test]
    fn infer_empty_document_returns_init_vector() {
        let (docs, v) = clustered_docs();
        let model = Doc2Vec::train(&docs, v, &quick_cfg());
        let vec = model.infer(&[]);
        assert_eq!(vec.len(), model.dim());
        assert!(vec.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn empty_corpus_is_safe() {
        let model = Doc2Vec::train(&[], 5, &quick_cfg());
        assert_eq!(model.num_docs(), 0);
        let v = model.infer(&[1, 2, 3]);
        assert_eq!(v.len(), model.dim());
    }

    #[test]
    fn vectors_finite_after_training() {
        let (docs, v) = clustered_docs();
        let model = Doc2Vec::train(&docs, v, &quick_cfg());
        for d in 0..model.num_docs() {
            assert!(model.doc_vector(d).iter().all(|x| x.is_finite()));
        }
    }
}
