//! Exact nearest-neighbour search by cosine similarity.
//!
//! The *Doc2Vec Nearest* explainer returns "the n most similar documents"
//! (§II-E); corpora here are laptop-scale, so exact brute-force search with a
//! bounded heap is both simple and fast enough, and — unlike approximate
//! indexes — cannot change who the nearest counterfactual instance is.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::vecmath::{dot, norm};

/// One neighbour: an item index and its cosine similarity to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the neighbouring item among the candidates.
    pub item: usize,
    /// Cosine similarity to the query vector.
    pub similarity: f32,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry(Neighbor);

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by similarity; larger item index is "worse" on ties.
        other
            .0
            .similarity
            .partial_cmp(&self.0.similarity)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.0.item.cmp(&other.0.item))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Return the top-`n` candidates most cosine-similar to `query`, best first.
///
/// `candidates` yields `(item_index, vector)` pairs; items whose vector
/// length differs from the query's are skipped (defensive: mixed-model
/// vectors cannot be compared meaningfully). Ties break toward the smaller
/// item index, so results are deterministic.
pub fn nearest_neighbors<'a, I>(query: &[f32], candidates: I, n: usize) -> Vec<Neighbor>
where
    I: IntoIterator<Item = (usize, &'a [f32])>,
{
    if n == 0 {
        return Vec::new();
    }
    // Normalise the query once up front: cosine(q, v) = dot(q̂, v) / ‖v‖,
    // so each candidate costs one dot product and one norm instead of a
    // full cosine (which re-derives the query norm every time).
    let query_norm = norm(query);
    let mut q_unit = query.to_vec();
    if query_norm > 0.0 {
        for x in &mut q_unit {
            *x /= query_norm;
        }
    }
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(n + 1);
    for (item, vec) in candidates {
        if vec.len() != query.len() {
            continue;
        }
        let item_norm = norm(vec);
        let similarity = if query_norm == 0.0 || item_norm == 0.0 {
            0.0
        } else {
            (dot(&q_unit, vec) / item_norm).clamp(-1.0, 1.0)
        };
        heap.push(HeapEntry(Neighbor { item, similarity }));
        if heap.len() > n {
            heap.pop();
        }
    }
    let mut out: Vec<Neighbor> = heap.into_iter().map(|e| e.0).collect();
    out.sort_unstable_by(|a, b| {
        b.similarity
            .partial_cmp(&a.similarity)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.item.cmp(&b.item))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixtures() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 0.0],  // 0: identical direction to query
            vec![0.9, 0.1],  // 1: close
            vec![0.0, 1.0],  // 2: orthogonal
            vec![-1.0, 0.0], // 3: opposite
        ]
    }

    #[test]
    fn finds_most_similar_first() {
        let vecs = fixtures();
        let nn = nearest_neighbors(
            &[1.0, 0.0],
            vecs.iter().enumerate().map(|(i, v)| (i, v.as_slice())),
            2,
        );
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].item, 0);
        assert_eq!(nn[1].item, 1);
        assert!(nn[0].similarity > nn[1].similarity);
    }

    #[test]
    fn n_larger_than_candidates() {
        let vecs = fixtures();
        let nn = nearest_neighbors(
            &[1.0, 0.0],
            vecs.iter().enumerate().map(|(i, v)| (i, v.as_slice())),
            10,
        );
        assert_eq!(nn.len(), 4);
        assert_eq!(nn.last().unwrap().item, 3, "opposite vector ranks last");
    }

    #[test]
    fn n_zero() {
        let vecs = fixtures();
        let nn = nearest_neighbors(
            &[1.0, 0.0],
            vecs.iter().enumerate().map(|(i, v)| (i, v.as_slice())),
            0,
        );
        assert!(nn.is_empty());
    }

    #[test]
    fn mismatched_dimensions_skipped() {
        let a = vec![1.0, 0.0];
        let b = vec![1.0, 0.0, 0.0];
        let nn = nearest_neighbors(
            &[1.0, 0.0],
            vec![(0usize, a.as_slice()), (1usize, b.as_slice())],
            5,
        );
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0].item, 0);
    }

    #[test]
    fn ties_break_by_item_index() {
        let v = vec![1.0f32, 0.0];
        let candidates: Vec<(usize, &[f32])> = (0..6).map(|i| (i, v.as_slice())).collect();
        let nn = nearest_neighbors(&[1.0, 0.0], candidates, 3);
        let items: Vec<usize> = nn.iter().map(|n| n.item).collect();
        assert_eq!(items, vec![0, 1, 2]);
    }

    #[test]
    fn empty_candidates() {
        let nn = nearest_neighbors(&[1.0, 0.0], std::iter::empty(), 3);
        assert!(nn.is_empty());
    }

    #[test]
    fn zero_vectors_have_zero_similarity() {
        let z = vec![0.0f32, 0.0];
        let v = vec![1.0f32, 0.0];
        let nn = nearest_neighbors(&v, vec![(0usize, z.as_slice())], 1);
        assert_eq!(nn[0].similarity, 0.0);
        let nn = nearest_neighbors(&z, vec![(0usize, v.as_slice())], 1);
        assert_eq!(nn[0].similarity, 0.0, "all-zero query");
    }

    #[test]
    fn order_matches_full_cosine_reference() {
        use crate::vecmath::cosine;
        // A deterministic spread of candidate directions, checked against
        // the reference ordering computed with the unoptimised full cosine.
        // The mixer makes vectors generic: no two candidates are scalar
        // multiples, so every cosine gap is far above float noise and the
        // order is formula-independent (asserted below).
        fn mixed(i: u64) -> f32 {
            (i.wrapping_mul(2654435761).wrapping_add(104729) % 2003) as f32 / 1001.5 - 1.0
        }
        let vecs: Vec<Vec<f32>> = (0..16u64)
            .map(|i| (0..8u64).map(|j| mixed(i * 8 + j)).collect())
            .collect();
        let query: Vec<f32> = (0..8u64).map(|j| mixed(1000 + j)).collect();
        let nn = nearest_neighbors(
            &query,
            vecs.iter().enumerate().map(|(i, v)| (i, v.as_slice())),
            vecs.len(),
        );
        let mut reference: Vec<(usize, f32)> = vecs
            .iter()
            .enumerate()
            .map(|(i, v)| (i, cosine(&query, v)))
            .collect();
        reference.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        for w in reference.windows(2) {
            assert!(
                w[0].1 - w[1].1 > 1e-4,
                "fixture cosines must be well separated, got {} vs {}",
                w[0].1,
                w[1].1
            );
        }
        let got: Vec<usize> = nn.iter().map(|n| n.item).collect();
        let want: Vec<usize> = reference.iter().map(|&(i, _)| i).collect();
        assert_eq!(got, want, "pre-normalised search must preserve the order");
    }
}
