//! Exact nearest-neighbour search by cosine similarity.
//!
//! The *Doc2Vec Nearest* explainer returns "the n most similar documents"
//! (§II-E); corpora here are laptop-scale, so exact brute-force search with a
//! bounded heap is both simple and fast enough, and — unlike approximate
//! indexes — cannot change who the nearest counterfactual instance is.
//!
//! [`nearest_neighbors_quantized`] accelerates the scan without giving up
//! exactness: vectors are pre-quantised to i8 with a per-vector scale
//! ([`QuantizedVectors`]), the first pass computes integer dot products plus
//! a *sound* error bound on each cosine, and only candidates whose upper
//! bound reaches the provisional n-th lower bound are re-scored with the
//! full f32 formula. The rescore replicates [`nearest_neighbors`]'s float
//! expression exactly, so the returned neighbours (items *and* similarity
//! bits) are identical to the brute-force scan.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::vecmath::{dot, norm};

/// One neighbour: an item index and its cosine similarity to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the neighbouring item among the candidates.
    pub item: usize,
    /// Cosine similarity to the query vector.
    pub similarity: f32,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry(Neighbor);

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by similarity; larger item index is "worse" on ties.
        other
            .0
            .similarity
            .partial_cmp(&self.0.similarity)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.0.item.cmp(&other.0.item))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Return the top-`n` candidates most cosine-similar to `query`, best first.
///
/// `candidates` yields `(item_index, vector)` pairs; items whose vector
/// length differs from the query's are skipped (defensive: mixed-model
/// vectors cannot be compared meaningfully). Ties break toward the smaller
/// item index, so results are deterministic.
pub fn nearest_neighbors<'a, I>(query: &[f32], candidates: I, n: usize) -> Vec<Neighbor>
where
    I: IntoIterator<Item = (usize, &'a [f32])>,
{
    if n == 0 {
        return Vec::new();
    }
    // Normalise the query once up front: cosine(q, v) = dot(q̂, v) / ‖v‖,
    // so each candidate costs one dot product and one norm instead of a
    // full cosine (which re-derives the query norm every time).
    let query_norm = norm(query);
    let mut q_unit = query.to_vec();
    if query_norm > 0.0 {
        for x in &mut q_unit {
            *x /= query_norm;
        }
    }
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(n + 1);
    for (item, vec) in candidates {
        if vec.len() != query.len() {
            continue;
        }
        let item_norm = norm(vec);
        let similarity = if query_norm == 0.0 || item_norm == 0.0 {
            0.0
        } else {
            (dot(&q_unit, vec) / item_norm).clamp(-1.0, 1.0)
        };
        heap.push(HeapEntry(Neighbor { item, similarity }));
        if heap.len() > n {
            heap.pop();
        }
    }
    let mut out: Vec<Neighbor> = heap.into_iter().map(|e| e.0).collect();
    out.sort_unstable_by(|a, b| {
        b.similarity
            .partial_cmp(&a.similarity)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.item.cmp(&b.item))
    });
    out
}

/// Quantise `x` against `scale` to a symmetric i8 code.
fn code_of(x: f32, scale: f32) -> i8 {
    if scale > 0.0 {
        (x / scale).round().clamp(-127.0, 127.0) as i8
    } else {
        0
    }
}

/// A fixed set of embedding vectors quantised to i8 (one scale per vector),
/// with the per-vector metadata needed to bound the quantisation error of
/// any dot product against them.
#[derive(Debug, Clone, Default)]
pub struct QuantizedVectors {
    dim: usize,
    /// Row-major `num × dim` i8 codes.
    codes: Vec<i8>,
    /// Per-vector scale `max|x| / 127` (`0.0` for all-zero vectors).
    scales: Vec<f32>,
    /// Per-vector f32 norm, computed exactly as the rescore pass does.
    norms: Vec<f32>,
    /// Per-vector `Σ|code|`, for the error bound.
    code_abs_sums: Vec<f32>,
}

impl QuantizedVectors {
    /// Quantise `num` vectors of dimension `dim`, reading row `i` via
    /// `row(i)`. Each row must have exactly `dim` elements.
    pub fn build<'a>(num: usize, dim: usize, row: impl Fn(usize) -> &'a [f32]) -> Self {
        let mut q = Self {
            dim,
            codes: Vec::with_capacity(num * dim),
            scales: Vec::with_capacity(num),
            norms: Vec::with_capacity(num),
            code_abs_sums: Vec::with_capacity(num),
        };
        for i in 0..num {
            let v = row(i);
            assert_eq!(v.len(), dim, "row {i} has the wrong dimension");
            let maxabs = v.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let scale = maxabs / 127.0;
            let mut abs_sum = 0.0f32;
            for &x in v {
                let c = code_of(x, scale);
                abs_sum += (c as i32).unsigned_abs() as f32;
                q.codes.push(c);
            }
            q.scales.push(scale);
            q.norms.push(norm(v));
            q.code_abs_sums.push(abs_sum);
        }
        q
    }

    /// Number of quantised vectors.
    pub fn len(&self) -> usize {
        self.scales.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.scales.is_empty()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// [`nearest_neighbors`] over pre-quantised candidates, with identical
/// output.
///
/// First pass: for each candidate, an integer dot product of the i8 codes
/// gives an approximate cosine plus a sound error interval (writing `u =
/// s_u·c + e`, `v = s_v·d + f` with `|e| ≤ s_u/2`, `|f| ≤ s_v/2` per
/// element, the dot-product error is at most `s_u·s_v·(Σ|c| + Σ|d| +
/// dim/2)/2`; a generous multiplicative + additive margin then absorbs f32
/// rounding in both the integer path and the exact formula). The provisional
/// threshold θ is the n-th largest *lower* bound; at least n candidates have
/// true similarity ≥ θ, so every true top-n member — including ties — has an
/// upper bound ≥ θ and survives to the second pass. Survivors are re-scored
/// with the exact f32 formula and selected by the same heap, so the result
/// is bit-identical to the brute-force scan.
///
/// `exact(i)` must return the same f32 vector that `quant` row `i` was built
/// from. Queries whose dimension differs from `quant` or whose norm is zero
/// fall back to the plain scan.
pub fn nearest_neighbors_quantized<'a, I>(
    query: &[f32],
    quant: &QuantizedVectors,
    exact: impl Fn(usize) -> &'a [f32],
    candidates: I,
    n: usize,
) -> Vec<Neighbor>
where
    I: IntoIterator<Item = usize>,
{
    if n == 0 {
        return Vec::new();
    }
    let items: Vec<usize> = candidates.into_iter().collect();
    let query_norm = norm(query);
    if query.len() != quant.dim || query_norm == 0.0 {
        return nearest_neighbors(query, items.iter().map(|&i| (i, exact(i))), n);
    }
    let maxabs = query.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    let q_scale = maxabs / 127.0;
    let q_codes: Vec<i32> = query.iter().map(|&x| code_of(x, q_scale) as i32).collect();
    let q_abs: f32 = q_codes.iter().map(|c| c.unsigned_abs() as f32).sum();
    let dim = quant.dim;

    // Pass 1: integer dots → similarity intervals.
    let mut bounds: Vec<(usize, f32, f32)> = Vec::with_capacity(items.len());
    for &item in &items {
        let scale = quant.scales[item];
        let item_norm = quant.norms[item];
        if scale == 0.0 || item_norm == 0.0 {
            // All-zero vector: the exact formula yields exactly 0.0.
            bounds.push((item, 0.0, 0.0));
            continue;
        }
        let codes = &quant.codes[item * dim..(item + 1) * dim];
        let mut int_dot = 0i32;
        for (qc, &c) in q_codes.iter().zip(codes) {
            int_dot += qc * c as i32;
        }
        let approx_dot = q_scale * scale * int_dot as f32;
        let err_dot =
            0.5 * q_scale * scale * (q_abs + quant.code_abs_sums[item] + 0.25 * dim as f32);
        let denom = query_norm * item_norm;
        let sim = approx_dot / denom;
        let err = (err_dot / denom) * 1.001 + 1e-5;
        bounds.push((item, (sim - err).max(-1.0), (sim + err).min(1.0)));
    }

    // Provisional threshold: the n-th largest lower bound.
    let theta = if bounds.len() > n {
        let mut lbs: Vec<f32> = bounds.iter().map(|&(_, lb, _)| lb).collect();
        lbs.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap_or(Ordering::Equal));
        lbs[n - 1]
    } else {
        f32::NEG_INFINITY
    };

    // Pass 2: exact rescore of the shortlist, with the reference formula.
    let mut q_unit = query.to_vec();
    for x in &mut q_unit {
        *x /= query_norm;
    }
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(n + 1);
    for &(item, _, _) in bounds.iter().filter(|&&(_, _, ub)| ub >= theta) {
        let vec = exact(item);
        let item_norm = norm(vec);
        let similarity = if item_norm == 0.0 {
            0.0
        } else {
            (dot(&q_unit, vec) / item_norm).clamp(-1.0, 1.0)
        };
        heap.push(HeapEntry(Neighbor { item, similarity }));
        if heap.len() > n {
            heap.pop();
        }
    }
    let mut out: Vec<Neighbor> = heap.into_iter().map(|e| e.0).collect();
    out.sort_unstable_by(|a, b| {
        b.similarity
            .partial_cmp(&a.similarity)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.item.cmp(&b.item))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixtures() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 0.0],  // 0: identical direction to query
            vec![0.9, 0.1],  // 1: close
            vec![0.0, 1.0],  // 2: orthogonal
            vec![-1.0, 0.0], // 3: opposite
        ]
    }

    #[test]
    fn finds_most_similar_first() {
        let vecs = fixtures();
        let nn = nearest_neighbors(
            &[1.0, 0.0],
            vecs.iter().enumerate().map(|(i, v)| (i, v.as_slice())),
            2,
        );
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].item, 0);
        assert_eq!(nn[1].item, 1);
        assert!(nn[0].similarity > nn[1].similarity);
    }

    #[test]
    fn n_larger_than_candidates() {
        let vecs = fixtures();
        let nn = nearest_neighbors(
            &[1.0, 0.0],
            vecs.iter().enumerate().map(|(i, v)| (i, v.as_slice())),
            10,
        );
        assert_eq!(nn.len(), 4);
        assert_eq!(nn.last().unwrap().item, 3, "opposite vector ranks last");
    }

    #[test]
    fn n_zero() {
        let vecs = fixtures();
        let nn = nearest_neighbors(
            &[1.0, 0.0],
            vecs.iter().enumerate().map(|(i, v)| (i, v.as_slice())),
            0,
        );
        assert!(nn.is_empty());
    }

    #[test]
    fn mismatched_dimensions_skipped() {
        let a = vec![1.0, 0.0];
        let b = vec![1.0, 0.0, 0.0];
        let nn = nearest_neighbors(
            &[1.0, 0.0],
            vec![(0usize, a.as_slice()), (1usize, b.as_slice())],
            5,
        );
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0].item, 0);
    }

    #[test]
    fn ties_break_by_item_index() {
        let v = vec![1.0f32, 0.0];
        let candidates: Vec<(usize, &[f32])> = (0..6).map(|i| (i, v.as_slice())).collect();
        let nn = nearest_neighbors(&[1.0, 0.0], candidates, 3);
        let items: Vec<usize> = nn.iter().map(|n| n.item).collect();
        assert_eq!(items, vec![0, 1, 2]);
    }

    #[test]
    fn empty_candidates() {
        let nn = nearest_neighbors(&[1.0, 0.0], std::iter::empty(), 3);
        assert!(nn.is_empty());
    }

    #[test]
    fn zero_vectors_have_zero_similarity() {
        let z = vec![0.0f32, 0.0];
        let v = vec![1.0f32, 0.0];
        let nn = nearest_neighbors(&v, vec![(0usize, z.as_slice())], 1);
        assert_eq!(nn[0].similarity, 0.0);
        let nn = nearest_neighbors(&z, vec![(0usize, v.as_slice())], 1);
        assert_eq!(nn[0].similarity, 0.0, "all-zero query");
    }

    #[test]
    fn quantized_search_is_bit_identical_to_exact_scan() {
        // Adversarial candidate set: pseudo-random directions, exact
        // duplicates (heap tie-breaks), scalar multiples (identical cosine
        // at different magnitudes — the quantisation scales differ), an
        // all-zero vector, and a near-opposite. The quantised path must
        // reproduce the exact scan bit for bit at every n.
        fn mixed(i: u64) -> f32 {
            (i.wrapping_mul(2654435761).wrapping_add(104729) % 2003) as f32 / 1001.5 - 1.0
        }
        let dim = 16usize;
        let mut vecs: Vec<Vec<f32>> = (0..40u64)
            .map(|i| (0..dim as u64).map(|j| mixed(i * dim as u64 + j)).collect())
            .collect();
        vecs.push(vecs[3].clone()); // exact duplicate
        vecs.push(vecs[7].iter().map(|x| x * 250.0).collect()); // scalar multiple
        vecs.push(vecs[7].iter().map(|x| x * 1e-4).collect()); // tiny multiple
        vecs.push(vec![0.0; dim]); // zero vector
        let query: Vec<f32> = (0..dim as u64).map(|j| mixed(9000 + j)).collect();
        vecs.push(query.iter().map(|x| -x).collect()); // opposite
        let quant = QuantizedVectors::build(vecs.len(), dim, |i| vecs[i].as_slice());
        for n in [1usize, 3, 5, 20, vecs.len(), vecs.len() + 5] {
            let reference = nearest_neighbors(
                &query,
                vecs.iter().enumerate().map(|(i, v)| (i, v.as_slice())),
                n,
            );
            let got = nearest_neighbors_quantized(
                &query,
                &quant,
                |i| vecs[i].as_slice(),
                0..vecs.len(),
                n,
            );
            assert_eq!(got.len(), reference.len(), "n={n}");
            for (g, r) in got.iter().zip(&reference) {
                assert_eq!(g.item, r.item, "n={n}");
                assert_eq!(g.similarity.to_bits(), r.similarity.to_bits(), "n={n}");
            }
        }
        // Subset of candidates and the degenerate queries also agree.
        let subset: Vec<usize> = (0..vecs.len()).step_by(3).collect();
        let got = nearest_neighbors_quantized(
            &query,
            &quant,
            |i| vecs[i].as_slice(),
            subset.iter().copied(),
            4,
        );
        let reference =
            nearest_neighbors(&query, subset.iter().map(|&i| (i, vecs[i].as_slice())), 4);
        assert_eq!(got, reference);
        let zero_q = vec![0.0f32; dim];
        let got = nearest_neighbors_quantized(&zero_q, &quant, |i| vecs[i].as_slice(), 0..3, 2);
        let reference = nearest_neighbors(&zero_q, (0..3).map(|i| (i, vecs[i].as_slice())), 2);
        assert_eq!(got, reference);
    }

    #[test]
    fn quantized_shortlist_actually_prunes() {
        // A selective geometry: one tight cluster near the query and many
        // far-away candidates. The interval test must rescore only a
        // fraction of the candidates (sanity check that the fast path is a
        // fast path, via the bound construction rather than instrumentation:
        // with all-equal vectors nothing can be excluded, so assert the
        // bounds separate the cluster from the rest).
        let dim = 8usize;
        let mut vecs: Vec<Vec<f32>> = Vec::new();
        for i in 0..5 {
            let mut v = vec![1.0f32; dim];
            v[0] += i as f32 * 1e-3;
            vecs.push(v); // cluster, cosine ≈ 1
        }
        for i in 0..200 {
            let mut v = vec![-1.0f32; dim];
            v[i % dim] = 1.0;
            vecs.push(v); // far away, cosine < 0
        }
        let query = vec![1.0f32; dim];
        let quant = QuantizedVectors::build(vecs.len(), dim, |i| vecs[i].as_slice());
        let got =
            nearest_neighbors_quantized(&query, &quant, |i| vecs[i].as_slice(), 0..vecs.len(), 3);
        let reference = nearest_neighbors(
            &query,
            vecs.iter().enumerate().map(|(i, v)| (i, v.as_slice())),
            3,
        );
        assert_eq!(got, reference);
        assert!(got.iter().all(|nb| nb.item < 5), "cluster wins: {got:?}");
    }

    #[test]
    fn order_matches_full_cosine_reference() {
        use crate::vecmath::cosine;
        // A deterministic spread of candidate directions, checked against
        // the reference ordering computed with the unoptimised full cosine.
        // The mixer makes vectors generic: no two candidates are scalar
        // multiples, so every cosine gap is far above float noise and the
        // order is formula-independent (asserted below).
        fn mixed(i: u64) -> f32 {
            (i.wrapping_mul(2654435761).wrapping_add(104729) % 2003) as f32 / 1001.5 - 1.0
        }
        let vecs: Vec<Vec<f32>> = (0..16u64)
            .map(|i| (0..8u64).map(|j| mixed(i * 8 + j)).collect())
            .collect();
        let query: Vec<f32> = (0..8u64).map(|j| mixed(1000 + j)).collect();
        let nn = nearest_neighbors(
            &query,
            vecs.iter().enumerate().map(|(i, v)| (i, v.as_slice())),
            vecs.len(),
        );
        let mut reference: Vec<(usize, f32)> = vecs
            .iter()
            .enumerate()
            .map(|(i, v)| (i, cosine(&query, v)))
            .collect();
        reference.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        for w in reference.windows(2) {
            assert!(
                w[0].1 - w[1].1 > 1e-4,
                "fixture cosines must be well separated, got {} vs {}",
                w[0].1,
                w[1].1
            );
        }
        let got: Vec<usize> = nn.iter().map(|n| n.item).collect();
        let want: Vec<usize> = reference.iter().map(|&(i, _)| i).collect();
        assert_eq!(got, want, "pre-normalised search must preserve the order");
    }
}
