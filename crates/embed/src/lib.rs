//! Embedding substrate for the CREDENCE reproduction.
//!
//! The paper's *Doc2Vec Nearest* instance-based explainer (§II-E) trains a
//! Doc2Vec model (Le & Mikolov 2014) over the corpus and returns the most
//! similar non-relevant documents. The original system used gensim; this
//! crate implements the same model family from scratch:
//!
//! * [`vecmath`] — dense vector primitives,
//! * [`sampling`] — the `f(w)^0.75` unigram table for negative sampling,
//! * [`word2vec`] — skip-gram with negative sampling (SGNS), used by the
//!   semantic component of the neural-ranker stand-in,
//! * [`doc2vec`] — PV-DBOW document vectors with post-hoc inference for
//!   unseen (e.g. perturbed) documents,
//! * [`nn`] — exact top-n nearest-neighbour search by cosine similarity.
//!
//! All training is deterministic given a seed.

#![warn(missing_docs)]

pub mod doc2vec;
pub mod nn;
pub mod pvdm;
pub mod sampling;
pub mod vecmath;
pub mod word2vec;

pub use doc2vec::{Doc2Vec, Doc2VecConfig};
pub use nn::{nearest_neighbors, nearest_neighbors_quantized, Neighbor, QuantizedVectors};
pub use pvdm::{PvDm, PvDmConfig};
pub use sampling::UnigramTable;
pub use vecmath::{cosine, dot, norm};
pub use word2vec::{Word2Vec, Word2VecConfig};
