//! Dense vector primitives used by the embedding trainers.
//!
//! Vectors are plain `&[f32]` slices; training matrices are flat row-major
//! `Vec<f32>` buffers, sliced per row. Everything here is branch-light and
//! inlinable — these functions sit inside the SGD inner loop.

/// Dot product of two equal-length vectors.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine similarity in `[-1, 1]`; 0 when either vector is all-zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let denom = norm(a) * norm(b);
    if denom == 0.0 {
        0.0
    } else {
        (dot(a, b) / denom).clamp(-1.0, 1.0)
    }
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// L2-normalise a vector in place; all-zero vectors are left unchanged.
pub fn normalize(v: &mut [f32]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn cosine_bounds_and_cases() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        // Symmetry: sigmoid(-x) = 1 - sigmoid(x).
        for x in [-3.0f32, -0.5, 0.7, 2.5] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-6);
        }
        // No overflow at extremes.
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }
}
