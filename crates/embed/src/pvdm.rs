//! PV-DM Doc2Vec (the "distributed memory" variant of Le & Mikolov 2014).
//!
//! The reproduction's default instance-based explainer uses PV-DBOW
//! ([`crate::doc2vec`]), matching gensim's `dm=0`. PV-DM (`dm=1`) is the
//! other published variant: the document vector is *combined with the mean
//! of the context-word vectors* to predict the centre word, so word order
//! information (through the window) and a word-embedding matrix are learned
//! jointly. It is included for completeness and for the embedding-quality
//! comparison bench; it plugs into `doc2vec_nearest`-style searches through
//! the same `doc_vector` accessor shape.

use credence_rng::rngs::StdRng;
use credence_rng::{Rng, SeedableRng};

use crate::sampling::UnigramTable;
use crate::vecmath::{axpy, cosine, dot, sigmoid};

/// Hyper-parameters for PV-DM training.
#[derive(Debug, Clone)]
pub struct PvDmConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Symmetric context window.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed).
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PvDmConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            window: 4,
            negatives: 5,
            epochs: 20,
            lr: 0.025,
            seed: 42,
        }
    }
}

/// A trained PV-DM model: document vectors, word vectors, and the shared
/// output matrix.
#[derive(Debug, Clone)]
pub struct PvDm {
    dim: usize,
    num_docs: usize,
    vocab_size: usize,
    doc_vecs: Vec<f32>,
    word_vecs: Vec<f32>,
    output: Vec<f32>,
}

impl PvDm {
    /// Train on `docs` (word-id sequences over `0..vocab_size`).
    pub fn train(docs: &[Vec<usize>], vocab_size: usize, config: &PvDmConfig) -> Self {
        assert!(config.dim > 0, "embedding dimension must be positive");
        let dim = config.dim;
        let mut counts = vec![0u64; vocab_size];
        let mut total_tokens = 0u64;
        for d in docs {
            for &w in d {
                debug_assert!(w < vocab_size, "word id {w} out of range");
                counts[w] += 1;
                total_tokens += 1;
            }
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let scale = 0.5 / dim as f32;
        let mut doc_vecs: Vec<f32> = (0..docs.len() * dim)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        let mut word_vecs: Vec<f32> = (0..vocab_size * dim)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        let mut output = vec![0.0f32; vocab_size * dim];

        if let Some(table) = UnigramTable::standard(&counts) {
            let total_steps = (total_tokens as usize).max(1) * config.epochs.max(1);
            let mut step = 0usize;
            let mut hidden = vec![0.0f32; dim];
            let mut grad = vec![0.0f32; dim];
            for _ in 0..config.epochs {
                for (doc_id, words) in docs.iter().enumerate() {
                    for (pos, &center) in words.iter().enumerate() {
                        let lr = {
                            let frac = 1.0 - step as f32 / total_steps as f32;
                            (config.lr * frac).max(config.lr * 1e-4)
                        };
                        step += 1;
                        let lo = pos.saturating_sub(config.window);
                        let hi = (pos + config.window + 1).min(words.len());
                        // hidden = mean(doc vector, context word vectors).
                        hidden.fill(0.0);
                        let mut contributors = 1usize;
                        axpy(
                            1.0,
                            &doc_vecs[doc_id * dim..(doc_id + 1) * dim],
                            &mut hidden,
                        );
                        for (ctx_pos, &w) in words.iter().enumerate().take(hi).skip(lo) {
                            if ctx_pos == pos {
                                continue;
                            }
                            axpy(1.0, &word_vecs[w * dim..(w + 1) * dim], &mut hidden);
                            contributors += 1;
                        }
                        let inv = 1.0 / contributors as f32;
                        for h in hidden.iter_mut() {
                            *h *= inv;
                        }
                        // Negative-sampling step on the hidden vector.
                        grad.fill(0.0);
                        {
                            let out = &mut output[center * dim..(center + 1) * dim];
                            let score = sigmoid(dot(&hidden, out));
                            let g = lr * (1.0 - score);
                            axpy(g, out, &mut grad);
                            axpy(g, &hidden, out);
                        }
                        for _ in 0..config.negatives {
                            let neg = table.sample(&mut rng);
                            if neg == center {
                                continue;
                            }
                            let out = &mut output[neg * dim..(neg + 1) * dim];
                            let score = sigmoid(dot(&hidden, out));
                            let g = lr * (0.0 - score);
                            axpy(g, out, &mut grad);
                            axpy(g, &hidden, out);
                        }
                        // Distribute the hidden gradient to every input.
                        let share = 1.0; // standard PV-DM applies full grad to each input
                        axpy(
                            share,
                            &grad,
                            &mut doc_vecs[doc_id * dim..(doc_id + 1) * dim],
                        );
                        for (ctx_pos, &w) in words.iter().enumerate().take(hi).skip(lo) {
                            if ctx_pos == pos {
                                continue;
                            }
                            axpy(share, &grad, &mut word_vecs[w * dim..(w + 1) * dim]);
                        }
                    }
                }
            }
        }

        Self {
            dim,
            num_docs: docs.len(),
            vocab_size,
            doc_vecs,
            word_vecs,
            output,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of trained document vectors.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Vocabulary coverage.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// The trained vector of document `doc`.
    pub fn doc_vector(&self, doc: usize) -> &[f32] {
        &self.doc_vecs[doc * self.dim..(doc + 1) * self.dim]
    }

    /// The jointly-learned word vector of `word`.
    pub fn word_vector(&self, word: usize) -> &[f32] {
        &self.word_vecs[word * self.dim..(word + 1) * self.dim]
    }

    /// The output-side vector (prediction weights) of `word`.
    pub fn output_vector(&self, word: usize) -> &[f32] {
        &self.output[word * self.dim..(word + 1) * self.dim]
    }

    /// Cosine similarity between two trained document vectors.
    pub fn similarity(&self, a: usize, b: usize) -> f32 {
        cosine(self.doc_vector(a), self.doc_vector(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_docs() -> (Vec<Vec<usize>>, usize) {
        let mut docs = Vec::new();
        for i in 0..30 {
            let base = if i < 15 { 0 } else { 6 };
            docs.push((0..30).map(|j| base + (i + j) % 6).collect());
        }
        (docs, 12)
    }

    fn quick() -> PvDmConfig {
        PvDmConfig {
            dim: 16,
            epochs: 12,
            ..Default::default()
        }
    }

    #[test]
    fn learns_document_clusters() {
        let (docs, v) = clustered_docs();
        let model = PvDm::train(&docs, v, &quick());
        let intra = model.similarity(0, 1);
        let inter = model.similarity(0, 20);
        assert!(
            intra > inter,
            "intra-cluster {intra} should exceed inter-cluster {inter}"
        );
    }

    #[test]
    fn learns_word_structure_jointly() {
        let (docs, v) = clustered_docs();
        let model = PvDm::train(&docs, v, &quick());
        // Words 0..6 co-occur; words 6..12 co-occur; across = unrelated.
        let intra = cosine(model.word_vector(0), model.word_vector(1));
        let inter = cosine(model.word_vector(0), model.word_vector(7));
        assert!(
            intra > inter,
            "intra-topic word sim {intra} should exceed inter {inter}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let (docs, v) = clustered_docs();
        let a = PvDm::train(&docs, v, &quick());
        let b = PvDm::train(&docs, v, &quick());
        assert_eq!(a.doc_vector(3), b.doc_vector(3));
        assert_eq!(a.word_vector(5), b.word_vector(5));
    }

    #[test]
    fn empty_corpus_is_safe() {
        let model = PvDm::train(&[], 4, &quick());
        assert_eq!(model.num_docs(), 0);
        assert_eq!(model.vocab_size(), 4);
        assert_eq!(model.word_vector(0).len(), model.dim());
    }

    #[test]
    fn vectors_stay_finite() {
        let (docs, v) = clustered_docs();
        let model = PvDm::train(&docs, v, &quick());
        for d in 0..model.num_docs() {
            assert!(model.doc_vector(d).iter().all(|x| x.is_finite()));
        }
        for w in 0..v {
            assert!(model.word_vector(w).iter().all(|x| x.is_finite()));
            assert!(model.output_vector(w).iter().all(|x| x.is_finite()));
        }
    }
}
