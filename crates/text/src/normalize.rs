//! Term normalisation: case folding and punctuation trimming.
//!
//! Normalisation is applied to every token before it reaches the index, the
//! rankers, or the counterfactual algorithms, so that "COVID", "Covid," and
//! "covid" all denote the same term — the behaviour the paper's running
//! example depends on (its sentence-importance heuristic counts query terms
//! *appearing in* a sentence regardless of case or adjacent punctuation).

/// Normalise a raw token into an index term.
///
/// Lowercases ASCII and Unicode alphabetics, trims leading/trailing
/// characters that are neither alphanumeric nor intra-word punctuation, and
/// preserves intra-word hyphens and apostrophes (so `covid-19` and `don't`
/// survive as single terms).
///
/// Returns an empty string when nothing survives (e.g. the token was pure
/// punctuation); callers treat that as "drop the token".
///
/// ```
/// use credence_text::normalize_term;
/// assert_eq!(normalize_term("COVID-19,"), "covid-19");
/// assert_eq!(normalize_term("\"Hello!\""), "hello");
/// assert_eq!(normalize_term("--"), "");
/// ```
pub fn normalize_term(raw: &str) -> String {
    let trimmed = raw.trim_matches(|c: char| !c.is_alphanumeric());
    let mut out = String::with_capacity(trimmed.len());
    for ch in trimmed.chars() {
        if ch.is_alphanumeric() || ch == '-' || ch == '\'' || ch == '_' {
            for lower in ch.to_lowercase() {
                out.push(lower);
            }
        }
    }
    out
}

/// Returns `true` when a normalised term is worth indexing: non-empty and
/// containing at least one alphanumeric character.
pub fn is_indexable(term: &str) -> bool {
    !term.is_empty() && term.chars().any(|c| c.is_alphanumeric())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases() {
        assert_eq!(normalize_term("Hello"), "hello");
        assert_eq!(normalize_term("WORLD"), "world");
    }

    #[test]
    fn strips_surrounding_punctuation() {
        assert_eq!(normalize_term("(covid)"), "covid");
        assert_eq!(normalize_term("outbreak."), "outbreak");
        assert_eq!(normalize_term("'quoted'"), "quoted");
    }

    #[test]
    fn preserves_intra_word_hyphen_and_apostrophe() {
        assert_eq!(normalize_term("covid-19"), "covid-19");
        assert_eq!(normalize_term("don't"), "don't");
        assert_eq!(normalize_term("state-of-the-art"), "state-of-the-art");
    }

    #[test]
    fn pure_punctuation_becomes_empty() {
        assert_eq!(normalize_term("---"), "");
        assert_eq!(normalize_term("!?"), "");
        assert_eq!(normalize_term(""), "");
    }

    #[test]
    fn digits_survive() {
        assert_eq!(normalize_term("5G"), "5g");
        assert_eq!(normalize_term("1,500"), "1500");
    }

    #[test]
    fn unicode_case_folding() {
        assert_eq!(normalize_term("Ärzte"), "ärzte");
        assert_eq!(normalize_term("ÉLITE"), "élite");
    }

    #[test]
    fn indexable_filter() {
        assert!(is_indexable("covid"));
        assert!(is_indexable("5g"));
        assert!(!is_indexable(""));
        assert!(!is_indexable("-'-"));
    }
}
