//! The Porter stemming algorithm (Porter, 1980).
//!
//! Lucene's `EnglishAnalyzer` (the default in the Anserini toolchain CREDENCE
//! builds on) applies Porter stemming before indexing. Reproducing it here
//! keeps term statistics — and therefore TF-IDF candidate-term scores in the
//! query-augmentation explainer — faithful to the original stack.
//!
//! This is a direct, well-tested implementation of the original algorithm
//! (steps 1a–5b) operating on lowercase ASCII; non-ASCII terms are returned
//! unchanged, as are terms of length ≤ 2.

/// Stem a lowercase word with the Porter algorithm.
///
/// ```
/// use credence_text::porter_stem;
/// assert_eq!(porter_stem("caresses"), "caress");
/// assert_eq!(porter_stem("ponies"), "poni");
/// assert_eq!(porter_stem("relational"), "relat");
/// assert_eq!(porter_stem("vaccination"), "vaccin");
/// ```
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut s = Stemmer {
        b: word.as_bytes().to_vec(),
    };
    s.step1a();
    s.step1b();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5a();
    s.step5b();
    String::from_utf8(s.b).expect("porter stemmer operates on ascii")
}

struct Stemmer {
    b: Vec<u8>,
}

impl Stemmer {
    fn is_consonant(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.is_consonant(i - 1)
                }
            }
            _ => true,
        }
    }

    /// Measure of the stem ending at `end` (exclusive): the number of
    /// vowel-consonant sequences \[C\](VC)^m\[V\].
    fn measure(&self, end: usize) -> usize {
        let mut m = 0;
        let mut i = 0;
        // Skip initial consonants.
        while i < end && self.is_consonant(i) {
            i += 1;
        }
        loop {
            // Skip vowels.
            while i < end && !self.is_consonant(i) {
                i += 1;
            }
            if i >= end {
                return m;
            }
            // Skip consonants.
            while i < end && self.is_consonant(i) {
                i += 1;
            }
            m += 1;
        }
    }

    fn has_vowel(&self, end: usize) -> bool {
        (0..end).any(|i| !self.is_consonant(i))
    }

    fn ends_with(&self, suffix: &str) -> bool {
        self.b.ends_with(suffix.as_bytes())
    }

    fn double_consonant(&self, i: usize) -> bool {
        i >= 1 && self.b[i] == self.b[i - 1] && self.is_consonant(i)
    }

    /// cvc pattern ending at `i`, where the final c is not w, x, or y.
    fn cvc(&self, i: usize) -> bool {
        if i < 2 || !self.is_consonant(i) || self.is_consonant(i - 1) || !self.is_consonant(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    fn replace_suffix(&mut self, suffix: &str, replacement: &str) {
        let new_len = self.b.len() - suffix.len();
        self.b.truncate(new_len);
        self.b.extend_from_slice(replacement.as_bytes());
    }

    /// If the word ends with `suffix` and the measure of the remaining stem
    /// is greater than `m`, replace the suffix. Returns true if the suffix
    /// matched (whether or not replaced).
    fn try_rule(&mut self, suffix: &str, replacement: &str, m: usize) -> bool {
        if self.ends_with(suffix) {
            let stem_len = self.b.len() - suffix.len();
            if self.measure(stem_len) > m {
                self.replace_suffix(suffix, replacement);
            }
            true
        } else {
            false
        }
    }

    fn step1a(&mut self) {
        if self.ends_with("sses") {
            self.replace_suffix("sses", "ss");
        } else if self.ends_with("ies") {
            self.replace_suffix("ies", "i");
        } else if self.ends_with("ss") {
            // unchanged
        } else if self.ends_with("s") && self.b.len() > 1 {
            self.b.pop();
        }
    }

    fn step1b(&mut self) {
        let mut cleanup = false;
        if self.ends_with("eed") {
            let stem_len = self.b.len() - 3;
            if self.measure(stem_len) > 0 {
                self.b.pop();
            }
        } else if self.ends_with("ed") {
            let stem_len = self.b.len() - 2;
            if self.has_vowel(stem_len) {
                self.b.truncate(stem_len);
                cleanup = true;
            }
        } else if self.ends_with("ing") {
            let stem_len = self.b.len() - 3;
            if self.has_vowel(stem_len) {
                self.b.truncate(stem_len);
                cleanup = true;
            }
        }
        if cleanup {
            if self.ends_with("at") || self.ends_with("bl") || self.ends_with("iz") {
                self.b.push(b'e');
            } else if !self.b.is_empty() && self.double_consonant(self.b.len() - 1) {
                let last = *self.b.last().unwrap();
                if !matches!(last, b'l' | b's' | b'z') {
                    self.b.pop();
                }
            } else if self.measure(self.b.len()) == 1 && self.cvc(self.b.len() - 1) {
                self.b.push(b'e');
            }
        }
    }

    fn step1c(&mut self) {
        if self.ends_with("y") && self.has_vowel(self.b.len() - 1) {
            let n = self.b.len();
            self.b[n - 1] = b'i';
        }
    }

    fn step2(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("ational", "ate"),
            ("tional", "tion"),
            ("enci", "ence"),
            ("anci", "ance"),
            ("izer", "ize"),
            ("abli", "able"),
            ("alli", "al"),
            ("entli", "ent"),
            ("eli", "e"),
            ("ousli", "ous"),
            ("ization", "ize"),
            ("ation", "ate"),
            ("ator", "ate"),
            ("alism", "al"),
            ("iveness", "ive"),
            ("fulness", "ful"),
            ("ousness", "ous"),
            ("aliti", "al"),
            ("iviti", "ive"),
            ("biliti", "ble"),
        ];
        for (suffix, replacement) in RULES {
            if self.try_rule(suffix, replacement, 0) {
                return;
            }
        }
    }

    fn step3(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("icate", "ic"),
            ("ative", ""),
            ("alize", "al"),
            ("iciti", "ic"),
            ("ical", "ic"),
            ("ful", ""),
            ("ness", ""),
        ];
        for (suffix, replacement) in RULES {
            if self.try_rule(suffix, replacement, 0) {
                return;
            }
        }
    }

    fn step4(&mut self) {
        const SUFFIXES: &[&str] = &[
            "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
            "ism", "ate", "iti", "ous", "ive", "ize",
        ];
        // "ion" requires a preceding s or t.
        if self.ends_with("ion") {
            let stem_len = self.b.len() - 3;
            if stem_len > 0
                && matches!(self.b[stem_len - 1], b's' | b't')
                && self.measure(stem_len) > 1
            {
                self.b.truncate(stem_len);
            }
            return;
        }
        for suffix in SUFFIXES {
            if self.ends_with(suffix) {
                let stem_len = self.b.len() - suffix.len();
                if self.measure(stem_len) > 1 {
                    self.b.truncate(stem_len);
                }
                return;
            }
        }
    }

    fn step5a(&mut self) {
        if self.ends_with("e") {
            let stem_len = self.b.len() - 1;
            let m = self.measure(stem_len);
            if m > 1 || (m == 1 && !(stem_len > 0 && self.cvc(stem_len - 1))) {
                self.b.pop();
            }
        }
    }

    fn step5b(&mut self) {
        let n = self.b.len();
        if n > 1 && self.b[n - 1] == b'l' && self.double_consonant(n - 1) && self.measure(n) > 1 {
            self.b.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic vocabulary drawn from Porter's published examples.
    #[test]
    fn porter_reference_cases() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(porter_stem(input), expected, "stem({input})");
        }
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(porter_stem("a"), "a");
        assert_eq!(porter_stem("is"), "is");
        assert_eq!(porter_stem("5g"), "5g");
    }

    #[test]
    fn non_ascii_untouched() {
        assert_eq!(porter_stem("café"), "café");
        assert_eq!(porter_stem("covid-19"), "covid-19");
    }

    #[test]
    fn domain_terms() {
        assert_eq!(porter_stem("vaccination"), "vaccin");
        assert_eq!(porter_stem("vaccinated"), "vaccin");
        assert_eq!(porter_stem("vaccines"), "vaccin");
        assert_eq!(porter_stem("tracking"), "track");
        assert_eq!(porter_stem("outbreaks"), "outbreak");
        assert_eq!(porter_stem("microchips"), "microchip");
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        for w in [
            "ranking",
            "documents",
            "queries",
            "explanations",
            "counterfactual",
        ] {
            let once = porter_stem(w);
            let twice = porter_stem(&once);
            // Porter is not idempotent in general, but these common cases are.
            assert_eq!(porter_stem(&twice), twice);
        }
    }
}
