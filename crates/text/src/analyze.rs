//! The analysis pipeline: tokenise → normalise → stop-filter → stem.
//!
//! Equivalent to a Lucene `Analyzer`; every component is individually
//! switchable so tests and ablations can isolate effects. Two standard
//! configurations matter in this reproduction:
//!
//! * [`Analyzer::english`] — stopword removal + Porter stemming, used by the
//!   index and the TF-IDF statistics (matches Anserini's default).
//! * [`Analyzer::matching`] — no stopwords, no stemming, used by the
//!   sentence-importance heuristic of §II-C, which counts literal query-term
//!   occurrences in sentences.

use crate::stem::porter_stem;
use crate::stopwords::is_stopword;
use crate::token::{tokenize, Token};

/// Switches for the analysis pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyzeOptions {
    /// Drop stopwords after normalisation.
    pub remove_stopwords: bool,
    /// Apply Porter stemming to surviving terms.
    pub stem: bool,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        Self {
            remove_stopwords: true,
            stem: true,
        }
    }
}

/// A configured analysis pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Analyzer {
    options: AnalyzeOptions,
}

impl Analyzer {
    /// Construct with explicit options.
    pub fn new(options: AnalyzeOptions) -> Self {
        Self { options }
    }

    /// Full English analysis: stopword removal and Porter stemming.
    pub fn english() -> Self {
        Self::new(AnalyzeOptions {
            remove_stopwords: true,
            stem: true,
        })
    }

    /// Literal-matching analysis: normalisation only. Used where the paper
    /// reasons about surface terms (sentence importance scores, the builder's
    /// term replacement).
    pub fn matching() -> Self {
        Self::new(AnalyzeOptions {
            remove_stopwords: false,
            stem: false,
        })
    }

    /// Stopword removal without stemming.
    pub fn unstemmed() -> Self {
        Self::new(AnalyzeOptions {
            remove_stopwords: true,
            stem: false,
        })
    }

    /// The options this analyzer was built with.
    pub fn options(&self) -> AnalyzeOptions {
        self.options
    }

    /// Analyse `text` into terms.
    pub fn analyze(&self, text: &str) -> Vec<String> {
        self.analyze_tokens(text)
            .into_iter()
            .map(|t| t.term)
            .collect()
    }

    /// Analyse `text` keeping token offsets. The `term` field of each token
    /// holds the fully processed (possibly stemmed) term; `raw` and the span
    /// still reference the original text.
    pub fn analyze_tokens(&self, text: &str) -> Vec<Token> {
        let mut out = Vec::new();
        for mut tok in tokenize(text) {
            if self.options.remove_stopwords && is_stopword(&tok.term) {
                continue;
            }
            if self.options.stem {
                tok.term = porter_stem(&tok.term);
            }
            tok.position = out.len();
            out.push(tok);
        }
        out
    }

    /// Analyse a single already-tokenised term (normalisation is assumed done).
    pub fn analyze_term(&self, term: &str) -> Option<String> {
        if self.options.remove_stopwords && is_stopword(term) {
            return None;
        }
        Some(if self.options.stem {
            porter_stem(term)
        } else {
            term.to_string()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn english_pipeline_stems_and_stops() {
        let a = Analyzer::english();
        let terms = a.analyze("The vaccines are tracking the outbreaks!");
        assert_eq!(terms, vec!["vaccin", "track", "outbreak"]);
    }

    #[test]
    fn matching_pipeline_preserves_surface_terms() {
        let a = Analyzer::matching();
        let terms = a.analyze("The vaccines are tracking the outbreaks!");
        assert_eq!(
            terms,
            vec!["the", "vaccines", "are", "tracking", "the", "outbreaks"]
        );
    }

    #[test]
    fn unstemmed_pipeline() {
        let a = Analyzer::unstemmed();
        let terms = a.analyze("The vaccines are tracking!");
        assert_eq!(terms, vec!["vaccines", "tracking"]);
    }

    #[test]
    fn token_positions_recomputed_after_filtering() {
        let a = Analyzer::english();
        let toks = a.analyze_tokens("the quick the brown");
        let positions: Vec<usize> = toks.iter().map(|t| t.position).collect();
        assert_eq!(positions, vec![0, 1]);
        assert_eq!(toks[0].term, "quick");
    }

    #[test]
    fn offsets_still_reference_source() {
        let text = "Vaccines TRACKING everyone.";
        let a = Analyzer::english();
        for tok in a.analyze_tokens(text) {
            assert_eq!(&text[tok.start..tok.end], tok.raw);
        }
    }

    #[test]
    fn analyze_term_filters_stopwords() {
        let a = Analyzer::english();
        assert_eq!(a.analyze_term("the"), None);
        assert_eq!(a.analyze_term("tracking"), Some("track".to_string()));
        let m = Analyzer::matching();
        assert_eq!(m.analyze_term("the"), Some("the".to_string()));
    }

    #[test]
    fn empty_text() {
        assert!(Analyzer::english().analyze("").is_empty());
    }
}
