//! Bigram collocation detection.
//!
//! The demo's Figure 3 surfaces multi-word cues like *bill gates*; this
//! module finds such statistically-bound adjacent pairs with the phrase
//! score of Mikolov et al. (2013):
//!
//! ```text
//! score(a, b) = (count(ab) − δ) · N / (count(a) · count(b))
//! ```
//!
//! where `N` is the token count and `δ` discounts rare accidents. Pairs
//! scoring above a threshold are collocations. Used by the CLI's corpus
//! analysis and available to any candidate generator that wants multi-word
//! units.

use std::collections::HashMap;

/// A detected collocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Collocation {
    /// First term.
    pub a: String,
    /// Second term.
    pub b: String,
    /// Number of adjacent occurrences.
    pub count: u32,
    /// The phrase score (higher = more strongly bound).
    pub score: f64,
}

/// Parameters for collocation detection.
#[derive(Debug, Clone, Copy)]
pub struct PhraseConfig {
    /// Minimum adjacent-pair count.
    pub min_count: u32,
    /// Discount `δ` applied to the pair count.
    pub discount: f64,
    /// Minimum phrase score to report.
    pub threshold: f64,
}

impl Default for PhraseConfig {
    fn default() -> Self {
        Self {
            min_count: 2,
            discount: 1.0,
            threshold: 2.0,
        }
    }
}

/// Detect collocations over token sequences (one per sentence/document).
/// Pairs never span sequence boundaries. Results are sorted by score
/// descending, ties by `(a, b)`.
pub fn find_collocations(sequences: &[Vec<String>], config: &PhraseConfig) -> Vec<Collocation> {
    let mut unigrams: HashMap<&str, u32> = HashMap::new();
    let mut bigrams: HashMap<(&str, &str), u32> = HashMap::new();
    let mut total = 0u64;
    for seq in sequences {
        for w in seq {
            *unigrams.entry(w.as_str()).or_insert(0) += 1;
            total += 1;
        }
        for pair in seq.windows(2) {
            *bigrams
                .entry((pair[0].as_str(), pair[1].as_str()))
                .or_insert(0) += 1;
        }
    }
    if total == 0 {
        return Vec::new();
    }
    let mut out: Vec<Collocation> = bigrams
        .into_iter()
        .filter(|&(_, c)| c >= config.min_count)
        .filter_map(|((a, b), count)| {
            let ca = unigrams[a] as f64;
            let cb = unigrams[b] as f64;
            let score = (count as f64 - config.discount).max(0.0) * total as f64 / (ca * cb);
            (score >= config.threshold).then(|| Collocation {
                a: a.to_string(),
                b: b.to_string(),
                count,
                score,
            })
        })
        .collect();
    out.sort_by(|x, y| {
        y.score
            .partial_cmp(&x.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (x.a.as_str(), x.b.as_str()).cmp(&(y.a.as_str(), y.b.as_str())))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(texts: &[&str]) -> Vec<Vec<String>> {
        texts
            .iter()
            .map(|t| t.split_whitespace().map(str::to_string).collect())
            .collect()
    }

    #[test]
    fn bound_pair_detected() {
        // "bill gates" always adjacent; "the ... the" everywhere else.
        let sequences = seqs(&[
            "bill gates spoke today",
            "people quoted bill gates again",
            "bill gates funds research",
            "research continues quietly today",
            "people spoke quietly again",
        ]);
        let collocations = find_collocations(&sequences, &PhraseConfig::default());
        assert!(!collocations.is_empty());
        assert_eq!(collocations[0].a, "bill");
        assert_eq!(collocations[0].b, "gates");
        assert_eq!(collocations[0].count, 3);
    }

    #[test]
    fn frequent_but_unbound_pairs_rejected() {
        // "a b" occurs, but both words are everywhere: low score.
        let sequences = seqs(&[
            "a b c d", "a c b d", "b a d c", "c a d b", "a b d c", "d a c b",
        ]);
        let collocations = find_collocations(
            &sequences,
            &PhraseConfig {
                threshold: 5.0,
                ..Default::default()
            },
        );
        assert!(
            collocations.iter().all(|c| !(c.a == "a" && c.b == "b")),
            "{collocations:?}"
        );
    }

    #[test]
    fn min_count_filters_singletons() {
        let sequences = seqs(&["rare pair here", "nothing else matches at all"]);
        let collocations = find_collocations(&sequences, &PhraseConfig::default());
        assert!(collocations.is_empty(), "single occurrence filtered");
    }

    #[test]
    fn pairs_do_not_span_sequences() {
        let sequences = seqs(&["alpha", "beta", "alpha", "beta", "alpha", "beta"]);
        let collocations = find_collocations(
            &sequences,
            &PhraseConfig {
                min_count: 1,
                threshold: 0.0,
                ..Default::default()
            },
        );
        assert!(collocations.is_empty(), "one-token sequences have no pairs");
    }

    #[test]
    fn empty_input() {
        assert!(find_collocations(&[], &PhraseConfig::default()).is_empty());
        assert!(find_collocations(&[vec![]], &PhraseConfig::default()).is_empty());
    }

    #[test]
    fn results_sorted_by_score() {
        let sequences = seqs(&[
            "bill gates bill gates bill gates",
            "new york new york",
            "some filler words here",
        ]);
        let collocations = find_collocations(
            &sequences,
            &PhraseConfig {
                min_count: 2,
                threshold: 0.0,
                ..Default::default()
            },
        );
        assert!(collocations.windows(2).all(|w| w[0].score >= w[1].score));
    }
}
