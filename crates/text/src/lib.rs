//! Text-processing substrate for the CREDENCE reproduction.
//!
//! The original CREDENCE system delegated lexical analysis to Lucene (via
//! Pyserini/Anserini). This crate rebuilds the parts of that stack the
//! counterfactual algorithms rely on:
//!
//! * [`tokenize`] — offset-preserving word tokenisation,
//! * [`sentence`] — sentence segmentation (the unit of perturbation for
//!   counterfactual *document* explanations, §II-C of the paper),
//! * [`stem`] — the classic Porter stemmer, mirroring Lucene's
//!   `PorterStemFilter`,
//! * [`stopwords`] — a standard English stop list,
//! * [`vocab`] — string interning so the index and the embedding/topic models
//!   can work with dense `u32` term ids,
//! * [`analyze`] — a configurable pipeline composing the above, equivalent to
//!   a Lucene `Analyzer`.
//!
//! Everything is deterministic and allocation-conscious; the analyzers are the
//! innermost loop of both indexing and counterfactual search.

#![warn(missing_docs)]

pub mod analyze;
pub mod normalize;
pub mod phrase;
pub mod sentence;
pub mod stem;
pub mod stopwords;
pub mod token;
pub mod vocab;

pub use analyze::{AnalyzeOptions, Analyzer};
pub use normalize::normalize_term;
pub use phrase::{find_collocations, Collocation, PhraseConfig};
pub use sentence::{split_sentences, Sentence};
pub use stem::porter_stem;
pub use stopwords::{is_stopword, STOPWORDS};
pub use token::{tokenize, Token};
pub use vocab::{TermId, Vocabulary};
