//! Offset-preserving word tokenisation.
//!
//! A token is a maximal run of word characters (alphanumerics plus intra-word
//! `-`, `'`, `_`). Byte offsets into the original text are preserved so the
//! explanation UIs (and the build-your-own counterfactual editor) can map
//! terms back to the exact spans they came from — the paper renders removed
//! sentences with strikethrough over the *original* document body.

use crate::normalize::{is_indexable, normalize_term};

/// A single token with its span in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The normalised term (lowercased, punctuation-trimmed).
    pub term: String,
    /// The raw text of the token exactly as it appeared.
    pub raw: String,
    /// Byte offset of the first byte of the token in the source.
    pub start: usize,
    /// Byte offset one past the last byte of the token in the source.
    pub end: usize,
    /// Zero-based position of the token in the token stream.
    pub position: usize,
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '-' || c == '\'' || c == '_'
}

/// Tokenise `text` into normalised word tokens with byte offsets.
///
/// Tokens that normalise to the empty string (pure punctuation runs such as
/// `--`) are dropped; `position` counts only surviving tokens.
///
/// ```
/// use credence_text::tokenize;
/// let toks = tokenize("COVID-19 outbreak!");
/// assert_eq!(toks.len(), 2);
/// assert_eq!(toks[0].term, "covid-19");
/// assert_eq!(toks[1].term, "outbreak");
/// assert_eq!(&"COVID-19 outbreak!"[toks[1].start..toks[1].end], "outbreak");
/// ```
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut chars = text.char_indices().peekable();
    let mut position = 0usize;
    while let Some(&(start, c)) = chars.peek() {
        if !is_word_char(c) {
            chars.next();
            continue;
        }
        let mut end = start;
        while let Some(&(i, c)) = chars.peek() {
            if is_word_char(c) {
                end = i + c.len_utf8();
                chars.next();
            } else {
                break;
            }
        }
        let raw = &text[start..end];
        let term = normalize_term(raw);
        if is_indexable(&term) {
            tokens.push(Token {
                term,
                raw: raw.to_string(),
                start,
                end,
                position,
            });
            position += 1;
        }
    }
    tokens
}

/// Convenience: tokenise and return just the normalised terms.
pub fn terms(text: &str) -> Vec<String> {
    tokenize(text).into_iter().map(|t| t.term).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n").is_empty());
        assert!(tokenize("?!.,;:").is_empty());
    }

    #[test]
    fn simple_sentence() {
        let t = terms("The quick brown fox.");
        assert_eq!(t, vec!["the", "quick", "brown", "fox"]);
    }

    #[test]
    fn offsets_round_trip() {
        let text = "Ärzte warn: COVID-19 spreads fast, very fast!";
        for tok in tokenize(text) {
            assert_eq!(&text[tok.start..tok.end], tok.raw);
        }
    }

    #[test]
    fn positions_are_dense_and_ordered() {
        let toks = tokenize("one -- two --- three");
        let pos: Vec<usize> = toks.iter().map(|t| t.position).collect();
        assert_eq!(pos, vec![0, 1, 2]);
        assert_eq!(toks[1].term, "two");
    }

    #[test]
    fn hyphenated_and_numeric_terms() {
        let t = terms("5G covid-19 1500");
        assert_eq!(t, vec!["5g", "covid-19", "1500"]);
    }

    #[test]
    fn pure_hyphen_runs_are_dropped() {
        let t = terms("a --- b");
        assert_eq!(t, vec!["a", "b"]);
    }

    #[test]
    fn multibyte_boundaries() {
        let text = "naïve café — résumé";
        let t = terms(text);
        assert_eq!(t, vec!["naïve", "café", "résumé"]);
    }
}
