//! String interning: a bidirectional map between terms and dense ids.
//!
//! The inverted index, the embedding models, and the LDA sampler all operate
//! on dense `u32` term ids rather than strings; this mirrors Lucene's term
//! dictionary and keeps the hot loops allocation-free.

use std::collections::HashMap;

/// Dense identifier for an interned term.
pub type TermId = u32;

/// An append-only interned vocabulary.
///
/// ```
/// use credence_text::Vocabulary;
/// let mut v = Vocabulary::new();
/// let covid = v.intern("covid");
/// assert_eq!(v.intern("covid"), covid);
/// assert_eq!(v.term(covid), Some("covid"));
/// assert_eq!(v.len(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    terms: Vec<String>,
    ids: HashMap<String, TermId>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty vocabulary with capacity for `n` terms.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            terms: Vec::with_capacity(n),
            ids: HashMap::with_capacity(n),
        }
    }

    /// Interns `term`, returning its id. Idempotent.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = TermId::try_from(self.terms.len()).expect("vocabulary exceeds u32 capacity");
        self.terms.push(term.to_string());
        self.ids.insert(term.to_string(), id);
        id
    }

    /// Looks up the id of an already-interned term.
    pub fn id(&self, term: &str) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Looks up the term string for an id.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id as usize).map(String::as_str)
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (i as TermId, t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("alpha");
        let b = v.intern("beta");
        assert_ne!(a, b);
        assert_eq!(v.intern("alpha"), a);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocabulary::new();
        for (i, t) in ["a", "b", "c", "d"].iter().enumerate() {
            assert_eq!(v.intern(t) as usize, i);
        }
    }

    #[test]
    fn round_trip() {
        let mut v = Vocabulary::new();
        let id = v.intern("covid");
        assert_eq!(v.term(id), Some("covid"));
        assert_eq!(v.id("covid"), Some(id));
        assert_eq!(v.id("missing"), None);
        assert_eq!(v.term(999), None);
    }

    #[test]
    fn iteration_order_matches_ids() {
        let mut v = Vocabulary::new();
        v.intern("x");
        v.intern("y");
        let collected: Vec<(TermId, String)> = v.iter().map(|(i, t)| (i, t.to_string())).collect();
        assert_eq!(collected, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }

    #[test]
    fn empty_state() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }
}
