//! Sentence segmentation.
//!
//! Sentences are the perturbation unit for counterfactual *document*
//! explanations (§II-C): CREDENCE removes whole sentences so that perturbed
//! documents remain grammatical. This splitter is rule-based, matching the
//! behaviour of the NLTK-style splitters used in IR pipelines closely enough
//! for the algorithm: it splits on `.`, `!`, `?` followed by whitespace and
//! an uppercase/digit start, while protecting common abbreviations, initials,
//! decimal numbers, and ellipses.

/// A sentence with its byte span in the source document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sentence {
    /// The sentence text, trimmed of surrounding whitespace.
    pub text: String,
    /// Byte offset of the first byte of the (trimmed) sentence.
    pub start: usize,
    /// Byte offset one past the last byte of the (trimmed) sentence.
    pub end: usize,
    /// Zero-based sentence index within the document.
    pub index: usize,
}

const ABBREVIATIONS: &[&str] = &[
    "mr", "mrs", "ms", "dr", "prof", "sr", "jr", "st", "vs", "etc", "e.g", "i.e", "fig", "no",
    "inc", "ltd", "co", "corp", "dept", "univ", "assn", "approx", "est", "min", "max", "vol",
    "u.s", "u.k", "u.n", "ph.d", "m.d", "b.a", "m.a", "a.m", "p.m", "jan", "feb", "mar", "apr",
    "jun", "jul", "aug", "sep", "sept", "oct", "nov", "dec",
];

fn word_before(text: &str, idx: usize) -> &str {
    let bytes = text.as_bytes();
    let mut start = idx;
    while start > 0 {
        let c = bytes[start - 1];
        if c.is_ascii_alphanumeric() || c == b'.' {
            start -= 1;
        } else {
            break;
        }
    }
    &text[start..idx]
}

fn is_abbreviation(text: &str, dot_idx: usize) -> bool {
    let word = word_before(text, dot_idx).to_ascii_lowercase();
    if word.is_empty() {
        return false;
    }
    // Single-letter initials like "J." in "J. Smith".
    if word.len() == 1 && word.chars().next().is_some_and(|c| c.is_ascii_alphabetic()) {
        return true;
    }
    // Internal-dot abbreviations ("u.s", "e.g") or listed abbreviations.
    let trimmed = word.trim_end_matches('.');
    ABBREVIATIONS.contains(&trimmed)
}

/// Split `text` into sentences.
///
/// Empty/whitespace-only input yields an empty vector. Newline pairs
/// (paragraph breaks) always end a sentence even without terminal
/// punctuation, so list-like fake-news documents split sensibly.
///
/// ```
/// use credence_text::split_sentences;
/// let s = split_sentences("Dr. Smith warned us. The outbreak grew!");
/// assert_eq!(s.len(), 2);
/// assert_eq!(s[0].text, "Dr. Smith warned us.");
/// ```
pub fn split_sentences(text: &str) -> Vec<Sentence> {
    let mut boundaries: Vec<usize> = Vec::new();
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let n = chars.len();
    for i in 0..n {
        let (idx, c) = chars[i];
        match c {
            '.' | '!' | '?' => {
                // Swallow runs of terminal punctuation ("?!", "...").
                if i + 1 < n {
                    let next = chars[i + 1].1;
                    if next == '.' || next == '!' || next == '?' {
                        continue;
                    }
                }
                if c == '.' {
                    // Decimal number: 3.14
                    let prev_digit =
                        i > 0 && chars[i - 1].1.is_ascii_digit();
                    let next_digit =
                        i + 1 < n && chars[i + 1].1.is_ascii_digit();
                    if prev_digit && next_digit {
                        continue;
                    }
                    if is_abbreviation(text, idx) {
                        continue;
                    }
                }
                // Skip trailing closers (quotes/brackets) after the punctuation.
                let mut j = i + 1;
                while j < n && matches!(chars[j].1, '"' | '\'' | ')' | ']' | '”' | '’') {
                    j += 1;
                }
                if j >= n {
                    boundaries.push(text.len());
                    continue;
                }
                // Require whitespace, then (for '.') a plausible sentence start.
                if !chars[j].1.is_whitespace() {
                    continue;
                }
                let mut k = j;
                while k < n && chars[k].1.is_whitespace() {
                    k += 1;
                }
                if k >= n {
                    boundaries.push(text.len());
                    continue;
                }
                let start_char = chars[k].1;
                let plausible_start = start_char.is_uppercase()
                    || start_char.is_ascii_digit()
                    || matches!(start_char, '"' | '\'' | '(' | '[' | '“' | '‘');
                if c != '.' || plausible_start {
                    boundaries.push(chars[j].0);
                }
            }
            '\n'
                // Paragraph break: blank line ends a sentence.
                if i + 1 < n && chars[i + 1].1 == '\n' => {
                    boundaries.push(idx);
                }
            _ => {}
        }
    }
    boundaries.push(text.len());
    boundaries.dedup();

    let mut sentences = Vec::new();
    let mut prev = 0usize;
    for &b in &boundaries {
        if b < prev {
            continue;
        }
        let raw = &text[prev..b];
        let trimmed = raw.trim();
        if !trimmed.is_empty() {
            let lead = raw.len() - raw.trim_start().len();
            let start = prev + lead;
            let end = start + trimmed.len();
            sentences.push(Sentence {
                text: trimmed.to_string(),
                start,
                end,
                index: sentences.len(),
            });
        }
        prev = b;
    }
    sentences
}

/// Reassemble a document body from a subset of its sentences, preserving the
/// original sentence order. This is how §II-C materialises a perturbed
/// document after removing a candidate sentence subset.
pub fn join_sentences<'a, I>(sentences: I) -> String
where
    I: IntoIterator<Item = &'a Sentence>,
{
    let mut out = String::new();
    for s in sentences {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&s.text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("   \n\n  ").is_empty());
    }

    #[test]
    fn single_sentence_without_terminal() {
        let s = split_sentences("no terminal punctuation here");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].text, "no terminal punctuation here");
    }

    #[test]
    fn basic_split() {
        let s = split_sentences("First sentence. Second sentence! Third?");
        let texts: Vec<&str> = s.iter().map(|s| s.text.as_str()).collect();
        assert_eq!(texts, vec!["First sentence.", "Second sentence!", "Third?"]);
    }

    #[test]
    fn abbreviations_do_not_split() {
        let s = split_sentences("Dr. Smith and Mr. Jones met at 3 p.m. yesterday. They left.");
        assert_eq!(s.len(), 2);
        assert!(s[0].text.starts_with("Dr. Smith"));
    }

    #[test]
    fn decimals_do_not_split() {
        let s = split_sentences("Growth was 3.14 percent. It fell later.");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].text, "Growth was 3.14 percent.");
    }

    #[test]
    fn initials_do_not_split() {
        let s = split_sentences("J. K. Rowling wrote it. We read it.");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn ellipsis_splits_once() {
        let s = split_sentences("He paused... Then he spoke.");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].text, "He paused...");
    }

    #[test]
    fn question_and_exclamation_runs() {
        let s = split_sentences("Really?! Yes. Amazing!!! Indeed.");
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn spans_match_source() {
        let text = "Alpha beta. Gamma delta! Epsilon?";
        for s in split_sentences(text) {
            assert_eq!(&text[s.start..s.end], s.text);
        }
    }

    #[test]
    fn paragraph_breaks_split() {
        let s = split_sentences("Heading without period\n\nBody sentence here.");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].text, "Heading without period");
    }

    #[test]
    fn indices_are_sequential() {
        let s = split_sentences("A. B. C. One two. Three four. Five six.");
        for (i, sent) in s.iter().enumerate() {
            assert_eq!(sent.index, i);
        }
    }

    #[test]
    fn quote_after_terminal() {
        let s = split_sentences("\"It is over.\" She left.");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].text, "\"It is over.\"");
    }

    #[test]
    fn join_preserves_order() {
        let s = split_sentences("One two. Three four. Five six.");
        let joined = join_sentences(s.iter().filter(|x| x.index != 1));
        assert_eq!(joined, "One two. Five six.");
    }

    #[test]
    fn lowercase_after_period_does_not_split() {
        // "e.g. something" style continuations with lowercase starts.
        let s = split_sentences("The term no. 5 appears often in vol. 3 of the series.");
        assert_eq!(s.len(), 1);
    }
}
