//! English stop list.
//!
//! Mirrors the union of Lucene's `EnglishAnalyzer` default stop set with the
//! classic SMART additions used throughout IR research. Stopwords are removed
//! before indexing and before TF-IDF candidate-term scoring in the
//! query-augmentation explainer (§II-D) — appending "the" to a query should
//! never be proposed as an explanation.

/// The stop list, sorted, lowercase. Binary-searchable.
pub const STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "also",
    "am",
    "an",
    "and",
    "any",
    "are",
    "aren't",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "can't",
    "cannot",
    "could",
    "couldn't",
    "did",
    "didn't",
    "do",
    "does",
    "doesn't",
    "doing",
    "don't",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "hadn't",
    "has",
    "hasn't",
    "have",
    "haven't",
    "having",
    "he",
    "he'd",
    "he'll",
    "he's",
    "her",
    "here",
    "here's",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "how's",
    "i",
    "i'd",
    "i'll",
    "i'm",
    "i've",
    "if",
    "in",
    "into",
    "is",
    "isn't",
    "it",
    "it's",
    "its",
    "itself",
    "just",
    "let's",
    "may",
    "me",
    "might",
    "more",
    "most",
    "must",
    "mustn't",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "shall",
    "shan't",
    "she",
    "she'd",
    "she'll",
    "she's",
    "should",
    "shouldn't",
    "so",
    "some",
    "such",
    "than",
    "that",
    "that's",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "there's",
    "these",
    "they",
    "they'd",
    "they'll",
    "they're",
    "they've",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "upon",
    "us",
    "very",
    "was",
    "wasn't",
    "we",
    "we'd",
    "we'll",
    "we're",
    "we've",
    "were",
    "weren't",
    "what",
    "what's",
    "when",
    "when's",
    "where",
    "where's",
    "which",
    "while",
    "who",
    "who's",
    "whom",
    "whose",
    "why",
    "why's",
    "will",
    "with",
    "won't",
    "would",
    "wouldn't",
    "you",
    "you'd",
    "you'll",
    "you're",
    "you've",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Returns `true` when `term` (already normalised to lowercase) is a stopword.
///
/// ```
/// use credence_text::is_stopword;
/// assert!(is_stopword("the"));
/// assert!(!is_stopword("covid"));
/// ```
pub fn is_stopword(term: &str) -> bool {
    STOPWORDS.binary_search(&term).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_deduped() {
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "stoplist out of order near {:?}", w);
        }
    }

    #[test]
    fn common_stopwords_detected() {
        for w in ["the", "a", "and", "is", "of", "to", "in", "that", "it"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_pass() {
        for w in ["covid", "outbreak", "5g", "microchip", "vaccine", "ranking"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn lookup_is_case_sensitive_by_contract() {
        // Callers must normalise first; uppercase is not matched.
        assert!(!is_stopword("The"));
    }
}
