//! Bench: the extension substrates — RM3 expansion, phrase
//! search, index persistence, parallel ranking crossover.

use credence_bench::synth_index;
use credence_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use credence_index::{read_index, search_phrase, write_index, Bm25Params};
use credence_rank::{rank_corpus, rank_corpus_parallel, Bm25Ranker, Rm3Config, Rm3Ranker};

fn bench_rm3_expansion(c: &mut Criterion) {
    let (corpus, index) = synth_index(300, 7);
    let rm3 = Rm3Ranker::new(&index, Rm3Config::default());
    let query = corpus.topic_query(0, 3);
    c.bench_function("substrates/rm3_expand", |b| {
        b.iter(|| rm3.expand(&query));
    });
}

fn bench_phrase_search(c: &mut Criterion) {
    let (_, index) = synth_index(300, 7);
    c.bench_function("substrates/phrase_search", |b| {
        b.iter(|| search_phrase(&index, Bm25Params::default(), "topic0word0 topic0word1", 10));
    });
}

fn bench_persistence(c: &mut Criterion) {
    let (_, index) = synth_index(300, 7);
    let mut buf = Vec::new();
    write_index(&index, &mut buf).unwrap();
    let mut group = c.benchmark_group("substrates/persist");
    group.sample_size(20);
    group.bench_function("write", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            write_index(&index, &mut out).unwrap();
            out.len()
        });
    });
    group.bench_function("read", |b| {
        b.iter(|| read_index(buf.as_slice()).unwrap().num_docs());
    });
    group.finish();
}

fn bench_parallel_ranking(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/rank_parallel");
    group.sample_size(20);
    for &n in &[300usize, 1000] {
        let (corpus, index) = synth_index(n, 7);
        let ranker = Bm25Ranker::new(&index, Bm25Params::default());
        let query = corpus.topic_query(0, 3);
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| rank_corpus(&ranker, &query));
        });
        group.bench_with_input(BenchmarkId::new("threads4", n), &n, |b, _| {
            b.iter(|| rank_corpus_parallel(&ranker, &query, 4));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rm3_expansion,
    bench_phrase_search,
    bench_persistence,
    bench_parallel_ranking
);
criterion_main!(benches);
