//! Bench: the Figure-2 sentence-removal explanation on the demo
//! corpus, plus its scaling in document length (sentences).

use credence_bench::DemoSetup;
use credence_bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use credence_core::{explain_sentence_removal, EvalOptions, SearchBudget, SentenceRemovalConfig};
use credence_index::{Bm25Params, DocId, Document, InvertedIndex};
use credence_rank::Bm25Ranker;
use credence_text::Analyzer;

fn bench_figure2(c: &mut Criterion) {
    let setup = DemoSetup::build();
    let ranker = setup.ranker();
    let fake = DocId(setup.demo.fake_news as u32);
    c.bench_function("sentence_removal/figure2", |b| {
        b.iter(|| {
            explain_sentence_removal(
                &ranker,
                setup.demo.query,
                setup.demo.k,
                fake,
                &SentenceRemovalConfig::default(),
            )
            .unwrap()
        });
    });
}

/// A document whose relevance is spread over `s` sentences, two of which
/// carry the query terms.
fn long_doc_corpus(sentences: usize) -> InvertedIndex {
    let mut body = String::from("The covid outbreak begins here. ");
    for i in 0..sentences.saturating_sub(2) {
        body.push_str(&format!(
            "Filler sentence number {i} talks about daily life. "
        ));
    }
    body.push_str("The covid outbreak ends here.");
    let mut docs = vec![Document::from_body(body)];
    for i in 0..12 {
        docs.push(Document::from_body(format!(
            "covid outbreak report number {i} with several extra words to pad the length of \
             this story for realistic normalisation."
        )));
    }
    InvertedIndex::build(docs, Analyzer::english())
}

fn bench_doc_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("sentence_removal/doc_length");
    for &s in &[5usize, 10, 20] {
        let index = long_doc_corpus(s);
        let ranker = Bm25Ranker::new(&index, Bm25Params::default());
        group.bench_with_input(BenchmarkId::from_parameter(s), &ranker, |b, ranker| {
            b.iter(|| {
                explain_sentence_removal(
                    ranker,
                    "covid outbreak",
                    10,
                    DocId(0),
                    &SentenceRemovalConfig::default(),
                )
            });
        });
    }
    group.finish();
}

/// A long document that still ranks inside the cutoff: every fourth
/// sentence carries the query terms, so its BM25 score survives the
/// length normalisation and the search must remove several sentences
/// to push it out.
fn throughput_corpus(sentences: usize) -> InvertedIndex {
    let mut body = String::new();
    for i in 0..sentences {
        if i % 4 == 0 {
            body.push_str(&format!(
                "The covid outbreak update number {i} arrives today. "
            ));
        } else {
            body.push_str(&format!(
                "Filler sentence number {i} talks about daily life. "
            ));
        }
    }
    let mut docs = vec![Document::from_body(body)];
    for i in 0..12 {
        docs.push(Document::from_body(format!(
            "covid outbreak report number {i} with several extra words to pad the length of \
             this story for realistic normalisation."
        )));
    }
    InvertedIndex::build(docs, Analyzer::english())
}

/// Candidate-evaluation throughput: the exact-serial reference path versus
/// the incremental (delta-scoring) parallel engine on a long document,
/// with a budget that forces the search deep into multi-sentence combos.
fn bench_throughput(c: &mut Criterion) {
    let index = throughput_corpus(48);
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let config = |eval: EvalOptions| SentenceRemovalConfig {
        n: 16,
        budget: SearchBudget {
            max_size: 3,
            max_candidates: 48,
            max_evaluations: 6_000,
        },
        eval,
        ..SentenceRemovalConfig::default()
    };
    // Both paths evaluate identical candidate sets (the engine is
    // bit-deterministic), so one warmup run fixes the denominator.
    let evals = explain_sentence_removal(
        &ranker,
        "covid outbreak",
        10,
        DocId(0),
        &config(EvalOptions::default()),
    )
    .unwrap()
    .candidates_evaluated as u64;

    let mut group = c.benchmark_group("sentence_removal/throughput");
    group.throughput(Throughput::Elements(evals));
    for (name, eval) in [
        ("exact_serial", EvalOptions::exact_serial()),
        ("incremental_parallel", EvalOptions::default()),
    ] {
        let config = config(eval);
        group.bench_function(name, |b| {
            b.iter(|| {
                explain_sentence_removal(&ranker, "covid outbreak", 10, DocId(0), &config).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure2, bench_doc_length, bench_throughput);
criterion_main!(benches);
