//! Bench: the Figure-2 sentence-removal explanation on the demo
//! corpus, plus its scaling in document length (sentences).

use credence_bench::DemoSetup;
use credence_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use credence_core::{explain_sentence_removal, SentenceRemovalConfig};
use credence_index::{Bm25Params, DocId, Document, InvertedIndex};
use credence_rank::Bm25Ranker;
use credence_text::Analyzer;

fn bench_figure2(c: &mut Criterion) {
    let setup = DemoSetup::build();
    let ranker = setup.ranker();
    let fake = DocId(setup.demo.fake_news as u32);
    c.bench_function("sentence_removal/figure2", |b| {
        b.iter(|| {
            explain_sentence_removal(
                &ranker,
                setup.demo.query,
                setup.demo.k,
                fake,
                &SentenceRemovalConfig::default(),
            )
            .unwrap()
        });
    });
}

/// A document whose relevance is spread over `s` sentences, two of which
/// carry the query terms.
fn long_doc_corpus(sentences: usize) -> InvertedIndex {
    let mut body = String::from("The covid outbreak begins here. ");
    for i in 0..sentences.saturating_sub(2) {
        body.push_str(&format!(
            "Filler sentence number {i} talks about daily life. "
        ));
    }
    body.push_str("The covid outbreak ends here.");
    let mut docs = vec![Document::from_body(body)];
    for i in 0..12 {
        docs.push(Document::from_body(format!(
            "covid outbreak report number {i} with several extra words to pad the length of \
             this story for realistic normalisation."
        )));
    }
    InvertedIndex::build(docs, Analyzer::english())
}

fn bench_doc_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("sentence_removal/doc_length");
    for &s in &[5usize, 10, 20] {
        let index = long_doc_corpus(s);
        let ranker = Bm25Ranker::new(&index, Bm25Params::default());
        group.bench_with_input(BenchmarkId::from_parameter(s), &ranker, |b, ranker| {
            b.iter(|| {
                explain_sentence_removal(
                    ranker,
                    "covid outbreak",
                    10,
                    DocId(0),
                    &SentenceRemovalConfig::default(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure2, bench_doc_length);
criterion_main!(benches);
