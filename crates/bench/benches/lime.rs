//! Bench: Rank-LIME feature-attribution throughput.
//!
//! `lime/throughput` measures the two axes the subsystem optimises:
//!
//! - `exact_serial` vs `incremental_parallel` — the same 256-sample
//!   surrogate fit, scoring each perturbed document either by
//!   re-analysing the masked body from scratch on one thread or through
//!   the incremental term-removal scorer with batch-parallel evaluation.
//!   The `parallel >= 2x serial` ratio gate in `bench_check` is the
//!   reason the sampler routes through `TermRemovalScorer` at all.
//! - `cold` vs `warm` — the same request posted through the in-process
//!   REST surface with and without `explain_cache_bypass`, showing what
//!   the cross-request cache saves on a repeated attribution (the seeded
//!   payload is a pure function of the cache key, so sharing is safe).
//!
//! Elements per iteration is the deterministic evaluation count
//! (`samples_evaluated`), so throughput ratios are wall-clock ratios.

use std::sync::OnceLock;

use credence_bench::synth_index;
use credence_bench::{criterion_group, criterion_main, Criterion, Throughput};
use credence_core::{
    explain_feature_attribution_ranked, EngineConfig, EvalOptions, FeatureAttributionConfig,
};
use credence_corpus::covid_demo_corpus;
use credence_index::Bm25Params;
use credence_rank::{rank_corpus, Bm25Ranker};
use credence_server::http::Request;
use credence_server::{handle_request, AppState, JobsConfig, RankerChoice};

/// Surrogate-fit throughput on a synthetic corpus: 256 masked variants
/// of a long topical document, scored serially via exact re-analysis
/// versus batch-parallel through the incremental removal scorer.
fn bench_throughput(c: &mut Criterion) {
    let (corpus, index) = synth_index(1200, 13);
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let query = corpus.topic_query(0, 4);
    let ranking = rank_corpus(&ranker, &query);
    let doc = ranking.entries()[0].0;
    let config = |eval: EvalOptions| FeatureAttributionConfig {
        samples: 256,
        eval,
        ..FeatureAttributionConfig::default()
    };
    let evals = explain_feature_attribution_ranked(
        &ranker,
        &query,
        10,
        doc,
        &config(EvalOptions::default()),
        &ranking,
    )
    .unwrap()
    .samples_evaluated as u64;

    let mut group = c.benchmark_group("lime/throughput");
    group.throughput(Throughput::Elements(evals));
    for (name, eval) in [
        ("exact_serial", EvalOptions::exact_serial()),
        ("incremental_parallel", EvalOptions::default()),
    ] {
        let config = config(eval);
        group.bench_function(name, |b| {
            b.iter(|| {
                explain_feature_attribution_ranked(&ranker, &query, 10, doc, &config, &ranking)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn app_state() -> &'static AppState {
    static STATE: OnceLock<&'static AppState> = OnceLock::new();
    STATE.get_or_init(|| {
        AppState::leak_jobs(
            covid_demo_corpus().docs,
            EngineConfig::fast(),
            RankerChoice::Bm25,
            JobsConfig::default(),
        )
    })
}

/// The attribution request both cache variants execute on the demo
/// scenario. Everything that varies is part of the cache key, so the
/// warm path is a canonical-key build plus an LRU hit.
fn request_json(extra: &str) -> String {
    let demo = covid_demo_corpus();
    format!(
        r#"{{"query": "{}", "k": {}, "doc": {}, "samples": 128, "seed": 42{extra}}}"#,
        demo.query, demo.k, demo.fake_news
    )
}

fn post(state: &'static AppState, body: &str) -> Vec<u8> {
    let req = Request {
        method: "POST".into(),
        path: "/api/v1/explain/feature_attribution".into(),
        headers: Default::default(),
        body: body.as_bytes().to_vec(),
    };
    let resp = handle_request(state, &req);
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    resp.body
}

/// Cold vs warm cache on the in-process REST surface: one element per
/// iteration (one request), mirroring the `caching/throughput` group.
fn bench_cache(c: &mut Criterion) {
    let state = app_state();
    // Prime the cache so every `warm` iteration is a hit.
    let warm_body = request_json("");
    let first = post(state, &warm_body);
    assert_eq!(first, post(state, &warm_body), "warm repeat must be stable");
    let cold_body = request_json(r#", "explain_cache_bypass": true"#);

    let mut group = c.benchmark_group("lime/cache");
    group.throughput(Throughput::Elements(1));
    group.bench_function("warm", |b| b.iter(|| post(state, &warm_body)));
    group.bench_function("cold", |b| b.iter(|| post(state, &cold_body)));
    group.finish();
}

criterion_group!(benches, bench_throughput, bench_cache);
criterion_main!(benches);
