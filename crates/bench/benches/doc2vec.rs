//! Bench: Doc2Vec (PV-DBOW) training and inference — the
//! corpus-level cost behind the Doc2Vec-nearest explainer.

use credence_bench::synth_index;
use credence_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use credence_embed::{Doc2Vec, Doc2VecConfig};

fn sequences(num_docs: usize) -> (Vec<Vec<usize>>, usize) {
    let (_, index) = synth_index(num_docs, 7);
    let analyzer = index.analyzer();
    let seqs = index
        .documents()
        .iter()
        .map(|d| {
            analyzer
                .analyze(&d.body)
                .iter()
                .filter_map(|t| index.vocabulary().id(t).map(|x| x as usize))
                .collect()
        })
        .collect();
    (seqs, index.vocabulary().len())
}

fn bench_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("doc2vec/train");
    group.sample_size(10);
    for &n in &[50usize, 150] {
        let (seqs, vocab) = sequences(n);
        let cfg = Doc2VecConfig {
            dim: 32,
            epochs: 5,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &seqs, |b, seqs| {
            b.iter(|| Doc2Vec::train(seqs, vocab, &cfg));
        });
    }
    group.finish();
}

fn bench_infer(c: &mut Criterion) {
    let (seqs, vocab) = sequences(100);
    let model = Doc2Vec::train(
        &seqs,
        vocab,
        &Doc2VecConfig {
            dim: 32,
            epochs: 5,
            ..Default::default()
        },
    );
    c.bench_function("doc2vec/infer", |b| {
        b.iter(|| model.infer(&seqs[0]));
    });
}

criterion_group!(benches, bench_train, bench_infer);
criterion_main!(benches);
