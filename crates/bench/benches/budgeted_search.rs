//! Bench: the request-lifecycle budget on the counterfactual search.
//!
//! Three questions: what does carrying a budget cost when it never trips
//! (`unlimited` vs `generous` should be indistinguishable — the check is
//! one atomic load and an `Instant` compare per batch), how quickly a
//! tripped budget hands back a partial result, and the candidate
//! throughput of a capped run.

use credence_bench::DemoSetup;
use credence_bench::{criterion_group, criterion_main, Criterion, Throughput};
use credence_core::{explain_sentence_removal, Budget, SearchBudget, SentenceRemovalConfig};
use credence_index::DocId;

fn config(lifecycle: Budget) -> SentenceRemovalConfig {
    SentenceRemovalConfig {
        n: 8,
        budget: SearchBudget {
            max_size: 3,
            max_candidates: 24,
            max_evaluations: 20_000,
        },
        lifecycle,
        ..SentenceRemovalConfig::default()
    }
}

/// Budget-check overhead: an unlimited run versus one carrying a budget
/// generous enough to never trip.
fn bench_overhead(c: &mut Criterion) {
    let setup = DemoSetup::build();
    let ranker = setup.ranker();
    let fake = DocId(setup.demo.fake_news as u32);
    let mut group = c.benchmark_group("budgeted_search/overhead");
    for (name, lifecycle) in [
        ("unlimited", Budget::unlimited()),
        (
            "generous",
            Budget::unlimited()
                .with_deadline_ms(600_000)
                .with_max_evals(1_000_000),
        ),
    ] {
        let config = config(lifecycle);
        group.bench_function(name, |b| {
            b.iter(|| {
                explain_sentence_removal(&ranker, setup.demo.query, setup.demo.k, fake, &config)
                    .unwrap()
            });
        });
    }
    group.finish();
}

/// Latency of returning a partial result once the budget trips: an
/// already-expired deadline must come back almost immediately.
fn bench_tripped(c: &mut Criterion) {
    let setup = DemoSetup::build();
    let ranker = setup.ranker();
    let fake = DocId(setup.demo.fake_news as u32);
    c.bench_function("budgeted_search/expired_deadline", |b| {
        b.iter(|| {
            let config = config(Budget::unlimited().with_deadline_ms(0));
            let result =
                explain_sentence_removal(&ranker, setup.demo.query, setup.demo.k, fake, &config)
                    .unwrap();
            assert!(result.status.is_partial());
            result
        });
    });
}

/// Candidate throughput of an eval-capped run (the prefix-consistent
/// partial search the server serves under `max_evals`).
fn bench_capped_throughput(c: &mut Criterion) {
    let setup = DemoSetup::build();
    let ranker = setup.ranker();
    let fake = DocId(setup.demo.fake_news as u32);
    const CAP: usize = 64;
    let config = config(Budget::unlimited().with_max_evals(CAP));
    let evals = explain_sentence_removal(&ranker, setup.demo.query, setup.demo.k, fake, &config)
        .unwrap()
        .candidates_evaluated as u64;

    let mut group = c.benchmark_group("budgeted_search/capped");
    group.throughput(Throughput::Elements(evals));
    group.bench_function("max_evals", |b| {
        b.iter(|| {
            explain_sentence_removal(&ranker, setup.demo.query, setup.demo.k, fake, &config)
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_overhead,
    bench_tripped,
    bench_capped_throughput
);
criterion_main!(benches);
