//! Bench: the Figure-5 builder operations — structured edit
//! application and pool re-ranking.

use credence_bench::DemoSetup;
use credence_bench::{criterion_group, criterion_main, Criterion};
use credence_core::{apply_edits, test_edits, Edit};
use credence_index::DocId;

fn bench_apply_edits(c: &mut Criterion) {
    let setup = DemoSetup::build();
    let body = &setup
        .index
        .document(DocId(setup.demo.fake_news as u32))
        .unwrap()
        .body;
    let edits = [
        Edit::replace("covid", "flu"),
        Edit::replace("covid-19", "flu"),
        Edit::replace("outbreak", "the flu"),
    ];
    c.bench_function("builder/apply_edits", |b| {
        b.iter(|| apply_edits(body, &edits));
    });
}

fn bench_figure5_rerank(c: &mut Criterion) {
    let setup = DemoSetup::build();
    let ranker = setup.ranker();
    let fake = DocId(setup.demo.fake_news as u32);
    let edits = [
        Edit::replace("covid", "flu"),
        Edit::replace("covid-19", "flu"),
        Edit::replace("outbreak", "the flu"),
    ];
    c.bench_function("builder/figure5_rerank", |b| {
        b.iter(|| test_edits(&ranker, setup.demo.query, setup.demo.k, fake, &edits).unwrap());
    });
}

criterion_group!(benches, bench_apply_edits, bench_figure5_rerank);
criterion_main!(benches);
