//! Bench: the cross-request explanation cache against the search it
//! short-circuits.
//!
//! Both variants post the same sentence-removal request through the
//! in-process REST surface. `warm` repeats a request the cache already
//! holds, so each iteration is a canonical-key build plus an LRU lookup
//! and a payload clone; `cold` carries `explain_cache_bypass: true`, so
//! each iteration re-runs retrieval and candidate evaluation from
//! scratch — the work every repeat would pay without the cache. The
//! `warm >= 10x cold` ratio gate in `bench_check` is the cache's
//! reason to exist, stated as a number.
//!
//! Elements per iteration is 1 (one request), so throughput ratios are
//! exactly the wall-clock ratios.

use std::sync::OnceLock;

use credence_bench::{criterion_group, criterion_main, Criterion, Throughput};
use credence_core::EngineConfig;
use credence_corpus::covid_demo_corpus;
use credence_server::http::Request;
use credence_server::{handle_request, AppState, JobsConfig, RankerChoice};

fn app_state() -> &'static AppState {
    static STATE: OnceLock<&'static AppState> = OnceLock::new();
    STATE.get_or_init(|| {
        AppState::leak_jobs(
            covid_demo_corpus().docs,
            EngineConfig::fast(),
            RankerChoice::Bm25,
            JobsConfig::default(),
        )
    })
}

/// The explanation request both variants execute: sentence removal on
/// the demo scenario, capped at 64 evaluations so one cold iteration is
/// bounded, deterministic work (`max_evals` is part of the cache key).
fn request_json(extra: &str) -> String {
    let demo = covid_demo_corpus();
    format!(
        r#"{{"query": "{}", "k": {}, "doc": {}, "n": 2, "max_evals": 64{extra}}}"#,
        demo.query, demo.k, demo.fake_news
    )
}

fn post(state: &'static AppState, body: &str) -> Vec<u8> {
    let req = Request {
        method: "POST".into(),
        path: "/api/v1/explain/sentence-removal".into(),
        headers: Default::default(),
        body: body.as_bytes().to_vec(),
    };
    let resp = handle_request(state, &req);
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    resp.body
}

fn bench_caching(c: &mut Criterion) {
    let state = app_state();
    let warm_request = request_json("");
    let cold_request = request_json(r#", "explain_cache_bypass": true"#);

    // Prime the cache (and the ranking-cache / replay-memo substrates
    // beneath it) so `warm` measures steady-state hits and `cold`
    // measures recomputation rather than first-touch index warm-up.
    let primed = post(state, &warm_request);
    assert_eq!(
        primed,
        post(state, &cold_request),
        "bypass must reproduce the cached payload byte-for-byte"
    );

    let mut group = c.benchmark_group("caching/throughput");
    group.throughput(Throughput::Elements(1));
    group.bench_function("warm", |b| {
        b.iter(|| post(state, &warm_request));
    });
    group.bench_function("cold", |b| {
        b.iter(|| post(state, &cold_request));
    });
    group.finish();

    let cache = state.explain_cache();
    assert!(cache.hits() > 0, "warm iterations must be cache hits");
    assert!(
        cache.misses() >= 1,
        "priming and bypassed iterations miss by design"
    );
}

criterion_group!(benches, bench_caching);
criterion_main!(benches);
