//! Bench: LDA over the ranked top-k (the Browse-Topics modal).

use credence_bench::synth_index;
use credence_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use credence_index::Bm25Params;
use credence_rank::{rank_corpus, Bm25Ranker};
use credence_text::Vocabulary;
use credence_topics::{LdaConfig, LdaModel};

fn topk_docs() -> (Vec<Vec<usize>>, usize) {
    let (corpus, index) = synth_index(300, 7);
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let ranking = rank_corpus(&ranker, &corpus.topic_query(0, 3));
    let analyzer = index.analyzer();
    let mut vocab = Vocabulary::new();
    let docs = ranking
        .top_k(10)
        .iter()
        .map(|&d| {
            analyzer
                .analyze(&index.document(d).unwrap().body)
                .iter()
                .map(|t| vocab.intern(t) as usize)
                .collect()
        })
        .collect();
    (docs, vocab.len())
}

fn bench_lda(c: &mut Criterion) {
    let (docs, vocab) = topk_docs();
    let mut group = c.benchmark_group("lda/fit_topk");
    group.sample_size(20);
    for &iters in &[50usize, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, &iters| {
            b.iter(|| {
                LdaModel::fit(
                    &docs,
                    vocab,
                    &LdaConfig {
                        num_topics: 3,
                        iterations: iters,
                        ..Default::default()
                    },
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lda);
criterion_main!(benches);
