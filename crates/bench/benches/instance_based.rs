//! Bench: the Figure-4 instance-based explainers — cosine-sampled
//! across sample sizes, and doc2vec nearest-neighbour lookup (model
//! pre-trained, as in the running system).

use credence_bench::DemoSetup;
use credence_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use credence_core::{cosine_sampled, doc2vec_nearest, CosineSampledConfig};
use credence_embed::{Doc2Vec, Doc2VecConfig};
use credence_index::DocId;

fn bench_cosine_sampled(c: &mut Criterion) {
    let setup = DemoSetup::build();
    let ranker = setup.ranker();
    let fake = DocId(setup.demo.fake_news as u32);
    let mut group = c.benchmark_group("instance/cosine_sampled");
    for &s in &[10usize, 30, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            b.iter(|| {
                cosine_sampled(
                    &ranker,
                    setup.demo.query,
                    setup.demo.k,
                    fake,
                    3,
                    &CosineSampledConfig {
                        samples: s,
                        ..Default::default()
                    },
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_doc2vec_nearest(c: &mut Criterion) {
    let setup = DemoSetup::build();
    let ranker = setup.ranker();
    let fake = DocId(setup.demo.fake_news as u32);
    let analyzer = setup.index.analyzer();
    let seqs: Vec<Vec<usize>> = setup
        .index
        .documents()
        .iter()
        .map(|d| {
            analyzer
                .analyze(&d.body)
                .iter()
                .filter_map(|t| setup.index.vocabulary().id(t).map(|x| x as usize))
                .collect()
        })
        .collect();
    let model = Doc2Vec::train(
        &seqs,
        setup.index.vocabulary().len(),
        &Doc2VecConfig {
            dim: 32,
            epochs: 10,
            ..Default::default()
        },
    );
    c.bench_function("instance/doc2vec_nearest", |b| {
        b.iter(|| {
            doc2vec_nearest(&ranker, &model, setup.demo.query, setup.demo.k, fake, 3).unwrap()
        });
    });
}

criterion_group!(benches, bench_cosine_sampled, bench_doc2vec_nearest);
criterion_main!(benches);
