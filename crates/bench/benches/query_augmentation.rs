//! Bench: the Figure-3 query-augmentation explanation, plus its
//! scaling in requested explanation count `n`.

use credence_bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use credence_bench::{synth_index, DemoSetup};
use credence_core::{
    explain_query_augmentation, EvalOptions, QueryAugmentationConfig, SearchBudget,
};
use credence_index::{Bm25Params, DocId};
use credence_rank::{rank_corpus, Bm25Ranker};

fn bench_figure3(c: &mut Criterion) {
    let setup = DemoSetup::build();
    let ranker = setup.ranker();
    let fake = DocId(setup.demo.fake_news as u32);
    c.bench_function("query_augmentation/figure3", |b| {
        b.iter(|| {
            explain_query_augmentation(
                &ranker,
                setup.demo.query,
                setup.demo.k,
                fake,
                &QueryAugmentationConfig {
                    n: 7,
                    threshold: 2,
                    ..Default::default()
                },
            )
            .unwrap()
        });
    });
}

fn bench_explanation_count(c: &mut Criterion) {
    let setup = DemoSetup::build();
    let ranker = setup.ranker();
    let fake = DocId(setup.demo.fake_news as u32);
    let mut group = c.benchmark_group("query_augmentation/n");
    for &n in &[1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                explain_query_augmentation(
                    &ranker,
                    setup.demo.query,
                    setup.demo.k,
                    fake,
                    &QueryAugmentationConfig {
                        n,
                        threshold: 2,
                        ..Default::default()
                    },
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

/// Candidate-evaluation throughput on a 1200-document synthetic corpus:
/// the exact path re-ranks the whole corpus per candidate augmentation,
/// the incremental path touches only the appended terms' posting lists.
fn bench_throughput(c: &mut Criterion) {
    let (corpus, index) = synth_index(1200, 7);
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let query = corpus.topic_query(0, 4);
    let ranking = rank_corpus(&ranker, &query);
    // A document that is ranked but well below the threshold, so raising
    // it takes real search work.
    let doc = ranking.entries()[40].0;
    let config = |eval: EvalOptions| QueryAugmentationConfig {
        n: 8,
        threshold: 2,
        budget: SearchBudget {
            max_size: 2,
            max_candidates: 24,
            max_evaluations: 4_000,
        },
        eval,
        ..QueryAugmentationConfig::default()
    };
    let evals =
        explain_query_augmentation(&ranker, &query, 10, doc, &config(EvalOptions::default()))
            .unwrap()
            .candidates_evaluated as u64;

    let mut group = c.benchmark_group("query_augmentation/throughput");
    group.throughput(Throughput::Elements(evals));
    for (name, eval) in [
        ("exact_serial", EvalOptions::exact_serial()),
        ("incremental_parallel", EvalOptions::default()),
    ] {
        let config = config(eval);
        group.bench_function(name, |b| {
            b.iter(|| explain_query_augmentation(&ranker, &query, 10, doc, &config).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_figure3,
    bench_explanation_count,
    bench_throughput
);
criterion_main!(benches);
