//! Bench: the Figure-3 query-augmentation explanation, plus its
//! scaling in requested explanation count `n`.

use credence_bench::DemoSetup;
use credence_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use credence_core::{explain_query_augmentation, QueryAugmentationConfig};
use credence_index::DocId;

fn bench_figure3(c: &mut Criterion) {
    let setup = DemoSetup::build();
    let ranker = setup.ranker();
    let fake = DocId(setup.demo.fake_news as u32);
    c.bench_function("query_augmentation/figure3", |b| {
        b.iter(|| {
            explain_query_augmentation(
                &ranker,
                setup.demo.query,
                setup.demo.k,
                fake,
                &QueryAugmentationConfig {
                    n: 7,
                    threshold: 2,
                    ..Default::default()
                },
            )
            .unwrap()
        });
    });
}

fn bench_explanation_count(c: &mut Criterion) {
    let setup = DemoSetup::build();
    let ranker = setup.ranker();
    let fake = DocId(setup.demo.fake_news as u32);
    let mut group = c.benchmark_group("query_augmentation/n");
    for &n in &[1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                explain_query_augmentation(
                    &ranker,
                    setup.demo.query,
                    setup.demo.k,
                    fake,
                    &QueryAugmentationConfig {
                        n,
                        threshold: 2,
                        ..Default::default()
                    },
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure3, bench_explanation_count);
criterion_main!(benches);
