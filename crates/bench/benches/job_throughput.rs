//! Bench: the async job subsystem against the synchronous path it wraps.
//!
//! `execution_only` measures the raw handler (the work a worker thread
//! performs); `submit_to_complete` measures the same request through the
//! full job lifecycle — envelope parse, queue admission, worker hand-off,
//! result store — so the difference between the two is the subsystem's
//! queue-wait plus bookkeeping overhead. `batch_drain` submits a burst and
//! drains it, putting a number on jobs-per-second with the default
//! two-worker pool.
//!
//! Not in `BENCH_baseline.json` on purpose: queue-wait depends on worker
//! scheduling, so the numbers are reported, not regression-gated.

use std::sync::OnceLock;
use std::time::Duration;

use credence_bench::{criterion_group, criterion_main, Criterion, Throughput};
use credence_core::EngineConfig;
use credence_corpus::covid_demo_corpus;
use credence_json::{parse, Value};
use credence_server::http::Request;
use credence_server::{handle_request, AppState, JobsConfig, RankerChoice};

fn app_state() -> &'static AppState {
    static STATE: OnceLock<&'static AppState> = OnceLock::new();
    STATE.get_or_init(|| {
        AppState::leak_jobs(
            covid_demo_corpus().docs,
            EngineConfig::fast(),
            RankerChoice::Bm25,
            JobsConfig::default(),
        )
    })
}

/// The explanation request both paths execute: sentence removal on the
/// demo scenario, capped at 64 evaluations so one job is bounded work.
fn request_json() -> String {
    let demo = covid_demo_corpus();
    format!(
        r#"{{"query": "{}", "k": {}, "doc": {}, "n": 2, "max_evals": 64}}"#,
        demo.query, demo.k, demo.fake_news
    )
}

fn post(state: &'static AppState, path: &str, body: &str) -> (u16, Vec<u8>) {
    let req = Request {
        method: "POST".into(),
        path: path.into(),
        headers: Default::default(),
        body: body.as_bytes().to_vec(),
    };
    let resp = handle_request(state, &req);
    (resp.status, resp.body)
}

/// Submit one job over the in-process REST surface, returning its id.
fn submit(state: &'static AppState, request: &str) -> u64 {
    let envelope = format!(r#"{{"endpoint": "sentence-removal", "request": {request}}}"#);
    let (status, body) = post(state, "/api/v1/jobs", &envelope);
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
    parse(std::str::from_utf8(&body).unwrap())
        .unwrap()
        .get("job_id")
        .and_then(Value::as_str)
        .and_then(|wire| wire.strip_prefix("job-"))
        .and_then(|n| n.parse().ok())
        .expect("submission returns a job id")
}

fn drain(state: &'static AppState, id: u64) {
    let terminal = state
        .jobs()
        .wait_terminal(id, Duration::from_secs(60))
        .expect("job reaches a terminal state");
    assert!(terminal.is_terminal());
}

/// One request: raw synchronous handler vs the full job lifecycle.
fn bench_roundtrip(c: &mut Criterion) {
    let state = app_state();
    let request = request_json();
    let mut group = c.benchmark_group("jobs");
    group.bench_function("execution_only", |b| {
        b.iter(|| {
            let (status, body) = post(state, "/api/v1/explain/sentence-removal", &request);
            assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
            body
        });
    });
    group.bench_function("submit_to_complete", |b| {
        b.iter(|| drain(state, submit(state, &request)));
    });
    group.finish();
}

/// A burst of submissions drained to completion: sustained jobs/second
/// through the default pool.
fn bench_batch_drain(c: &mut Criterion) {
    let state = app_state();
    let request = request_json();
    let batch: usize =
        if std::env::var("CREDENCE_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0") {
            4
        } else {
            32
        };
    let mut group = c.benchmark_group("jobs");
    group.throughput(Throughput::Elements(batch as u64));
    group.bench_function("batch_drain", |b| {
        b.iter(|| {
            let ids: Vec<u64> = (0..batch).map(|_| submit(state, &request)).collect();
            for id in ids {
                drain(state, id);
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_roundtrip, bench_batch_drain);
criterion_main!(benches);
