//! Bench: term-removal explanations (delete document terms until it
//! falls below the cutoff), including candidate-evaluation throughput of
//! the exact-serial path versus the pool scorer.

use credence_bench::{criterion_group, criterion_main, Criterion, Throughput};
use credence_bench::{synth_index, DemoSetup};
use credence_core::{
    explain_term_removal, explain_term_removal_ranked, EvalOptions, SearchBudget, TermRemovalConfig,
};
use credence_index::{Bm25Params, DocId};
use credence_rank::{rank_corpus, Bm25Ranker};

fn bench_demo(c: &mut Criterion) {
    let setup = DemoSetup::build();
    let ranker = setup.ranker();
    let fake = DocId(setup.demo.fake_news as u32);
    c.bench_function("term_removal/demo", |b| {
        b.iter(|| {
            explain_term_removal(
                &ranker,
                setup.demo.query,
                setup.demo.k,
                fake,
                &TermRemovalConfig::default(),
            )
        });
    });
}

/// Candidate-evaluation throughput on a synthetic corpus: the exact path
/// re-ranks the candidate pool for every perturbed document, the pool
/// scorer re-scores only the perturbed document against frozen pool
/// scores. Measured via `explain_term_removal_ranked` against a
/// precomputed base ranking — the engine serves explanations from its
/// ranking cache the same way — so the shared full-corpus ranking pass
/// does not dilute the per-candidate comparison.
fn bench_throughput(c: &mut Criterion) {
    let (corpus, index) = synth_index(1200, 13);
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let query = corpus.topic_query(0, 4);
    let ranking = rank_corpus(&ranker, &query);
    let doc = ranking.entries()[0].0;
    let config = |eval: EvalOptions| TermRemovalConfig {
        n: 8,
        budget: SearchBudget {
            max_size: 3,
            max_candidates: 24,
            max_evaluations: 4_000,
        },
        eval,
        ..TermRemovalConfig::default()
    };
    let evals = explain_term_removal_ranked(
        &ranker,
        &query,
        10,
        doc,
        &config(EvalOptions::default()),
        &ranking,
    )
    .unwrap()
    .candidates_evaluated as u64;

    let mut group = c.benchmark_group("term_removal/throughput");
    group.throughput(Throughput::Elements(evals));
    for (name, eval) in [
        ("exact_serial", EvalOptions::exact_serial()),
        ("incremental_parallel", EvalOptions::default()),
    ] {
        let config = config(eval);
        group.bench_function(name, |b| {
            b.iter(|| {
                explain_term_removal_ranked(&ranker, &query, 10, doc, &config, &ranking).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_demo, bench_throughput);
criterion_main!(benches);
