//! Bench: index construction and top-k retrieval at three corpus
//! scales (backs the T-SCALE table's `index` and `rank` columns).

use credence_bench::synth_index;
use credence_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use credence_index::{search_top_k, Bm25Params, InvertedIndex};
use credence_text::Analyzer;

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for &n in &[100usize, 300, 1000] {
        let (corpus, _) = synth_index(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &corpus.docs, |b, docs| {
            b.iter(|| InvertedIndex::build(docs.clone(), Analyzer::english()));
        });
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_top_k");
    for &n in &[100usize, 300, 1000] {
        let (corpus, index) = synth_index(n, 7);
        let query = index.analyze_query(&corpus.topic_query(0, 3));
        group.bench_with_input(BenchmarkId::from_parameter(n), &index, |b, index| {
            b.iter(|| search_top_k(index, Bm25Params::default(), &query, 10));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_build, bench_search);
criterion_main!(benches);
