//! Bench: index construction and top-k retrieval at three corpus
//! scales (backs the T-SCALE table's `index` and `rank` columns).

use credence_bench::synth_index;
use credence_bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use credence_index::{
    search_top_k, search_top_k_with, Bm25Params, InvertedIndex, SearchStrategy, TopKOptions,
};
use credence_text::Analyzer;

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for &n in &[100usize, 300, 1000] {
        let (corpus, _) = synth_index(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &corpus.docs, |b, docs| {
            b.iter(|| InvertedIndex::build(docs.clone(), Analyzer::english()));
        });
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_top_k");
    for &n in &[100usize, 300, 1000] {
        let (corpus, index) = synth_index(n, 7);
        let query = index.analyze_query(&corpus.topic_query(0, 3));
        group.bench_with_input(BenchmarkId::from_parameter(n), &index, |b, index| {
            b.iter(|| search_top_k(index, Bm25Params::default(), &query, 10));
        });
    }
    group.finish();
}

/// Docs-ranked-per-second of the retrieval paths on a query with one
/// selective term plus two ubiquitous background terms. Elements per
/// iteration is the exhaustive path's `docs_scored`, identical across
/// variants, so the throughput ratios are exactly the wall-clock ratios.
///
/// The selective term is injected with a skewed impact distribution: high
/// tf in doc ids 0..128 (exactly the first 128-posting block) and a tf-1
/// tail scattered over the rest of the corpus. Term-level MaxScore must
/// score the whole list — the term's *global* bound stays high — while
/// Block-Max-WAND's per-block bounds prune the tail blocks outright. That
/// per-block advantage is what the `bmw >= pruned` ratio gate claims; the
/// ubiquitous terms keep the exhaustive path scoring nearly the whole
/// corpus, which the `pruned >= 3x exhaustive` gate rides on.
fn bench_ranking_throughput(c: &mut Criterion) {
    let (corpus, _) = synth_index(1600, 11);
    let mut docs = corpus.docs.clone();
    for (i, doc) in docs.iter_mut().enumerate() {
        if i < 128 {
            doc.body
                .push_str(" Hotspot hotspot hotspot hotspot hotspot hotspot.");
        } else if i % 8 == 0 {
            doc.body.push_str(" Hotspot.");
        }
    }
    let index = InvertedIndex::build(docs, Analyzer::english());
    let query = index.analyze_query("hotspot common0 common1");
    let params = Bm25Params::default();
    let opts = |strategy| TopKOptions {
        strategy,
        ..TopKOptions::default()
    };
    // These reference calls double as warm-up so samples measure steady
    // state: the first sharded call resolves `available_parallelism` (a
    // cgroup walk on Linux, ~100µs+) and the first pruned call materializes
    // the decoded-postings cache — either would dominate the short
    // smoke-mode sample window.
    let (ex_hits, reference) = search_top_k_with(
        &index,
        params,
        &query,
        10,
        &opts(SearchStrategy::Exhaustive),
    );
    let (pr_hits, pr_stats) =
        search_top_k_with(&index, params, &query, 10, &opts(SearchStrategy::Pruned));
    let (bm_hits, bm_stats) =
        search_top_k_with(&index, params, &query, 10, &opts(SearchStrategy::BlockMax));
    let (sh_hits, _) =
        search_top_k_with(&index, params, &query, 10, &opts(SearchStrategy::Sharded));
    assert_eq!(pr_hits, ex_hits);
    assert_eq!(bm_hits, ex_hits);
    assert_eq!(sh_hits, ex_hits);
    assert!(
        pr_stats.docs_scored * 3 <= reference.docs_scored,
        "fixture must let MaxScore skip the ubiquitous terms: pruned scored {} of {}",
        pr_stats.docs_scored,
        reference.docs_scored
    );
    assert!(
        bm_stats.docs_scored < pr_stats.docs_scored,
        "fixture must let block-max bounds prune the tail blocks: bmw scored {} vs pruned {}",
        bm_stats.docs_scored,
        pr_stats.docs_scored
    );

    let mut group = c.benchmark_group("ranking/throughput");
    group.throughput(Throughput::Elements(reference.docs_scored));
    let strategies = [
        ("exhaustive", SearchStrategy::Exhaustive),
        ("pruned", SearchStrategy::Pruned),
        ("bmw", SearchStrategy::BlockMax),
        ("sharded", SearchStrategy::Sharded),
    ];
    for (name, strategy) in strategies {
        let opts = opts(strategy);
        group.bench_function(name, |b| {
            b.iter(|| search_top_k_with(&index, params, &query, 10, &opts));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_index_build,
    bench_search,
    bench_ranking_throughput
);
criterion_main!(benches);
