//! Bench: index construction and top-k retrieval at three corpus
//! scales (backs the T-SCALE table's `index` and `rank` columns).

use credence_bench::synth_index;
use credence_bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use credence_index::{
    search_top_k, search_top_k_with, Bm25Params, InvertedIndex, SearchStrategy, TopKOptions,
};
use credence_text::Analyzer;

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for &n in &[100usize, 300, 1000] {
        let (corpus, _) = synth_index(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &corpus.docs, |b, docs| {
            b.iter(|| InvertedIndex::build(docs.clone(), Analyzer::english()));
        });
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_top_k");
    for &n in &[100usize, 300, 1000] {
        let (corpus, index) = synth_index(n, 7);
        let query = index.analyze_query(&corpus.topic_query(0, 3));
        group.bench_with_input(BenchmarkId::from_parameter(n), &index, |b, index| {
            b.iter(|| search_top_k(index, Bm25Params::default(), &query, 10));
        });
    }
    group.finish();
}

/// Docs-ranked-per-second of the three retrieval paths on a selective
/// query (one topical term plus two ubiquitous background terms — the
/// shape where MaxScore pruning pays off). Elements per iteration is the
/// exhaustive path's `docs_scored`, identical across variants, so the
/// throughput ratios are exactly the wall-clock ratios.
fn bench_ranking_throughput(c: &mut Criterion) {
    let (corpus, index) = synth_index(1600, 11);
    let query = index.analyze_query(&format!("{} common0 common1", corpus.topic_query(0, 1)));
    let params = Bm25Params::default();
    let opts = |strategy| TopKOptions {
        strategy,
        ..TopKOptions::default()
    };
    let (_, ex_stats) = search_top_k_with(&index, params, &query, 10, &opts(SearchStrategy::Auto));
    let (_, reference) = search_top_k_with(
        &index,
        params,
        &query,
        10,
        &opts(SearchStrategy::Exhaustive),
    );
    assert!(
        ex_stats.docs_pruned > 0 || ex_stats.shards_used > 0,
        "fixture query must exercise a non-exhaustive path, got {ex_stats:?}"
    );

    let mut group = c.benchmark_group("ranking/throughput");
    group.throughput(Throughput::Elements(reference.docs_scored));
    for (name, strategy) in [
        ("exhaustive", SearchStrategy::Exhaustive),
        ("pruned", SearchStrategy::Pruned),
        ("sharded", SearchStrategy::Sharded),
    ] {
        let opts = opts(strategy);
        group.bench_function(name, |b| {
            b.iter(|| search_top_k_with(&index, params, &query, 10, &opts));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_index_build,
    bench_search,
    bench_ranking_throughput
);
criterion_main!(benches);
