//! Bench: query-reduction explanations (drop terms until the document
//! falls below the cutoff), including candidate-evaluation throughput of
//! the exact-serial path versus the incremental subset scorer.

use credence_bench::{criterion_group, criterion_main, Criterion, Throughput};
use credence_bench::{synth_index, DemoSetup};
use credence_core::{explain_query_reduction, EvalOptions, QueryReductionConfig, SearchBudget};
use credence_index::{Bm25Params, DocId};
use credence_rank::{rank_corpus, Bm25Ranker};

fn bench_demo(c: &mut Criterion) {
    let setup = DemoSetup::build();
    let ranker = setup.ranker();
    let fake = DocId(setup.demo.fake_news as u32);
    c.bench_function("query_reduction/demo", |b| {
        b.iter(|| {
            explain_query_reduction(
                &ranker,
                setup.demo.query,
                setup.demo.k,
                fake,
                &QueryReductionConfig::default(),
            )
        });
    });
}

/// Candidate-evaluation throughput on a synthetic corpus with a wide
/// query: the exact path re-ranks the corpus for every reduced query,
/// the subset scorer only re-reads the kept terms' posting lists.
fn bench_throughput(c: &mut Criterion) {
    let (corpus, index) = synth_index(1200, 11);
    let ranker = Bm25Ranker::new(&index, Bm25Params::default());
    let query = corpus.topic_query(0, 6);
    let ranking = rank_corpus(&ranker, &query);
    let doc = ranking.entries()[0].0;
    let config = |eval: EvalOptions| QueryReductionConfig {
        n: 8,
        budget: SearchBudget {
            max_size: 4,
            max_candidates: 6,
            max_evaluations: 4_000,
        },
        eval,
        ..QueryReductionConfig::default()
    };
    let evals = explain_query_reduction(&ranker, &query, 10, doc, &config(EvalOptions::default()))
        .unwrap()
        .candidates_evaluated as u64;

    let mut group = c.benchmark_group("query_reduction/throughput");
    group.throughput(Throughput::Elements(evals));
    for (name, eval) in [
        ("exact_serial", EvalOptions::exact_serial()),
        ("incremental_parallel", EvalOptions::default()),
    ] {
        let config = config(eval);
        group.bench_function(name, |b| {
            b.iter(|| explain_query_reduction(&ranker, &query, 10, doc, &config).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_demo, bench_throughput);
criterion_main!(benches);
