//! The in-repo load/capacity harness behind the `loadgen` binary.
//!
//! Drives a running CREDENCE server (single-node or router) with a
//! zipfian query mix and sweeps offered QPS points, measuring the
//! latency distribution at each point and emitting the
//! `BENCH_capacity.json` capacity curve (p50/p95/p99 vs offered QPS,
//! with the saturation knee called out).
//!
//! Two driving disciplines:
//!
//! * **closed-loop** — a fixed pool of workers, each pacing its share of
//!   the schedule; a worker never has two requests in flight, so when
//!   the server saturates the workers fall behind their schedule and
//!   the offered rate degrades gracefully.
//! * **open-loop** — every request fires at its scheduled instant
//!   regardless of completions, the discipline that actually exposes a
//!   saturation knee.
//!
//! In both modes latency is measured from the request's *scheduled*
//! start, not its actual send — the coordinated-omission correction:
//! queueing delay behind a saturated server counts against the server.
//!
//! Everything stochastic flows from one seed through [`schedule`], a
//! pure function: the same seed yields the same query sequence and the
//! same arrival offsets, byte for byte (asserted by
//! `tests/determinism.rs`).

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use credence_index::InvertedIndex;
use credence_json::{obj, to_string, Value};
use credence_rng::weighted::CumulativeTable;
use credence_rng::{rngs::StdRng, Rng, SeedableRng};
use credence_server::client::http_request;
use credence_server::API_PREFIX;

/// Schema tag written into `BENCH_capacity.json`.
pub const CAPACITY_SCHEMA: &str = "credence-bench-capacity/1";

/// One scheduled request: a request-pool index and its arrival offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledRequest {
    /// Index into the request pool.
    pub query: usize,
    /// Arrival offset from the start of the point, in milliseconds.
    pub start_ms: f64,
}

/// One poolable request: an API path plus a pre-rendered JSON body.
///
/// The pool abstraction lets the same zipfian schedule drive any
/// endpoint mix — `/rank` queries for the capacity sweep, or a small
/// hot set of explanation requests for the cache-effectiveness trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpec {
    /// Path under the API prefix, e.g. `/rank`.
    pub path: String,
    /// JSON request body.
    pub body: String,
}

/// Driving discipline for a capacity point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopMode {
    /// Fixed worker pool; at most `concurrency` requests in flight.
    Closed {
        /// Number of paced workers.
        concurrency: usize,
    },
    /// Fire each request at its scheduled instant, one thread per
    /// request.
    Open,
}

impl LoopMode {
    /// The mode name written into the JSON artifact.
    pub fn as_str(&self) -> &'static str {
        match self {
            LoopMode::Closed { .. } => "closed",
            LoopMode::Open => "open",
        }
    }
}

/// Measured results for one offered-QPS point.
#[derive(Debug, Clone)]
pub struct CapacityPoint {
    /// The offered (scheduled) request rate.
    pub offered_qps: f64,
    /// Completed requests divided by the span from first scheduled
    /// start to last completion.
    pub achieved_qps: f64,
    /// Median latency, milliseconds (scheduled start → completion).
    pub p50_ms: f64,
    /// 95th percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Requests that failed (non-200 response or transport error).
    pub errors: usize,
    /// Requests issued.
    pub requests: usize,
}

/// Derive a deterministic query pool from an index: the highest
/// document-frequency terms, as single-term queries plus adjacent
/// two-term conjunctions. Rank ties break on the term string, so the
/// pool is stable across rebuilds.
pub fn query_pool(index: &InvertedIndex, terms: usize) -> Vec<String> {
    let mut by_df: Vec<(u32, &str)> = index
        .vocabulary()
        .iter()
        .map(|(id, term)| (index.postings_len(id) as u32, term))
        .collect();
    by_df.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(b.1)));
    by_df.truncate(terms);
    let singles: Vec<String> = by_df.iter().map(|(_, t)| t.to_string()).collect();
    let pairs: Vec<String> = singles
        .windows(2)
        .map(|w| format!("{} {}", w[0], w[1]))
        .collect();
    let mut pool = singles;
    pool.extend(pairs);
    pool
}

/// Render a query pool into `/rank` request specs.
pub fn rank_pool(queries: &[String], k: usize) -> Vec<RequestSpec> {
    queries
        .iter()
        .map(|q| RequestSpec {
            path: "/rank".to_string(),
            body: format!(
                "{{\"k\": {k}, \"query\": {}}}",
                to_string(&Value::from(q.clone()))
            ),
        })
        .collect()
}

/// The `--trace repeated` hot set: a small pool of explanation requests
/// over the demo scenario, spread across all four explainer endpoints
/// and a handful of documents. Zipfian sampling over this pool (via
/// [`schedule`]) concentrates traffic on a few requests, the regime the
/// cross-request explanation cache is built for: a cache-enabled server
/// answers the repeats from memory while a cache-disabled one re-runs
/// every search.
///
/// Deterministic: the pool is a pure function of `(query, k, docs)`, so
/// a seeded schedule over it replays byte-for-byte.
pub fn repeated_explain_pool(query: &str, k: usize, docs: usize) -> Vec<RequestSpec> {
    const ENDPOINTS: [&str; 4] = [
        "/explain/sentence-removal",
        "/explain/query-augmentation",
        "/explain/query-reduction",
        "/explain/term-removal",
    ];
    let query_json = to_string(&Value::from(query.to_string()));
    let mut pool = Vec::with_capacity(ENDPOINTS.len() * docs.max(1));
    for rank in 0..docs.max(1) {
        for endpoint in ENDPOINTS {
            // Query augmentation promotes a document to rank <= 1, so
            // the top-ranked document (rank 0) would be rejected with
            // "already ranks at or above threshold" — shift it one down.
            let doc = if endpoint.ends_with("query-augmentation") {
                rank + 1
            } else {
                rank
            };
            // max_evals bounds each miss to a deterministic slice of
            // work; it is part of the cache key, so every repeat of a
            // spec is a hit on a cache-enabled server.
            pool.push(RequestSpec {
                path: endpoint.to_string(),
                body: format!(
                    "{{\"doc\": {doc}, \"k\": {k}, \"max_evals\": 64, \"n\": 2, \
                     \"query\": {query_json}}}"
                ),
            });
        }
    }
    pool
}

/// Build the full request schedule for one point: `n` arrivals at
/// `offered_qps` with exponential (Poisson-process) inter-arrival gaps,
/// each picking a pool index from a zipfian distribution with exponent
/// `zipf_s` (rank 1 most popular).
///
/// Pure: identical `(seed, pool_len, zipf_s, n, offered_qps)` gives an
/// identical schedule. The seed covers both the query mix and the
/// arrival process.
pub fn schedule(
    seed: u64,
    pool_len: usize,
    zipf_s: f64,
    n: usize,
    offered_qps: f64,
) -> Vec<ScheduledRequest> {
    assert!(pool_len > 0, "empty query pool");
    assert!(offered_qps > 0.0, "offered_qps must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = CumulativeTable::new((1..=pool_len).map(|rank| (rank as f64).powf(-zipf_s)))
        .expect("zipf weights are positive");
    let mean_gap_ms = 1000.0 / offered_qps;
    let mut at = 0.0f64;
    (0..n)
        .map(|_| {
            let query = zipf.sample(&mut rng);
            // Inverse-CDF exponential draw; u is in [0, 1) so 1-u never
            // hits zero and the log stays finite.
            let u: f64 = rng.gen_range(0.0..1.0);
            let gap = -(1.0 - u).ln() * mean_gap_ms;
            let start_ms = at;
            at += gap;
            ScheduledRequest { query, start_ms }
        })
        .collect()
}

/// Nearest-rank percentile of an ascending-sorted slice (`q` in 0..=1).
pub fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((q * (sorted_ms.len() - 1) as f64).ceil() as usize).min(sorted_ms.len() - 1);
    sorted_ms[idx]
}

/// POST one pooled request; returns the completion outcome.
fn fire(addr: SocketAddr, spec: &RequestSpec, timeout: Duration) -> bool {
    match http_request(
        addr,
        "POST",
        &format!("{API_PREFIX}{}", spec.path),
        Some(spec.body.as_bytes()),
        Instant::now() + timeout,
    ) {
        Ok(resp) => resp.status == 200,
        Err(_) => false,
    }
}

/// Run one offered-QPS point against `addr` and measure it.
pub fn run_point(
    addr: SocketAddr,
    pool: &[RequestSpec],
    sched: &[ScheduledRequest],
    offered_qps: f64,
    mode: LoopMode,
    timeout: Duration,
) -> CapacityPoint {
    let base = Instant::now();
    // (latency_ms, ok, completion offset from base in ms) per request.
    let outcomes: Vec<(f64, bool, f64)> = match mode {
        LoopMode::Open => {
            let mut handles = Vec::with_capacity(sched.len());
            for req in sched {
                let scheduled = base + Duration::from_secs_f64(req.start_ms / 1000.0);
                let spec = pool[req.query % pool.len()].clone();
                handles.push(std::thread::spawn(move || {
                    let now = Instant::now();
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    }
                    let ok = fire(addr, &spec, timeout);
                    let done = Instant::now();
                    (
                        (done - scheduled).as_secs_f64() * 1e3,
                        ok,
                        (done - base).as_secs_f64() * 1e3,
                    )
                }));
            }
            handles.into_iter().filter_map(|h| h.join().ok()).collect()
        }
        LoopMode::Closed { concurrency } => {
            let workers = concurrency.max(1);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let sched = &sched;
                        let pool = &pool;
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            // Round-robin share of the schedule keeps each
                            // worker's arrivals in increasing-time order.
                            for req in sched.iter().skip(w).step_by(workers) {
                                let scheduled =
                                    base + Duration::from_secs_f64(req.start_ms / 1000.0);
                                let now = Instant::now();
                                if scheduled > now {
                                    std::thread::sleep(scheduled - now);
                                }
                                let ok = fire(addr, &pool[req.query % pool.len()], timeout);
                                let done = Instant::now();
                                out.push((
                                    (done - scheduled).as_secs_f64() * 1e3,
                                    ok,
                                    (done - base).as_secs_f64() * 1e3,
                                ));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap_or_default())
                    .collect()
            })
        }
    };

    let mut latencies: Vec<f64> = outcomes.iter().map(|(l, _, _)| *l).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let errors = outcomes.iter().filter(|(_, ok, _)| !ok).count();
    let last_done_ms = outcomes.iter().map(|(_, _, d)| *d).fold(0.0f64, f64::max);
    let achieved_qps = if last_done_ms > 0.0 {
        outcomes.len() as f64 / (last_done_ms / 1e3)
    } else {
        0.0
    };
    CapacityPoint {
        offered_qps,
        achieved_qps,
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
        errors,
        requests: outcomes.len(),
    }
}

/// Find the saturation knee: the first point (in sweep order) whose
/// achieved rate falls more than 15% short of its offered rate, or
/// whose p99 exceeds 10x the first point's p99. Returns its offered
/// QPS.
pub fn saturation_knee(points: &[CapacityPoint]) -> Option<f64> {
    let baseline_p99 = points.first().map(|p| p.p99_ms.max(0.05))?;
    points
        .iter()
        .find(|p| p.achieved_qps < 0.85 * p.offered_qps || p.p99_ms > 10.0 * baseline_p99)
        .map(|p| p.offered_qps)
}

/// Render the capacity artifact (`BENCH_capacity.json`).
pub fn capacity_json(
    mode: LoopMode,
    seed: u64,
    requests_per_point: usize,
    points: &[CapacityPoint],
) -> Value {
    let rows: Vec<Value> = points
        .iter()
        .map(|p| {
            obj([
                ("achieved_qps", Value::from(p.achieved_qps)),
                ("errors", Value::from(p.errors)),
                ("offered_qps", Value::from(p.offered_qps)),
                ("p50_ms", Value::from(p.p50_ms)),
                ("p95_ms", Value::from(p.p95_ms)),
                ("p99_ms", Value::from(p.p99_ms)),
                ("requests", Value::from(p.requests)),
            ])
        })
        .collect();
    obj([
        (
            "knee_offered_qps",
            saturation_knee(points).map_or(Value::Null, Value::from),
        ),
        ("mode", Value::from(mode.as_str())),
        ("points", Value::Array(rows)),
        ("requests_per_point", Value::from(requests_per_point)),
        ("schema", Value::from(CAPACITY_SCHEMA)),
        ("seed", Value::from(seed as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_under_a_seed() {
        let a = schedule(42, 10, 1.0, 64, 100.0);
        let b = schedule(42, 10, 1.0, 64, 100.0);
        assert_eq!(a, b);
        let c = schedule(43, 10, 1.0, 64, 100.0);
        assert_ne!(a, c, "a different seed must change the schedule");
    }

    #[test]
    fn schedule_arrivals_are_nondecreasing_and_rate_matched() {
        let sched = schedule(7, 5, 1.0, 2000, 250.0);
        for w in sched.windows(2) {
            assert!(w[1].start_ms >= w[0].start_ms);
        }
        // 2000 arrivals at 250 QPS span about 8 seconds; the Poisson
        // process concentrates tightly at this sample size.
        let span = sched.last().unwrap().start_ms;
        assert!((6000.0..10000.0).contains(&span), "span {span}ms");
    }

    #[test]
    fn zipf_mix_prefers_low_ranks() {
        let sched = schedule(11, 20, 1.0, 4000, 100.0);
        let mut counts = [0usize; 20];
        for req in &sched {
            counts[req.query] += 1;
        }
        assert!(
            counts[0] > counts[19] * 3,
            "rank 1 ({}) should dominate rank 20 ({})",
            counts[0],
            counts[19]
        );
    }

    #[test]
    fn percentiles_are_ordered() {
        let sorted: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let p50 = percentile(&sorted, 0.50);
        let p95 = percentile(&sorted, 0.95);
        let p99 = percentile(&sorted, 0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.99), 3.0);
    }

    #[test]
    fn knee_detection_flags_the_first_saturated_point() {
        let mk = |offered: f64, achieved: f64, p99: f64| CapacityPoint {
            offered_qps: offered,
            achieved_qps: achieved,
            p50_ms: 1.0,
            p95_ms: 2.0,
            p99_ms: p99,
            errors: 0,
            requests: 100,
        };
        let points = vec![
            mk(100.0, 99.0, 2.0),
            mk(200.0, 198.0, 3.0),
            mk(400.0, 310.0, 40.0),
            mk(800.0, 330.0, 400.0),
        ];
        assert_eq!(saturation_knee(&points), Some(400.0));
        let healthy = vec![mk(100.0, 99.0, 2.0), mk(200.0, 197.0, 2.5)];
        assert_eq!(saturation_knee(&healthy), None);
    }

    #[test]
    fn query_pool_is_deterministic_and_nonempty() {
        let setup = crate::DemoSetup::build();
        let a = query_pool(&setup.index, 12);
        let b = query_pool(&setup.index, 12);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12 + 11, "singles plus adjacent pairs");
        assert!(a.iter().all(|q| !q.trim().is_empty()));
    }

    #[test]
    fn rank_pool_renders_rank_specs() {
        let pool = rank_pool(&["covid".to_string(), "news cycle".to_string()], 7);
        assert_eq!(pool.len(), 2);
        assert!(pool.iter().all(|s| s.path == "/rank"));
        assert!(pool[1].body.contains("\"news cycle\""));
        assert!(pool[0].body.contains("\"k\": 7"));
    }

    #[test]
    fn repeated_explain_pool_is_a_deterministic_hot_set() {
        let a = repeated_explain_pool("covid outbreak", 3, 2);
        let b = repeated_explain_pool("covid outbreak", 3, 2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8, "4 endpoints x 2 docs");
        assert_eq!(
            a.iter()
                .filter(|s| s.path == "/explain/term-removal")
                .count(),
            2
        );
        assert!(a.iter().all(|s| s.body.contains("\"max_evals\": 64")));
        assert!(a[0].body.contains("\"doc\": 0") && a[4].body.contains("\"doc\": 1"));
        assert!(
            a.iter()
                .filter(|s| s.path == "/explain/query-augmentation")
                .all(|s| !s.body.contains("\"doc\": 0")),
            "augmentation never targets the already-top-ranked document"
        );
    }

    #[test]
    fn capacity_json_shape_is_stable() {
        let points = vec![CapacityPoint {
            offered_qps: 50.0,
            achieved_qps: 49.5,
            p50_ms: 1.5,
            p95_ms: 2.0,
            p99_ms: 2.5,
            errors: 0,
            requests: 100,
        }];
        let doc = capacity_json(LoopMode::Open, 42, 100, &points);
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some(CAPACITY_SCHEMA)
        );
        assert_eq!(doc.get("mode").and_then(Value::as_str), Some("open"));
        let rows = doc.get("points").and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get("offered_qps").and_then(Value::as_f64),
            Some(50.0)
        );
    }
}
