//! Figure regenerators: one function per figure of the paper.
//!
//! Each regenerator prints what the figure shows and returns a list of
//! `(check, passed)` pairs — the shape assertions that say whether the
//! reproduction matches the published result. The `experiments` binary
//! prints a PASS/FAIL summary from these.

use credence_core::{
    CredenceEngine, Edit, EngineConfig, QueryAugmentationConfig, SentenceRemovalConfig,
};
use credence_index::DocId;
use credence_server::{handle_request, AppState};

use crate::DemoSetup;

/// One shape check of a figure.
#[derive(Debug, Clone)]
pub struct Check {
    /// What the paper's figure shows.
    pub claim: String,
    /// What we measured.
    pub measured: String,
    /// Whether the shapes agree.
    pub passed: bool,
}

impl Check {
    fn new(claim: impl Into<String>, measured: impl Into<String>, passed: bool) -> Self {
        Self {
            claim: claim.into(),
            measured: measured.into(),
            passed,
        }
    }
}

fn engine_over(setup: &DemoSetup) -> (credence_rank::Bm25Ranker<'_>, EngineConfig) {
    (setup.ranker(), EngineConfig::fast())
}

/// Figure 1 — the architecture: every REST endpoint answers in-process.
pub fn fig1() -> Vec<Check> {
    println!("\n=== FIG1: system architecture (REST surface) ===");
    let demo = credence_corpus::covid_demo_corpus();
    let state = AppState::leak(demo.docs.clone(), EngineConfig::fast());
    let fake = demo.fake_news;

    let calls: Vec<(&str, &str, String)> = vec![
        ("GET", "/health", String::new()),
        ("GET", "/corpus", String::new()),
        ("GET", "/doc/0", String::new()),
        (
            "POST",
            "/rank",
            r#"{"query": "covid outbreak", "k": 10}"#.to_string(),
        ),
        (
            "POST",
            "/explain/sentence-removal",
            format!(r#"{{"query": "covid outbreak", "k": 10, "doc": {fake}}}"#),
        ),
        (
            "POST",
            "/explain/query-augmentation",
            format!(r#"{{"query": "covid outbreak", "k": 10, "doc": {fake}, "threshold": 2}}"#),
        ),
        (
            "POST",
            "/explain/doc2vec-nearest",
            format!(r#"{{"query": "covid outbreak", "k": 10, "doc": {fake}}}"#),
        ),
        (
            "POST",
            "/explain/cosine-sampled",
            format!(r#"{{"query": "covid outbreak", "k": 10, "doc": {fake}, "samples": 50}}"#),
        ),
        (
            "POST",
            "/topics",
            r#"{"query": "covid outbreak", "k": 10, "num_topics": 3}"#.to_string(),
        ),
        (
            "POST",
            "/rerank",
            format!(
                r#"{{"query": "covid outbreak", "k": 10, "doc": {fake}, "body": "edited body"}}"#
            ),
        ),
    ];

    let mut checks = Vec::new();
    for (method, path, body) in calls {
        let req = credence_server::http::Request {
            method: method.to_string(),
            path: path.to_string(),
            headers: Default::default(),
            body: body.into_bytes(),
        };
        let resp = handle_request(state, &req);
        println!("  {method:<4} {path:<30} -> {}", resp.status);
        checks.push(Check::new(
            format!("{method} {path} serves the Fig-1 API"),
            format!("HTTP {}", resp.status),
            resp.status == 200,
        ));
    }
    checks
}

/// Figure 2 — sentence-removal counterfactual: rank 3 → 11 by removing the
/// two sentences that mention the query terms (importance 2 each).
pub fn fig2() -> Vec<Check> {
    println!("\n=== FIG2: counterfactual document (sentence removal) ===");
    let setup = DemoSetup::build();
    let (ranker, config) = engine_over(&setup);
    let engine = CredenceEngine::new(&ranker, config);
    let fake = DocId(setup.demo.fake_news as u32);

    let result = engine
        .sentence_removal(
            setup.demo.query,
            setup.demo.k,
            fake,
            &SentenceRemovalConfig::default(),
        )
        .expect("fig2 explanation");
    let e = &result.explanations[0];
    println!(
        "  query {:?}, k = {}, document {} (old rank {})",
        setup.demo.query, setup.demo.k, fake, result.old_rank
    );
    println!(
        "  removed sentences {:?} (importances {:?}, sum {})",
        e.removed,
        e.removed
            .iter()
            .map(|&i| result.importance[i])
            .collect::<Vec<_>>(),
        e.importance
    );
    println!("  new rank: {}", e.new_rank);
    for t in &e.removed_text {
        println!("    struck: {t}");
    }

    let first_and_last = e.removed == vec![0, result.sentences.len() - 1];
    vec![
        Check::new(
            "old rank = 3",
            format!("{}", result.old_rank),
            result.old_rank == 3,
        ),
        Check::new(
            "new rank = 11 (> k = 10)",
            format!("{}", e.new_rank),
            e.new_rank == 11,
        ),
        Check::new(
            "minimal set = the 2 covid/outbreak sentences",
            format!("{:?}", e.removed),
            e.removed.len() == 2 && first_and_last,
        ),
        Check::new(
            "both sentences score 2 (combination 4)",
            format!("{}", e.importance),
            (e.importance - 4.0).abs() < 1e-12,
        ),
        Check::new(
            "all single removals evaluated first",
            format!("{} candidates", e.candidates_evaluated),
            e.candidates_evaluated == result.sentences.len() + 1,
        ),
    ]
}

/// Figure 3 — seven query augmentations with threshold 2; `+5g` reaches
/// rank 2 and `+5g +microchip` rank 1.
pub fn fig3() -> Vec<Check> {
    println!("\n=== FIG3: counterfactual queries (augmentation) ===");
    let setup = DemoSetup::build();
    let (ranker, config) = engine_over(&setup);
    let engine = CredenceEngine::new(&ranker, config);
    let fake = DocId(setup.demo.fake_news as u32);

    let result = engine
        .query_augmentation(
            setup.demo.query,
            setup.demo.k,
            fake,
            &QueryAugmentationConfig {
                n: 7,
                threshold: 2,
                ..Default::default()
            },
        )
        .expect("fig3 explanations");
    for e in &result.explanations {
        println!(
            "  {:<44} rank {} -> {}",
            e.augmented_query, e.old_rank, e.new_rank
        );
    }

    let r5g = engine.full_ranking("covid outbreak 5g").rank_of(fake);
    let r5gm = engine
        .full_ranking("covid outbreak 5g microchip")
        .rank_of(fake);
    println!("  direct checks: +5g -> {r5g:?}, +5g +microchip -> {r5gm:?}");

    let all_terms: Vec<&str> = result
        .explanations
        .iter()
        .flat_map(|e| e.terms.iter().map(String::as_str))
        .collect();
    vec![
        Check::new(
            "7 valid augmentations at threshold 2",
            format!("{}", result.explanations.len()),
            result.explanations.len() == 7,
        ),
        Check::new(
            "all reach rank <= 2",
            format!(
                "{:?}",
                result
                    .explanations
                    .iter()
                    .map(|e| e.new_rank)
                    .collect::<Vec<_>>()
            ),
            result.explanations.iter().all(|e| e.new_rank <= 2),
        ),
        Check::new(
            "'covid outbreak 5G' -> rank 2",
            format!("{r5g:?}"),
            r5g == Some(2),
        ),
        Check::new(
            "'covid outbreak 5G microchip' -> rank 1",
            format!("{r5gm:?}"),
            r5gm == Some(1),
        ),
        Check::new(
            "distinguishing terms (5g/microchip) among augmentations",
            format!("{all_terms:?}"),
            all_terms.contains(&"5g") && all_terms.iter().any(|t| t.contains("microchip")),
        ),
    ]
}

/// Figure 4 — instance-based counterfactuals surface the near-duplicate.
pub fn fig4() -> Vec<Check> {
    println!("\n=== FIG4: instance-based counterfactuals ===");
    let setup = DemoSetup::build();
    let (ranker, config) = engine_over(&setup);
    let engine = CredenceEngine::new(&ranker, config);
    let fake = DocId(setup.demo.fake_news as u32);
    let dup = DocId(setup.demo.near_duplicate as u32);

    let d2v = engine
        .doc2vec_nearest(setup.demo.query, setup.demo.k, fake, 1)
        .expect("fig4 doc2vec");
    println!(
        "  Doc2Vec nearest: doc {} similarity {:.2} (paper reports ~0.75)",
        d2v[0].doc, d2v[0].similarity
    );
    let cs = engine
        .cosine_sampled(setup.demo.query, setup.demo.k, fake, 1, Some(1000))
        .expect("fig4 cosine");
    println!(
        "  Cosine sampled:  doc {} similarity {:.2}",
        cs[0].doc, cs[0].similarity
    );
    let original_rank = engine.full_ranking(setup.demo.query).rank_of(dup);

    vec![
        Check::new(
            "doc2vec-nearest instance = the near-duplicate",
            format!("doc {}", d2v[0].doc),
            d2v[0].doc == dup,
        ),
        Check::new(
            "high but non-identical similarity",
            format!("{:.2}", d2v[0].similarity),
            d2v[0].similarity > 0.4 && d2v[0].similarity < 0.9999,
        ),
        Check::new(
            "cosine-sampled agrees",
            format!("doc {}", cs[0].doc),
            cs[0].doc == dup,
        ),
        Check::new(
            "instance absent from the original top-10",
            format!("rank {original_rank:?}"),
            original_rank.is_none() || original_rank.unwrap() > setup.demo.k,
        ),
    ]
}

/// Figure 5 — the builder: covid→flu / outbreak→the flu drops rank 3 → 11.
pub fn fig5() -> Vec<Check> {
    println!("\n=== FIG5: build-your-own counterfactual ===");
    let setup = DemoSetup::build();
    let (ranker, config) = engine_over(&setup);
    let engine = CredenceEngine::new(&ranker, config);
    let fake = DocId(setup.demo.fake_news as u32);

    let outcome = engine
        .builder_edits(
            setup.demo.query,
            setup.demo.k,
            fake,
            &[
                Edit::replace("covid", "flu"),
                Edit::replace("covid-19", "flu"),
                Edit::replace("outbreak", "the flu"),
            ],
        )
        .expect("fig5 outcome");
    println!(
        "  edits: covid->flu, covid-19->flu, outbreak->'the flu'; rank {} -> {} (valid: {})",
        outcome.old_rank, outcome.new_rank, outcome.valid
    );
    for row in &outcome.rows {
        let arrow = match row.movement() {
            m if m < 0 => "raised",
            m if m > 0 => "lowered",
            _ => "unchanged",
        };
        println!(
            "    rank {:>2}: doc {:>2} ({}{})",
            row.new_rank,
            row.doc,
            arrow,
            if row.substituted { ", edited" } else { "" }
        );
    }

    vec![
        Check::new(
            "old rank = 3",
            format!("{}", outcome.old_rank),
            outcome.old_rank == 3,
        ),
        Check::new(
            "new rank = 11 = k + 1",
            format!("{}", outcome.new_rank),
            outcome.new_rank == setup.demo.k + 1,
        ),
        Check::new(
            "green check (valid)",
            format!("{}", outcome.valid),
            outcome.valid,
        ),
        Check::new(
            "revealed doc = the rank-11 flu story",
            format!("{:?}", outcome.revealed),
            outcome.revealed == Some(DocId(setup.demo.rank11 as u32)),
        ),
    ]
}
