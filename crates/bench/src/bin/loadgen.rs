//! `loadgen`: the in-repo load/capacity harness.
//!
//! Sweeps offered-QPS points against a CREDENCE server — an external
//! one via `--addr`, or a self-contained in-process single-node server
//! over the demo corpus when no address is given — and writes the
//! capacity curve to `BENCH_capacity.json` (see
//! [`credence_bench::loadgen`] for the measurement discipline).
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--out BENCH_capacity.json]
//!         [--mode open|closed] [--concurrency N] [--seed S]
//!         [--qps 100,200,400,...] [--requests N] [--k K] [--zipf S]
//!         [--trace rank|repeated]
//! ```
//!
//! `--trace rank` (the default) sweeps `/rank` queries. `--trace
//! repeated` drives a seeded zipfian mix over a small hot set of
//! explanation requests instead — the workload the cross-request
//! explanation cache serves — so hit rates and coalescing show up in
//! `/metrics` under load.
//!
//! `CREDENCE_BENCH_SMOKE=1` (or `--smoke`) shrinks the sweep to a
//! seconds-long sanity pass for CI.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use credence_bench::loadgen::{
    capacity_json, query_pool, rank_pool, repeated_explain_pool, run_point, schedule, LoopMode,
};
use credence_core::EngineConfig;
use credence_corpus::covid_demo_corpus;
use credence_index::InvertedIndex;
use credence_json::to_string;
use credence_server::{AppState, Server};
use credence_text::Analyzer;

struct Options {
    addr: Option<SocketAddr>,
    out: String,
    mode_open: bool,
    concurrency: usize,
    seed: u64,
    qps: Vec<f64>,
    requests: usize,
    k: usize,
    zipf: f64,
    repeated: bool,
    smoke: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            addr: None,
            out: "BENCH_capacity.json".to_string(),
            mode_open: true,
            concurrency: 8,
            seed: 42,
            qps: Vec::new(),
            requests: 400,
            k: 10,
            zipf: 1.0,
            repeated: false,
            smoke: std::env::var("CREDENCE_BENCH_SMOKE").map_or(false, |v| v == "1"),
        }
    }
}

fn main() -> ExitCode {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next().and_then(|v| v.parse().ok()) {
                Some(a) => opts.addr = Some(a),
                None => return usage("--addr requires HOST:PORT"),
            },
            "--out" => match args.next() {
                Some(p) => opts.out = p,
                None => return usage("--out requires a path"),
            },
            "--mode" => match args.next().as_deref() {
                Some("open") => opts.mode_open = true,
                Some("closed") => opts.mode_open = false,
                _ => return usage("--mode must be open | closed"),
            },
            "--concurrency" => match args.next().and_then(|v| v.parse().ok()) {
                Some(c) if c >= 1 => opts.concurrency = c,
                _ => return usage("--concurrency requires an integer >= 1"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => opts.seed = s,
                None => return usage("--seed requires an integer"),
            },
            "--qps" => match args.next() {
                Some(list) => {
                    for part in list.split(',').filter(|p| !p.trim().is_empty()) {
                        match part.trim().parse::<f64>() {
                            Ok(q) if q > 0.0 => opts.qps.push(q),
                            _ => return usage("--qps values must be positive numbers"),
                        }
                    }
                }
                None => return usage("--qps requires a comma-separated list"),
            },
            "--requests" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => opts.requests = n,
                _ => return usage("--requests requires an integer >= 1"),
            },
            "--k" => match args.next().and_then(|v| v.parse().ok()) {
                Some(k) if k >= 1 => opts.k = k,
                _ => return usage("--k requires an integer >= 1"),
            },
            "--zipf" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) if (0.0..=4.0).contains(&s) => opts.zipf = s,
                _ => return usage("--zipf requires a number in 0..=4"),
            },
            "--trace" => match args.next().as_deref() {
                Some("rank") => opts.repeated = false,
                Some("repeated") => opts.repeated = true,
                _ => return usage("--trace must be rank | repeated"),
            },
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => {
                println!(
                    "loadgen — CREDENCE load/capacity harness\n\n\
                     USAGE: loadgen [--addr HOST:PORT] [--out FILE]\n\
                     \x20              [--mode open|closed] [--concurrency N]\n\
                     \x20              [--seed S] [--qps A,B,C] [--requests N]\n\
                     \x20              [--k K] [--zipf S] [--trace rank|repeated]\n\
                     \x20              [--smoke]\n\n\
                     Without --addr, boots an in-process single-node server on\n\
                     the demo corpus and drives that. --qps defaults to a sweep\n\
                     that runs past the saturation knee. --trace repeated swaps\n\
                     the /rank mix for a seeded zipfian hot set of explanation\n\
                     requests (exercising the explanation cache).\n\
                     CREDENCE_BENCH_SMOKE=1 (or --smoke) shrinks the sweep\n\
                     for CI."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument: {other}")),
        }
    }
    if opts.smoke {
        if opts.qps.is_empty() {
            opts.qps = if opts.repeated {
                vec![25.0, 50.0]
            } else {
                vec![25.0, 50.0, 100.0, 200.0]
            };
        }
        opts.requests = opts.requests.min(40);
    } else if opts.qps.is_empty() {
        // Explanation requests cost far more than /rank, so the repeated
        // trace sweeps a lower range; a warm cache pushes the knee well
        // past what cold misses could sustain.
        opts.qps = if opts.repeated {
            vec![50.0, 100.0, 200.0, 400.0, 800.0]
        } else {
            vec![250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0]
        };
    }

    // The request pool is derived from the demo corpus either way:
    // workers in a cluster serve the same corpus, and an external
    // single-node target is assumed to as well (queries with no hits
    // still measure the full request path).
    let pool = if opts.repeated {
        let demo = covid_demo_corpus();
        repeated_explain_pool(demo.query, opts.k.min(demo.docs.len()), 3)
    } else {
        let demo_index = InvertedIndex::build(covid_demo_corpus().docs, Analyzer::english());
        rank_pool(&query_pool(&demo_index, 16), opts.k)
    };

    let (addr, _local) = match opts.addr {
        Some(addr) => (addr, None),
        None => {
            eprintln!("loadgen: booting in-process demo server...");
            let state = AppState::leak(covid_demo_corpus().docs, EngineConfig::fast());
            let server = match Server::bind("127.0.0.1:0", state) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("loadgen: bind failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let handle = match server.spawn() {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("loadgen: spawn failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            (handle.addr(), Some(handle))
        }
    };

    let mode = if opts.mode_open {
        LoopMode::Open
    } else {
        LoopMode::Closed {
            concurrency: opts.concurrency,
        }
    };
    let timeout = Duration::from_secs(10);
    let mut points = Vec::new();
    for (i, &qps) in opts.qps.iter().enumerate() {
        // Per-point seed offset keeps arrival processes independent
        // across points while staying a pure function of --seed.
        let sched = schedule(
            opts.seed.wrapping_add(i as u64),
            pool.len(),
            opts.zipf,
            opts.requests,
            qps,
        );
        let point = run_point(addr, &pool, &sched, qps, mode, timeout);
        eprintln!(
            "loadgen: offered {:>8.1} qps  achieved {:>8.1} qps  p50 {:>8.2}ms  p95 {:>8.2}ms  p99 {:>8.2}ms  errors {}",
            point.offered_qps,
            point.achieved_qps,
            point.p50_ms,
            point.p95_ms,
            point.p99_ms,
            point.errors
        );
        points.push(point);
    }

    let doc = capacity_json(mode, opts.seed, opts.requests, &points);
    if let Err(e) = std::fs::write(&opts.out, to_string(&doc) + "\n") {
        eprintln!("loadgen: failed to write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    eprintln!("loadgen: wrote {}", opts.out);
    if let Some(handle) = _local {
        handle.stop();
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\nrun with --help for usage");
    ExitCode::FAILURE
}
