//! `bench_check`: a throughput-regression gate over the harness's
//! `BENCH_<target>.json` trajectory files.
//!
//! Modes:
//!
//! - `bench_check` — compare the current `BENCH_*.json` records (from
//!   `CREDENCE_BENCH_DIR`, or the workspace's `target/credence-bench`)
//!   against the committed baseline and exit non-zero when any
//!   throughput benchmark regressed by more than the allowed factor.
//! - `bench_check update` — regenerate the baseline from the current
//!   records (commit the result after an intentional perf change).
//!
//! Only records that report `elements_per_sec` (candidate evaluations
//! per second) are gated: the evaluation count per iteration is fixed
//! and deterministic, so even smoke-mode runs give a stable signal,
//! unlike raw wall-clock medians of sub-millisecond benches.
//!
//! Environment:
//!
//! - `CREDENCE_BENCH_BASELINE` — baseline path (default
//!   `BENCH_baseline.json` in the current directory, i.e. the repo root
//!   when run via `ci.sh`).
//! - `CREDENCE_BENCH_REGRESSION_FACTOR` — allowed slowdown factor
//!   (default `2.0`: fail when current throughput is less than half the
//!   baseline).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use credence_json::{parse, to_string, Value};

/// Mirror of the harness's output-directory rule so the gate reads the
/// same files the benches just wrote.
fn bench_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CREDENCE_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    if let Ok(target) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(target).join("credence-bench");
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir.join("target").join("credence-bench");
        }
        if !dir.pop() {
            return PathBuf::from("target").join("credence-bench");
        }
    }
}

fn baseline_path() -> PathBuf {
    std::env::var("CREDENCE_BENCH_BASELINE")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("BENCH_baseline.json"))
}

fn regression_factor() -> f64 {
    std::env::var("CREDENCE_BENCH_REGRESSION_FACTOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|f: &f64| *f >= 1.0)
        .unwrap_or(2.0)
}

/// Read every `BENCH_*.json` in `dir` and collect the throughput
/// records: benchmark name → elements (evaluations) per second.
fn load_throughputs(dir: &std::path::Path) -> std::io::Result<BTreeMap<String, f64>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let text = std::fs::read_to_string(&path)?;
        let Ok(root) = parse(&text) else {
            eprintln!("bench_check: skipping unparseable {}", path.display());
            continue;
        };
        if root.get("schema").and_then(Value::as_str) != Some("credence-bench/1") {
            continue;
        }
        let Some(benches) = root.get("benchmarks").and_then(Value::as_array) else {
            continue;
        };
        for b in benches {
            let (Some(name), Some(eps)) = (
                b.get("name").and_then(Value::as_str),
                b.get("elements_per_sec").and_then(Value::as_f64),
            ) else {
                continue;
            };
            out.insert(name.to_string(), eps);
        }
    }
    Ok(out)
}

fn load_baseline(path: &std::path::Path) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    let root = parse(&text).map_err(|e| format!("baseline {}: {e:?}", path.display()))?;
    if root.get("schema").and_then(Value::as_str) != Some("credence-bench-baseline/1") {
        return Err(format!(
            "baseline {} has the wrong schema tag",
            path.display()
        ));
    }
    let Some(benches) = root.get("benchmarks").and_then(Value::as_object) else {
        return Err("baseline is missing the 'benchmarks' object".into());
    };
    let mut out = BTreeMap::new();
    for (name, v) in benches {
        if let Some(eps) = v.get("elements_per_sec").and_then(Value::as_f64) {
            out.insert(name.clone(), eps);
        }
    }
    Ok(out)
}

fn write_baseline(path: &std::path::Path, current: &BTreeMap<String, f64>) -> std::io::Result<()> {
    let mut benches = BTreeMap::new();
    for (name, eps) in current {
        let mut m = BTreeMap::new();
        m.insert("elements_per_sec".to_string(), Value::Number(*eps));
        benches.insert(name.clone(), Value::Object(m));
    }
    let mut root = BTreeMap::new();
    root.insert(
        "schema".to_string(),
        Value::String("credence-bench-baseline/1".into()),
    );
    root.insert("benchmarks".to_string(), Value::Object(benches));
    std::fs::write(path, to_string(&Value::Object(root)))
}

/// Relative gates: `(fast, slow, min_ratio)` — the `fast` benchmark's
/// throughput must be at least `min_ratio` times the `slow` one's in the
/// *current* records. Unlike the baseline comparison these are absolute
/// claims about the code (e.g. "pruning beats the exhaustive scan"), so
/// they hold on any machine and cannot be washed out by a slow host.
const RATIO_GATES: &[(&str, &str, f64)] = &[
    (
        "ranking/throughput/pruned",
        "ranking/throughput/exhaustive",
        3.0,
    ),
    // Block-Max-WAND must not lose to the flat MaxScore path it supersedes
    // on the selective fixture query.
    ("ranking/throughput/bmw", "ranking/throughput/pruned", 1.0),
    // Sharded runs BMW per shard: even single-core (one shard plus thread
    // overhead) it must at least match the exhaustive scan.
    (
        "ranking/throughput/sharded",
        "ranking/throughput/exhaustive",
        1.0,
    ),
    // The incremental term-removal scorer must clearly beat re-analysing
    // the perturbed body from scratch.
    (
        "term_removal/throughput/incremental_parallel",
        "term_removal/throughput/exact_serial",
        2.0,
    ),
    // A repeated explanation request answered from the cross-request
    // cache must dwarf recomputing it (`explain_cache_bypass: true`).
    ("caching/throughput/warm", "caching/throughput/cold", 10.0),
    // The Rank-LIME sampler must clearly beat exact serial re-scoring
    // when routed through the incremental removal scorer with
    // batch-parallel evaluation.
    (
        "lime/throughput/incremental_parallel",
        "lime/throughput/exact_serial",
        2.0,
    ),
    // A repeated attribution answered from the explain cache must dwarf
    // re-fitting the surrogate.
    ("lime/cache/warm", "lime/cache/cold", 10.0),
];

/// Ratio verdicts: `(fast, slow, required, actual, ok)`. Gates whose
/// records are missing fail (`actual = None`) — the suite must have run.
fn check_ratios(current: &BTreeMap<String, f64>) -> Vec<(String, String, f64, Option<f64>, bool)> {
    RATIO_GATES
        .iter()
        .map(|&(fast, slow, min_ratio)| {
            let actual = match (current.get(fast), current.get(slow)) {
                (Some(&f), Some(&s)) if s > 0.0 => Some(f / s),
                _ => None,
            };
            let ok = actual.is_some_and(|r| r >= min_ratio);
            (fast.to_string(), slow.to_string(), min_ratio, actual, ok)
        })
        .collect()
}

/// One gate verdict: `(name, baseline_eps, current_eps, ok)`. A missing
/// current record fails — either the bench suite did not run or a bench
/// was renamed without `bench_check update`.
fn compare(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    factor: f64,
) -> Vec<(String, f64, Option<f64>, bool)> {
    baseline
        .iter()
        .map(|(name, &base)| {
            let cur = current.get(name).copied();
            let ok = cur.is_some_and(|c| c * factor >= base);
            (name.clone(), base, cur, ok)
        })
        .collect()
}

fn main() -> ExitCode {
    let update = match std::env::args().nth(1).as_deref() {
        Some("update") => true,
        None => false,
        Some(other) => {
            eprintln!("usage: bench_check [update]  (got: {other})");
            return ExitCode::FAILURE;
        }
    };

    let dir = bench_dir();
    let current = match load_throughputs(&dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_check: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    if current.is_empty() {
        eprintln!(
            "bench_check: no throughput records under {} — run the bench suite first",
            dir.display()
        );
        return ExitCode::FAILURE;
    }

    let baseline_path = baseline_path();
    if update {
        if let Err(e) = write_baseline(&baseline_path, &current) {
            eprintln!("bench_check: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "bench_check: wrote {} ({} benchmarks)",
            baseline_path.display(),
            current.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match load_baseline(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let factor = regression_factor();
    let verdicts = compare(&baseline, &current, factor);
    let mut failed = false;
    for (name, base, cur, ok) in &verdicts {
        let status = if *ok { "ok" } else { "REGRESSED" };
        match cur {
            Some(cur) => eprintln!(
                "bench_check: {status:<9} {name}  baseline {base:.0} evals/s, current {cur:.0} evals/s ({:.2}x)",
                cur / base
            ),
            None => eprintln!("bench_check: {status:<9} {name}  baseline {base:.0} evals/s, current MISSING"),
        }
        failed |= !ok;
    }
    let ratios = check_ratios(&current);
    for (fast, slow, required, actual, ok) in &ratios {
        let status = if *ok { "ok" } else { "FAILED" };
        match actual {
            Some(r) => {
                eprintln!("bench_check: {status:<9} {fast} >= {required}x {slow}  (actual {r:.2}x)")
            }
            None => eprintln!(
                "bench_check: {status:<9} {fast} >= {required}x {slow}  (records MISSING)"
            ),
        }
        failed |= !ok;
    }
    if failed {
        eprintln!(
            "bench_check: throughput regressed more than {factor}x against {} \
             (or a relative gate failed) — investigate, or run \
             `cargo run -p credence-bench --bin bench_check update` \
             after an intentional change",
            baseline_path.display()
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "bench_check: {} throughput benchmarks within {factor}x of baseline, {} ratio gates ok",
        verdicts.len(),
        ratios.len()
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(entries: &[(&str, f64)]) -> BTreeMap<String, f64> {
        entries.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let baseline = map(&[("a", 1000.0), ("b", 1000.0), ("c", 1000.0)]);
        let current = map(&[("a", 600.0), ("b", 499.0), ("c", 2500.0)]);
        let verdicts = compare(&baseline, &current, 2.0);
        let ok: BTreeMap<_, _> = verdicts
            .iter()
            .map(|(n, _, _, ok)| (n.clone(), *ok))
            .collect();
        assert!(ok["a"], "within 2x must pass");
        assert!(!ok["b"], "worse than 2x must fail");
        assert!(ok["c"], "improvements must pass");
    }

    #[test]
    fn compare_fails_missing_benchmarks() {
        let baseline = map(&[("gone", 1000.0)]);
        let verdicts = compare(&baseline, &map(&[]), 2.0);
        assert_eq!(verdicts.len(), 1);
        assert!(!verdicts[0].3);
        assert_eq!(verdicts[0].2, None);
    }

    #[test]
    fn ratio_gates_require_the_margin() {
        // A consistent record set satisfying every gate with headroom:
        // pruned 6x exhaustive, bmw 2x pruned, sharded 4x exhaustive,
        // incremental_parallel 5x exact_serial (term-removal and lime),
        // warm 50x cold (caching and lime).
        let pass = map(&[
            ("ranking/throughput/exhaustive", 1000.0),
            ("ranking/throughput/pruned", 6000.0),
            ("ranking/throughput/bmw", 12000.0),
            ("ranking/throughput/sharded", 4000.0),
            ("term_removal/throughput/exact_serial", 1000.0),
            ("term_removal/throughput/incremental_parallel", 5000.0),
            ("caching/throughput/cold", 100.0),
            ("caching/throughput/warm", 5000.0),
            ("lime/throughput/exact_serial", 1000.0),
            ("lime/throughput/incremental_parallel", 5000.0),
            ("lime/cache/cold", 100.0),
            ("lime/cache/warm", 5000.0),
        ]);
        assert!(
            check_ratios(&pass).iter().all(|v| v.4),
            "ample margins must pass every gate"
        );

        let mut fail = pass.clone();
        fail.insert("ranking/throughput/pruned".to_string(), 2000.0);
        assert!(!check_ratios(&fail)[0].4, "2x must fail a 3x gate");

        let mut missing = pass.clone();
        missing.remove("ranking/throughput/pruned");
        let v = &check_ratios(&missing)[0];
        assert!(!v.4 && v.3.is_none(), "missing records must fail");
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let dir = std::env::temp_dir().join(format!("bench-check-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_baseline.json");
        let current = map(&[("x/throughput", 1234.5)]);
        write_baseline(&path, &current).unwrap();
        let loaded = load_baseline(&path).unwrap();
        assert_eq!(loaded, current);
        std::fs::remove_dir_all(&dir).ok();
    }
}
