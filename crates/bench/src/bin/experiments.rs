//! The experiment regenerator: reproduces every figure of the paper and the
//! added quantitative tables (see EXPERIMENTS.md).
//!
//! ```sh
//! cargo run -p credence-bench --bin experiments --release          # everything
//! cargo run -p credence-bench --bin experiments --release -- fig2  # one artefact
//! ```
//!
//! Exit code is non-zero when any figure's shape check fails, so this binary
//! doubles as a reproduction gate.

use std::process::ExitCode;

use credence_bench::figures::{fig1, fig2, fig3, fig4, fig5, Check};
use credence_bench::tables::{
    ablation, effectiveness, feature_future_work, granularity, instances, quality,
    ranker_agreement, saliency_comparison, scaling,
};

fn run_figure(name: &str, f: fn() -> Vec<Check>) -> bool {
    let checks = f();
    let mut all = true;
    println!("\n  shape checks for {name}:");
    for c in &checks {
        let mark = if c.passed { "PASS" } else { "FAIL" };
        println!("    [{mark}] {} (measured: {})", c.claim, c.measured);
        all &= c.passed;
    }
    all
}

fn main() -> ExitCode {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all = which.is_empty() || which.iter().any(|a| a == "all");
    let want = |name: &str| all || which.iter().any(|a| a == name);

    let mut ok = true;
    if want("fig1") {
        ok &= run_figure("fig1", fig1);
    }
    if want("fig2") {
        ok &= run_figure("fig2", fig2);
    }
    if want("fig3") {
        ok &= run_figure("fig3", fig3);
    }
    if want("fig4") {
        ok &= run_figure("fig4", fig4);
    }
    if want("fig5") {
        ok &= run_figure("fig5", fig5);
    }
    if want("quality") {
        quality();
    }
    if want("scaling") {
        scaling();
    }
    if want("ablation") {
        ablation();
    }
    if want("instances") {
        instances();
    }
    if want("granularity") {
        granularity();
    }
    if want("saliency") {
        saliency_comparison();
    }
    if want("agreement") {
        ranker_agreement();
    }
    if want("features") {
        feature_future_work();
    }
    if want("effectiveness") {
        effectiveness();
    }

    if !ok {
        eprintln!("\nsome figure shape checks FAILED");
        return ExitCode::FAILURE;
    }
    println!("\nall requested artefacts regenerated; figure shape checks passed.");
    ExitCode::SUCCESS
}
