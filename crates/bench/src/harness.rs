//! A std-only bench harness exposing the subset of the criterion API the
//! bench files use, so the workspace benches run fully offline.
//!
//! Measurement model: per benchmark, warm up briefly, time one probe
//! iteration to calibrate how many iterations fit in a sample, then record
//! wall-clock samples with [`std::time::Instant`] and report mean / median /
//! p95 / min / max nanoseconds per iteration. A total measurement budget
//! caps slow benchmarks so a full `cargo bench` stays bounded.
//!
//! Environment knobs:
//!
//! - `CREDENCE_BENCH_SMOKE=1` — smoke mode: one warmup iteration, then
//!   three single-iteration samples. Used by `ci.sh` to prove every bench
//!   target still runs (and to feed the `bench_check` ratio gates) without
//!   paying for statistics.
//! - `CREDENCE_BENCH_DIR` — where `BENCH_<target>.json` is written
//!   (default `target/credence-bench`).
//!
//! Results are appended to a per-target JSON trajectory file
//! (`BENCH_<target>.json`, schema `credence-bench/1`) so successive perf
//! PRs can diff timings without any external tooling.

use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::{Duration, Instant};

use credence_json::Value;

/// Default samples per benchmark (criterion's `sample_size` overrides it
/// per group).
const DEFAULT_SAMPLE_SIZE: usize = 30;
/// Target wall-clock per sample; the calibration probe decides how many
/// iterations that is.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(5);
/// Warmup budget before the calibration probe.
const WARMUP_TIME: Duration = Duration::from_millis(60);
/// Total measurement budget per benchmark; slow benchmarks get fewer
/// samples (never fewer than two) instead of blowing it.
const MEASUREMENT_BUDGET: Duration = Duration::from_secs(3);

/// A benchmark identifier, mirroring criterion's: either a bare parameter
/// (`from_parameter`) or a `function/parameter` pair (`new`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Just the parameter, for groups whose name already carries the
    /// function.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Work performed per iteration, for throughput reporting (criterion's
/// shape, reduced to what the explainer benches need).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The iteration processes this many elements (for the counterfactual
    /// benches: candidates evaluated), so records also report elements/sec.
    Elements(u64),
}

/// One benchmark's summarised timings, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full benchmark name (`group/parameter` or the bare function name).
    pub name: String,
    /// Number of recorded samples.
    pub samples: usize,
    /// Iterations averaged inside each sample.
    pub iters_per_sample: u64,
    /// Mean ns/iter across samples.
    pub mean_ns: f64,
    /// Median ns/iter.
    pub median_ns: f64,
    /// 95th-percentile ns/iter.
    pub p95_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Elements processed per iteration (0 when no throughput was declared).
    pub elements_per_iter: u64,
}

impl BenchRecord {
    /// Median throughput in elements (candidate evaluations) per second,
    /// when the benchmark declared [`Throughput::Elements`].
    pub fn elements_per_sec(&self) -> Option<f64> {
        if self.elements_per_iter == 0 || self.median_ns <= 0.0 {
            return None;
        }
        Some(self.elements_per_iter as f64 * 1e9 / self.median_ns)
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    smoke: bool,
    measured: Option<(Vec<f64>, u64)>,
}

impl Bencher {
    /// Measure the closure. Criterion semantics: the closure is the whole
    /// measured body; its return value is passed through
    /// [`black_box`] so the work is not optimised
    /// away.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.smoke {
            // One untimed call absorbs cold state (lazy caches, page
            // faults), then three single-iteration samples: with only two
            // samples the reported median degenerates to the slower one,
            // which makes the bench_check ratio gates needlessly noisy.
            black_box(f());
            let mut samples = Vec::with_capacity(3);
            for _ in 0..3 {
                let start = Instant::now();
                black_box(f());
                samples.push(start.elapsed().as_nanos() as f64);
            }
            self.measured = Some((samples, 1));
            return;
        }

        // Warmup: at least one call, then spin out the budget.
        let warm_start = Instant::now();
        black_box(f());
        while warm_start.elapsed() < WARMUP_TIME {
            black_box(f());
        }

        // Calibrate: size samples off one probe iteration.
        let probe_start = Instant::now();
        black_box(f());
        let probe_ns = probe_start.elapsed().as_nanos().max(1) as u64;
        let iters = (TARGET_SAMPLE_TIME.as_nanos() as u64 / probe_ns).clamp(1, 1_000_000);

        // Cap sample count so `iters × samples × probe` fits the budget.
        let budget_samples = MEASUREMENT_BUDGET.as_nanos() as u64 / (probe_ns * iters).max(1);
        let samples_to_take = (budget_samples as usize).clamp(2, self.sample_size);

        let mut samples = Vec::with_capacity(samples_to_take);
        for _ in 0..samples_to_take {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.measured = Some((samples, iters));
    }
}

/// Where `BENCH_*.json` files go when `CREDENCE_BENCH_DIR` is unset:
/// `$CARGO_TARGET_DIR/credence-bench` if set, else `target/credence-bench`
/// under the nearest ancestor holding a `Cargo.lock` (cargo runs bench
/// executables from the *package* directory, and the workspace target dir
/// is where trajectory files should accumulate).
fn default_out_dir() -> std::path::PathBuf {
    if let Ok(target) = std::env::var("CARGO_TARGET_DIR") {
        return std::path::Path::new(&target).join("credence-bench");
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir.join("target").join("credence-bench");
        }
        if !dir.pop() {
            return std::path::Path::new("target").join("credence-bench");
        }
    }
}

/// Sorted-samples percentile with nearest-rank interpolation on the index.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn summarise(
    name: String,
    mut samples: Vec<f64>,
    iters_per_sample: u64,
    elements_per_iter: u64,
) -> BenchRecord {
    samples.sort_by(|a, b| a.total_cmp(b));
    let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
    BenchRecord {
        name,
        samples: samples.len(),
        iters_per_sample,
        mean_ns: mean,
        median_ns: percentile(&samples, 0.5),
        p95_ns: percentile(&samples, 0.95),
        min_ns: samples.first().copied().unwrap_or(0.0),
        max_ns: samples.last().copied().unwrap_or(0.0),
        elements_per_iter,
    }
}

/// The harness entry point; [`criterion_main!`](crate::criterion_main)
/// constructs one per bench target and writes the summary when all groups
/// have run.
pub struct Criterion {
    target: String,
    out_dir: std::path::PathBuf,
    smoke: bool,
    results: Vec<BenchRecord>,
}

impl Criterion {
    /// A harness for one bench target, honouring `CREDENCE_BENCH_SMOKE`
    /// and `CREDENCE_BENCH_DIR`.
    pub fn new(target: &str) -> Self {
        let smoke = std::env::var("CREDENCE_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
        let out_dir = std::env::var("CREDENCE_BENCH_DIR")
            .map(Into::into)
            .unwrap_or_else(|_| default_out_dir());
        Self::with_options(target, smoke, out_dir)
    }

    fn with_options(target: &str, smoke: bool, out_dir: std::path::PathBuf) -> Self {
        Self {
            target: target.to_string(),
            out_dir,
            smoke,
            results: Vec::new(),
        }
    }

    /// Run a single benchmark at the default sample size.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into().id, DEFAULT_SAMPLE_SIZE, 0, f);
        self
    }

    /// Open a named group; its benchmarks are reported as
    /// `<group>/<id>`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            elements: 0,
        }
    }

    fn run(
        &mut self,
        name: String,
        sample_size: usize,
        elements: u64,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let mut bencher = Bencher {
            sample_size,
            smoke: self.smoke,
            measured: None,
        };
        f(&mut bencher);
        let (samples, iters) = bencher
            .measured
            .unwrap_or_else(|| panic!("benchmark '{name}' never called Bencher::iter"));
        let record = summarise(name, samples, iters, elements);
        let throughput = record
            .elements_per_sec()
            .map(|eps| format!("  {eps:>12.0} evals/s"))
            .unwrap_or_default();
        eprintln!(
            "bench {:<40} median {:>12.1} ns/iter  (p95 {:>12.1}, {} samples x {} iters){}",
            record.name,
            record.median_ns,
            record.p95_ns,
            record.samples,
            record.iters_per_sample,
            throughput,
        );
        self.results.push(record);
    }

    /// Print the per-target table and write `BENCH_<target>.json`. Called
    /// by [`criterion_main!`](crate::criterion_main) after all groups ran.
    pub fn final_summary(&mut self) {
        let rows: Vec<Vec<String>> = self
            .results
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{:.4}", r.median_ns / 1e6),
                    format!("{:.4}", r.p95_ns / 1e6),
                    format!("{:.4}", r.mean_ns / 1e6),
                    r.samples.to_string(),
                    r.iters_per_sample.to_string(),
                    r.elements_per_sec()
                        .map(|eps| format!("{eps:.0}"))
                        .unwrap_or_else(|| "-".to_string()),
                ]
            })
            .collect();
        crate::print_table(
            &format!(
                "bench: {}{}",
                self.target,
                if self.smoke { " (smoke)" } else { "" }
            ),
            &[
                "benchmark",
                "median ms",
                "p95 ms",
                "mean ms",
                "samples",
                "iters",
                "evals/s",
            ],
            &rows,
        );

        match self.write_json() {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write bench JSON: {e}"),
        }
    }

    fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(&self.out_dir)?;
        let path = self.out_dir.join(format!("BENCH_{}.json", self.target));
        let json = self.to_json();
        std::fs::write(&path, credence_json::to_string(&json))?;
        Ok(path)
    }

    fn to_json(&self) -> Value {
        let benchmarks = self
            .results
            .iter()
            .map(|r| {
                let mut m = BTreeMap::new();
                m.insert("name".to_string(), Value::String(r.name.clone()));
                m.insert("samples".to_string(), Value::Number(r.samples as f64));
                m.insert(
                    "iters_per_sample".to_string(),
                    Value::Number(r.iters_per_sample as f64),
                );
                m.insert("mean_ns".to_string(), Value::Number(r.mean_ns));
                m.insert("median_ns".to_string(), Value::Number(r.median_ns));
                m.insert("p95_ns".to_string(), Value::Number(r.p95_ns));
                m.insert("min_ns".to_string(), Value::Number(r.min_ns));
                m.insert("max_ns".to_string(), Value::Number(r.max_ns));
                if let Some(eps) = r.elements_per_sec() {
                    m.insert(
                        "elements_per_iter".to_string(),
                        Value::Number(r.elements_per_iter as f64),
                    );
                    m.insert("elements_per_sec".to_string(), Value::Number(eps));
                }
                Value::Object(m)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert(
            "schema".to_string(),
            Value::String("credence-bench/1".to_string()),
        );
        root.insert("target".to_string(), Value::String(self.target.clone()));
        root.insert("smoke".to_string(), Value::Bool(self.smoke));
        root.insert("benchmarks".to_string(), Value::Array(benchmarks));
        Value::Object(root)
    }
}

/// A named group of benchmarks sharing a `sample_size` override.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
    sample_size: usize,
    elements: u64,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Declare the work performed per iteration by subsequent benchmarks in
    /// this group, so their records report elements (evaluations) per
    /// second.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let Throughput::Elements(n) = t;
        self.elements = n;
        self
    }

    /// Run `<group>/<id>`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.prefix, id.into().id);
        self.criterion.run(name, self.sample_size, self.elements, f);
        self
    }

    /// Run `<group>/<id>` with an input threaded into the closure
    /// (criterion's shape; the input is borrowed, not measured).
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.prefix, id.id);
        self.criterion
            .run(name, self.sample_size, self.elements, |b| f(b, input));
        self
    }

    /// End the group. Records are written eagerly, so this is shape
    /// compatibility only; dropping the group without calling it is fine.
    pub fn finish(self) {}
}

/// Declare a bench group function: `criterion_group!(benches, f1, f2);`
/// expands to `pub fn benches(c: &mut Criterion)` running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declare the bench `main`: runs each group under one [`Criterion`] named
/// after the bench target, then prints the table and writes
/// `BENCH_<target>.json`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::new(env!("CARGO_CRATE_NAME"));
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(300).id, "300");
        assert_eq!(BenchmarkId::new("serial", 1000).id, "serial/1000");
        assert_eq!(BenchmarkId::from("write").id, "write");
    }

    #[test]
    fn percentile_picks_expected_ranks() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&sorted, 0.5), 3.0);
        assert_eq!(percentile(&sorted, 0.95), 5.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn summarise_orders_statistics() {
        let r = summarise("t".into(), vec![5.0, 1.0, 3.0], 7, 0);
        assert_eq!(r.min_ns, 1.0);
        assert_eq!(r.max_ns, 5.0);
        assert_eq!(r.median_ns, 3.0);
        assert_eq!(r.iters_per_sample, 7);
        assert!((r.mean_ns - 3.0).abs() < 1e-12);
        assert_eq!(r.elements_per_sec(), None);
    }

    #[test]
    fn throughput_reports_elements_per_second() {
        // median 2e6 ns per iter, 1000 elements per iter => 5e5 elements/s.
        let r = summarise("t".into(), vec![2e6, 2e6], 1, 1000);
        let eps = r.elements_per_sec().expect("throughput set");
        assert!((eps - 5e5).abs() < 1e-3);

        let out = std::env::temp_dir().join(format!("credence-bench-tp-{}", std::process::id()));
        let mut c = Criterion::with_options("harness_tp", true, out.clone());
        {
            let mut g = c.benchmark_group("tp");
            g.sample_size(2).throughput(Throughput::Elements(64));
            g.bench_function("work", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        assert_eq!(c.results[0].elements_per_iter, 64);
        assert!(c.results[0].elements_per_sec().unwrap() > 0.0);
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn smoke_mode_measures_with_single_iterations() {
        let out = std::env::temp_dir().join(format!("credence-bench-test-{}", std::process::id()));
        let mut c = Criterion::with_options("harness_test", true, out.clone());
        let mut calls = 0u32;
        c.bench_function("counted", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert_eq!(
            calls, 4,
            "smoke mode runs one warmup plus three samples of one iter"
        );
        let r = &c.results[0];
        assert_eq!((r.samples, r.iters_per_sample), (3, 1));
        assert_eq!(r.name, "counted");
        assert!(r.median_ns > 0.0);
    }

    #[test]
    fn groups_prefix_names_and_write_trajectory_json() {
        let out = std::env::temp_dir().join(format!("credence-bench-json-{}", std::process::id()));
        let mut c = Criterion::with_options("harness_json", true, out.clone());
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2);
            g.bench_function("plain", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("param", 42), &3u64, |b, &x| {
                b.iter(|| x * 2)
            });
            g.finish();
        }
        assert_eq!(c.results[0].name, "grp/plain");
        assert_eq!(c.results[1].name, "grp/param/42");

        let path = c.write_json().unwrap();
        let parsed = credence_json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let Value::Object(root) = &parsed else {
            panic!("root must be an object")
        };
        assert_eq!(root["schema"], Value::String("credence-bench/1".into()));
        assert_eq!(root["target"], Value::String("harness_json".into()));
        let Value::Array(benches) = &root["benchmarks"] else {
            panic!("benchmarks must be an array")
        };
        assert_eq!(benches.len(), 2);
        std::fs::remove_dir_all(&out).ok();
    }
}
